"""Property/fuzz differential tests for the vector replay kernel.

``tests/test_vector_equivalence.py`` pins scalar == vector over the curated
policy × workload-family matrix; this file attacks the kernel with seeded
*adversarial* traces from :mod:`repro.testing`:

* :func:`repro.testing.fuzz_trace` — random instruction mixes with branch,
  store, and depend/issue-stall annotations;
* :func:`repro.testing.aliasing_trace` — same-set aliasing bursts that
  overflow a set's associativity mid-window, forcing the kernel through its
  intra-window fill/eviction correction paths;
* zero-memory traces (``mem_rate=0.0``) — fetch/branch-only streams where
  the batched probe arrays are empty.

The per-window cross-check is the strongest property here: the same trace
is replayed chunk by chunk through a scalar core and a vector core, and the
**entire** memory-system state (cache columns, residency maps, policy
state) must match after every chunk — not just at the end of the run.
"""

from __future__ import annotations

import pytest

from repro.cpu.vector import numpy_available, run_packed_vector
from repro.sim.config import SimulatorConfig
from repro.sim.simulator import SystemSimulator
from repro.testing import aliasing_trace, fuzz_trace
from test_vector_equivalence import hierarchy_state

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the vector kernel requires NumPy"
)


def fresh(policy: str, engine: str) -> SystemSimulator:
    return SystemSimulator(
        SimulatorConfig.scaled().with_l2_policy(policy),
        benchmark="fuzz",
        engine=engine,
    )


def assert_engines_match(policy: str, trace, window: int | None = None):
    """Replay ``trace`` through both engines; assert results + state match."""
    scalar = fresh(policy, "scalar")
    scalar_result = scalar.run(trace)

    vector = fresh(policy, "vector")
    if window is None:
        vector_result = vector.run(trace)
    else:
        vector.hierarchy.reset_stats()
        vector_result = vector.package(
            run_packed_vector(vector.core, trace, window=window)
        )
    assert scalar_result == vector_result
    assert hierarchy_state(scalar.hierarchy) == hierarchy_state(vector.hierarchy)


@pytest.mark.parametrize("policy", ["lru", "srrip", "brrip", "fifo", "random"])
@pytest.mark.parametrize("seed", [11, 12, 13])
def test_fuzz_traces_bit_identical(policy, seed):
    assert_engines_match(policy, fuzz_trace(seed))


@pytest.mark.parametrize("policy", ["lru", "srrip", "random"])
@pytest.mark.parametrize("seed", [21, 22, 23])
def test_aliasing_bursts_bit_identical(policy, seed):
    """Same-set aliasing bursts overflow associativity mid-window; a small
    window guarantees fills and evictions straddle window boundaries."""
    trace = aliasing_trace(seed)
    assert_engines_match(policy, trace)
    assert_engines_match(policy, trace, window=64)


@pytest.mark.parametrize("policy", ["lru", "srrip"])
def test_zero_memory_traces(policy):
    """Fetch/branch-only streams: the batched data-probe arrays are empty."""
    assert_engines_match(policy, fuzz_trace(31, mem_rate=0.0))


@pytest.mark.parametrize("policy", ["ship", "drrip"])
def test_auto_fallback_on_fuzz_traces(policy):
    """Unbatchable policies under engine='auto' replay fuzz traces through
    the scalar loop and match engine='scalar' exactly."""
    trace = aliasing_trace(41)
    scalar = fresh(policy, "scalar")
    scalar_result = scalar.run(trace)
    auto = fresh(policy, "auto")
    auto_result = auto.run(trace)
    assert scalar_result == auto_result
    assert hierarchy_state(scalar.hierarchy) == hierarchy_state(auto.hierarchy)


@pytest.mark.parametrize("policy", ["srrip", "random"])
@pytest.mark.parametrize("seed", [51, 52])
def test_per_window_state_snapshots(policy, seed):
    """Chunked lockstep replay: after *every* chunk the scalar and vector
    cores must agree on the full memory-system state, so a divergence is
    caught at the first window it appears in rather than at end of run."""
    trace = aliasing_trace(seed, instructions=3000)
    chunk_size = 256
    scalar = fresh(policy, "scalar")
    vector = fresh(policy, "vector")
    from repro.common.trace import PackedTrace

    chunks = []
    for start in range(0, len(trace), chunk_size):
        chunk = PackedTrace()
        for index in range(start, min(start + chunk_size, len(trace))):
            chunk.append_record(trace.record(index))
        chunks.append(chunk)
    assert len(chunks) > 5

    for number, chunk in enumerate(chunks):
        scalar.core.run(chunk)
        run_packed_vector(vector.core, chunk, window=97)
        assert hierarchy_state(scalar.hierarchy) == hierarchy_state(
            vector.hierarchy
        ), f"state diverged after chunk {number}"
