"""Shared fixtures for the TRRIP reproduction test suite.

The request constructors and store/config/session builders live in
:mod:`repro.testing` (shared with ``benchmarks/conftest.py``); this file
only wraps them as pytest fixtures and re-exports the constructors under
their historical names for the tests that import them from here.
"""

from __future__ import annotations

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.sim.config import SimulatorConfig
from repro.testing import (  # noqa: F401  (re-exported for the suite)
    data_load,
    data_store,
    instruction,
    make_request,
    make_session,
)
from repro.testing import small_lru_cache as make_small_lru_cache
from repro.testing import small_srrip_cache as make_small_srrip_cache
from repro.workloads.spec import WorkloadSpec
from repro.workloads.spec import tiny_spec as make_tiny_spec


@pytest.fixture
def small_lru_cache() -> SetAssociativeCache:
    """A 4-set, 2-way LRU cache (512 B) for unit tests."""
    return make_small_lru_cache()


@pytest.fixture
def small_srrip_cache() -> SetAssociativeCache:
    """A 4-set, 4-way SRRIP cache (1 kB) for unit tests."""
    return make_small_srrip_cache()


@pytest.fixture
def tiny_spec() -> WorkloadSpec:
    """A miniature workload spec so simulator tests stay fast (<1 s)."""
    return make_tiny_spec()


@pytest.fixture
def scaled_config() -> SimulatorConfig:
    """The default (scaled) simulator configuration."""
    return SimulatorConfig.scaled()


@pytest.fixture
def tiny_session():
    """A session over the scaled config (no store) for API-level tests."""
    return make_session()
