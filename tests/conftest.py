"""Shared fixtures for the TRRIP reproduction test suite."""

from __future__ import annotations

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.basic import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.common.request import AccessType, MemoryRequest
from repro.common.temperature import Temperature
from repro.sim.config import SimulatorConfig
from repro.workloads.spec import WorkloadSpec
from repro.workloads.spec import tiny_spec as make_tiny_spec


def make_request(
    address: int,
    access_type: AccessType = AccessType.INSTRUCTION_FETCH,
    temperature: Temperature = Temperature.NONE,
    pc: int = 0,
    starvation_hint: bool = False,
    is_prefetch: bool = False,
) -> MemoryRequest:
    """Convenience request constructor used across the suite."""
    return MemoryRequest(
        address=address,
        access_type=access_type,
        pc=pc or address,
        temperature=temperature,
        starvation_hint=starvation_hint,
        is_prefetch=is_prefetch,
    )


def instruction(address: int, temperature: Temperature = Temperature.NONE, **kw):
    return make_request(address, AccessType.INSTRUCTION_FETCH, temperature, **kw)


def data_load(address: int, **kw):
    return make_request(address, AccessType.DATA_LOAD, **kw)


def data_store(address: int, **kw):
    return make_request(address, AccessType.DATA_STORE, **kw)


@pytest.fixture
def small_lru_cache() -> SetAssociativeCache:
    """A 4-set, 2-way LRU cache (512 B) for unit tests."""
    policy = LRUPolicy(num_sets=4, num_ways=2)
    return SetAssociativeCache("test-l1", 512, 2, policy)


@pytest.fixture
def small_srrip_cache() -> SetAssociativeCache:
    """A 4-set, 4-way SRRIP cache (1 kB) for unit tests."""
    policy = SRRIPPolicy(num_sets=4, num_ways=4)
    return SetAssociativeCache("test-l2", 1024, 4, policy)


@pytest.fixture
def tiny_spec() -> WorkloadSpec:
    """A miniature workload spec so simulator tests stay fast (<1 s)."""
    return make_tiny_spec()


@pytest.fixture
def scaled_config() -> SimulatorConfig:
    """The default (scaled) simulator configuration."""
    return SimulatorConfig.scaled()
