"""Tests for the ablation studies that go beyond the paper's figures."""

import pytest

from repro.experiments.ablations import (
    format_page_size_ablation,
    run_kill_switch_ablation,
    run_page_size_ablation,
)
from repro.experiments.runner import BenchmarkRunner
from repro.osmodel.loader import OverlapPolicy
from repro.sim.config import SimulatorConfig
from repro.workloads.spec import WorkloadSpec


@pytest.fixture(scope="module")
def tiny_runner_and_spec():
    spec = WorkloadSpec(
        name="tiny-ablation",
        category="proxy",
        description="miniature workload for ablation tests",
        hot_functions=8,
        warm_functions=4,
        cold_functions=8,
        blocks_per_hot_function=4,
        blocks_per_warm_function=3,
        blocks_per_cold_function=3,
        internal_cold_blocks=2,
        data_access_rate=0.25,
        data_stream_kb=8,
        data_reuse_kb=4,
        eval_instructions=6_000,
        warmup_instructions=2_000,
        seed=55,
    )
    return BenchmarkRunner(config=SimulatorConfig.scaled()), spec


class TestPageSizeAblation:
    def test_points_cover_all_variants(self, tiny_runner_and_spec):
        runner, spec = tiny_runner_and_spec
        points = run_page_size_ablation(
            benchmark=spec, page_sizes=(4096, 16384), runner=runner
        )
        assert len(points) == 6
        assert {p.page_size for p in points} == {4096, 16384}
        assert {p.overlap_policy for p in points} == {
            OverlapPolicy.MAJORITY,
            OverlapPolicy.DISABLE,
        }
        assert "page" in format_page_size_ablation(points)

    def test_larger_pages_never_increase_tagged_page_count(self, tiny_runner_and_spec):
        runner, spec = tiny_runner_and_spec
        points = run_page_size_ablation(
            benchmark=spec, page_sizes=(4096, 16384), runner=runner
        )
        small = [p for p in points if p.page_size == 4096 and not p.padded_sections]
        large = [p for p in points if p.page_size == 16384 and not p.padded_sections]
        assert max(p.tagged_pages for p in large) <= max(p.tagged_pages for p in small)

    def test_padded_sections_remove_mixed_pages(self, tiny_runner_and_spec):
        runner, spec = tiny_runner_and_spec
        points = run_page_size_ablation(
            benchmark=spec, page_sizes=(4096,), runner=runner
        )
        padded = [p for p in points if p.padded_sections]
        assert all(p.mixed_pages == 0 for p in padded)


class TestKillSwitch:
    def test_disabling_temperature_degrades_to_srrip(self, tiny_runner_and_spec):
        runner, spec = tiny_runner_and_spec
        result = run_kill_switch_ablation(benchmark=spec, runner=runner)
        assert result.degrades_to_baseline
