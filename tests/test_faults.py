"""Fault-injection coverage for the checkpointed sweep execution layer.

Every recovery path the fault-tolerance layer promises is exercised here
deterministically through the ``REPRO_FAULTS`` knob (see
:mod:`repro.common.faults`): worker exceptions, worker kills, hangs killed
by the unit timeout, torn store entries, ENOSPC on write, and mid-sweep
interruption followed by ``repro sweep --resume``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cli.main import main
from repro.common.errors import ConfigurationError, InjectedFault
from repro.experiments.supervisor import (
    PoolReport,
    SupervisedPool,
    SupervisionPolicy,
)
from repro.experiments.sweep import SweepJournal, build_manifest
from repro.sim.config import SimulatorConfig
from repro.testing import (
    KILL_EXIT_CODE,
    REPRO_FAULTS_ENV,
    FaultPlan,
    corrupt_file,
    fire_point,
    make_session,
    reset_fault_counters,
)
from repro.workloads.spec import tiny_spec


@pytest.fixture(autouse=True)
def _isolated_fault_state(monkeypatch):
    """Each test starts with no armed plan and fresh per-site ordinals."""
    monkeypatch.delenv(REPRO_FAULTS_ENV, raising=False)
    reset_fault_counters()
    yield
    reset_fault_counters()


# ================================================================= the knob
class TestFaultPlan:
    def test_parse_directives(self):
        plan = FaultPlan.parse(
            "sweep.unit:1=kill; store.write:0=enospc; sweep.unit:2=hang:2.5*3"
        )
        assert len(plan.directives) == 3
        kill = plan.directive("sweep.unit", 1)
        assert (kill.kind, kill.limit) == ("kill", 1)
        hang = plan.directive("sweep.unit", 2)
        assert (hang.kind, hang.arg, hang.limit) == ("hang", 2.5, 3)
        assert plan.directive("sweep.unit", 0) is None

    def test_bare_star_means_every_attempt(self):
        directive = FaultPlan.parse("sweep.unit:0=raise*").directives[0]
        assert directive.limit is None

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("sweep.unit:0=raise")

    @pytest.mark.parametrize(
        "text",
        [
            "sweep.unit:0",  # missing kind
            "sweep.unit=raise",  # missing index
            "sweep.unit:x=raise",  # non-integer index
            "sweep.unit:0=frobnicate",  # unknown kind
        ],
    )
    def test_bad_directives_are_configuration_errors(self, text):
        with pytest.raises(ConfigurationError, match="REPRO_FAULTS"):
            FaultPlan.parse(text)


class TestFirePoint:
    def test_unarmed_points_are_noops(self):
        fire_point("sweep.unit", 0)
        fire_point("store.write")

    def test_armed_point_raises(self, monkeypatch):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "sweep.unit:3=raise")
        fire_point("sweep.unit", 2)  # different index: no fire
        with pytest.raises(InjectedFault, match="sweep.unit:3"):
            fire_point("sweep.unit", 3)

    def test_limit_bounds_the_attempts_that_fire(self, monkeypatch):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "sweep.unit:0=raise*2")
        for attempt in (1, 2):
            with pytest.raises(InjectedFault):
                fire_point("sweep.unit", 0, attempt=attempt)
        fire_point("sweep.unit", 0, attempt=3)  # beyond the limit: no fire

    def test_indexless_sites_auto_number_per_process(self, monkeypatch):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "store.write:2=enospc")
        fire_point("store.write")  # ordinal 0
        fire_point("store.write")  # ordinal 1
        with pytest.raises(OSError, match="No space left"):
            fire_point("store.write")  # ordinal 2
        fire_point("store.write")  # ordinal 3

    def test_ordinals_advance_even_without_a_plan(self, monkeypatch):
        fire_point("store.write")  # ordinal 0 consumed while unarmed
        monkeypatch.setenv(REPRO_FAULTS_ENV, "store.write:0=enospc")
        fire_point("store.write")  # ordinal 1: arming never shifts numbering

    def test_corrupt_file_truncates_in_place(self, tmp_path):
        victim = tmp_path / "entry.json"
        victim.write_text("x" * 100, encoding="utf-8")
        corrupt_file(victim, keep_bytes=7)
        assert victim.stat().st_size == 7


# ============================================================== supervisor
# Worker functions must be module-level so worker processes can run them.
def _double(payload, attempt):
    return payload * 2


def _fail_below(payload, attempt):
    """Fail with a picklable error until ``attempt`` reaches ``payload``."""
    if attempt < payload:
        raise ValueError(f"attempt {attempt} below threshold {payload}")
    return attempt


def _crash_if_negative(payload, attempt):
    if payload < 0 and attempt == 1:
        os._exit(KILL_EXIT_CODE)
    return payload


def _hang_first(payload, attempt):
    if attempt == 1:
        time.sleep(30)
    return payload


_FAST = dict(backoff_base=0.0, backoff_jitter=0.0)


class TestSupervisedPool:
    def test_results_come_back_in_task_order(self):
        pool = SupervisedPool(_double, workers=3)
        report = pool.run(list(range(7)))
        assert isinstance(report, PoolReport)
        assert report.values() == [n * 2 for n in range(7)]
        assert all(o.attempts == 1 for o in report.outcomes)

    def test_empty_payloads(self):
        assert SupervisedPool(_double).run([]).values() == []

    def test_failed_attempts_are_retried_with_backoff(self):
        policy = SupervisionPolicy(max_retries=2, **_FAST)
        pool = SupervisedPool(_fail_below, workers=1, policy=policy)
        report = pool.run([3, 1])  # first unit needs 3 attempts
        assert report.values() == [3, 1]
        first = report.outcomes[0]
        assert first.attempts == 3
        assert [f.kind for f in first.failures] == ["error", "error"]
        assert report.retried == [first]

    def test_worker_crash_fails_only_its_unit(self):
        policy = SupervisionPolicy(max_retries=0, keep_going=True, **_FAST)
        pool = SupervisedPool(_crash_if_negative, workers=2, policy=policy)
        report = pool.run([1, -1, 2])
        assert [o.status for o in report.outcomes] == ["done", "failed", "done"]
        crash = report.outcomes[1].failures[0]
        assert crash.kind == "crash"
        assert str(KILL_EXIT_CODE) in crash.message
        assert not report.aborted

    def test_crashed_worker_is_respawned_and_unit_retried(self):
        policy = SupervisionPolicy(max_retries=1, **_FAST)
        pool = SupervisedPool(_crash_if_negative, workers=1, policy=policy)
        report = pool.run([-5])
        assert report.values() == [-5]  # second attempt succeeds
        assert report.outcomes[0].failures[0].kind == "crash"

    def test_repeated_crashes_never_wedge_the_pool(self):
        """Every unit SIGKILLs its first worker; the pool must survive the
        whole barrage.  This is the regression pin for the shared-result-
        channel deadlock: with results funnelled through one shared queue, a
        worker killed in the scheduling window where the queue's cross-
        process lock is held wedged every respawned worker's ready
        handshake, hanging the pool on single-CPU hosts.  Per-worker result
        pipes confine a dying worker's damage to its own channel."""
        payloads = [-n for n in range(1, 7)]
        for _ in range(5):
            policy = SupervisionPolicy(max_retries=1, **_FAST)
            pool = SupervisedPool(_crash_if_negative, workers=2, policy=policy)
            report = pool.run(payloads)
            assert report.values() == payloads
            assert all(o.failures[0].kind == "crash" for o in report.outcomes)

    def test_hung_worker_is_killed_at_the_deadline_and_retried(self):
        policy = SupervisionPolicy(max_retries=1, unit_timeout=0.5, **_FAST)
        pool = SupervisedPool(_hang_first, workers=1, policy=policy)
        started = time.monotonic()
        report = pool.run([7])
        assert report.values() == [7]
        assert report.outcomes[0].failures[0].kind == "timeout"
        assert time.monotonic() - started < 10  # nowhere near the 30s hang

    def test_fail_fast_aborts_remaining_units(self):
        policy = SupervisionPolicy(max_retries=0, keep_going=False, **_FAST)
        pool = SupervisedPool(_fail_below, workers=1, policy=policy)
        report = pool.run([99, 1, 1])
        assert report.aborted
        assert report.outcomes[0].status == "failed"
        assert any(o.status == "not-run" for o in report.outcomes[1:])

    def test_raise_on_failure_reraises_the_original_exception(self):
        policy = SupervisionPolicy(max_retries=0, keep_going=True, **_FAST)
        report = SupervisedPool(_fail_below, policy=policy).run([5])
        with pytest.raises(ValueError, match="below threshold 5"):
            report.raise_on_failure()

    def test_no_worker_processes_outlive_the_pool(self):
        import multiprocessing

        pool = SupervisedPool(_double, workers=2)
        pool.run([1, 2, 3, 4])
        assert pool._workers == {}
        assert not multiprocessing.active_children()

    def test_backoff_is_deterministic_and_bounded(self):
        policy = SupervisionPolicy(
            backoff_base=0.25, backoff_factor=2.0, backoff_max=1.0, seed=11
        )
        for unit, attempt in ((0, 1), (3, 2), (9, 5)):
            delay = policy.backoff(unit, attempt)
            assert delay == policy.backoff(unit, attempt)  # reproducible
            assert 0.0 < delay <= 1.0 * 1.25  # capped + jitter bound
        assert policy.backoff(0, 1) != policy.backoff(1, 1)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(max_retries=-1).validate()
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(unit_timeout=0).validate()


# ================================================================== journal
class TestSweepJournal:
    def test_record_and_replay_round_trip(self, tmp_path):
        journal = SweepJournal(tmp_path / "journals" / "m.jsonl")
        journal.record("begin", manifest="m", total=2)
        journal.record("done", unit=0, key="k0", attempt=1, worker=0, duration=0.5)
        journal.record("done", unit=1, key="k1", attempt=2, worker=1, duration=0.1)
        journal.close()
        events = journal.replay()
        assert [event["event"] for event in events] == ["begin", "done", "done"]
        assert journal.done_units() == {0, 1}

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = SweepJournal(tmp_path / "m.jsonl")
        journal.record("begin", total=1)
        journal.record("done", unit=0)
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "unit"')  # crash mid-write
        assert [event["event"] for event in journal.replay()] == ["begin", "done"]
        assert journal.done_units() == {0}

    def test_missing_journal_replays_empty(self, tmp_path):
        journal = SweepJournal(tmp_path / "absent.jsonl")
        assert journal.replay() == []
        assert not journal.exists()


class TestManifest:
    def test_units_are_benchmark_major_baseline_first(self):
        manifest = build_manifest(
            [tiny_spec()], ["lru", "trrip-1"], config=SimulatorConfig.scaled()
        )
        assert manifest.policies == ("srrip", "lru", "trrip-1")
        assert [unit.index for unit in manifest.units] == [0, 1, 2]
        assert {unit.benchmark for unit in manifest.units} == {"tinybench"}
        assert len({unit.key for unit in manifest.units}) == 3

    def test_manifest_key_pins_the_exact_grid(self):
        config = SimulatorConfig.scaled()
        one = build_manifest([tiny_spec()], ["lru"], config=config)
        same = build_manifest([tiny_spec()], ["lru"], config=config)
        other = build_manifest([tiny_spec()], ["trrip-1"], config=config)
        assert one.key == same.key
        assert one.key != other.key


# ============================================================ CLI chaos runs
SWEEP = ["sweep", "--tiny", "--policies", "lru,trrip-1"]


def _sweep_args(tmp_path, name, *extra):
    return SWEEP + [
        "--store",
        str(tmp_path / name / "store"),
        "--trace-dir",
        str(tmp_path / name / "traces"),
        *extra,
    ]


def _store_bytes(tmp_path, name) -> dict:
    root = tmp_path / name / "store" / "runs"
    return {
        path.relative_to(root): path.read_bytes()
        for path in sorted(root.rglob("*.json"))
    }


class TestResumeSemantics:
    def test_interrupted_sweep_resumes_byte_identical(
        self, tmp_path, monkeypatch, capsys
    ):
        # Reference: one uninterrupted run.
        assert main(_sweep_args(tmp_path, "clean")) == 0
        clean_out = capsys.readouterr().out

        # Interrupt after 2 of 3 units have completed.
        monkeypatch.setenv(REPRO_FAULTS_ENV, "sweep.completed:2=abort")
        assert main(_sweep_args(tmp_path, "chaos")) == 1
        captured = capsys.readouterr()
        # Diagnostics (summary, cache counters, resume hint) all go to
        # stderr; stdout stays clean for machine-readable output.
        assert captured.out == ""
        assert "[interrupted]" in captured.err
        assert "--resume" in captured.err
        assert len(_store_bytes(tmp_path, "chaos")) == 2  # durable progress

        # Resume executes exactly the one missing unit: M - N simulations.
        monkeypatch.delenv(REPRO_FAULTS_ENV)
        assert main(_sweep_args(tmp_path, "chaos", "--resume")) == 0
        resumed_out = capsys.readouterr().out
        assert "# 1 simulation(s) run, 2 served from cache" in resumed_out
        assert "2 resumed" in resumed_out

        # Store entries are byte-identical to the uninterrupted run's.
        assert _store_bytes(tmp_path, "chaos") == _store_bytes(tmp_path, "clean")
        # And so is every rendered view line (the saved report text).
        clean_views = clean_out.split("# sweep units")[0]
        resumed_views = resumed_out.split("# sweep units")[0]
        assert clean_views == resumed_views
        clean_report = json.loads(
            (tmp_path / "clean" / "store" / "reports" / "sweep.json").read_text()
        )
        chaos_report = json.loads(
            (tmp_path / "chaos" / "store" / "reports" / "sweep.json").read_text()
        )
        assert clean_report == chaos_report

    def test_killed_worker_is_retried_and_sweep_succeeds(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "sweep.unit:1=kill")
        args = _sweep_args(tmp_path, "kill", "--retry-backoff", "0.01")
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "1 retried" in out
        assert "0 failed" in out
        journal = next((tmp_path / "kill" / "store" / "journals").glob("*.jsonl"))
        events = [json.loads(line) for line in journal.read_text().splitlines()]
        retries = [event for event in events if event["event"] == "retry"]
        assert retries and retries[0]["kind"] == "crash"

    def test_corrupted_entry_is_requarried_on_resume(
        self, tmp_path, monkeypatch, capsys
    ):
        """A journal-done unit whose store entry got damaged re-executes."""
        assert main(_sweep_args(tmp_path, "torn")) == 0
        capsys.readouterr()
        entry = sorted((tmp_path / "torn" / "store" / "runs").rglob("*.json"))[0]
        corrupt_file(entry)
        assert main(_sweep_args(tmp_path, "torn", "--resume")) == 0
        out = capsys.readouterr().out
        assert "# 1 simulation(s) run, 2 served from cache" in out
        assert "1 corrupt entry quarantined" in out
        assert entry.with_suffix(".corrupt").exists()

    def test_resume_without_a_journal_is_an_error(self, tmp_path, capsys):
        assert main(_sweep_args(tmp_path, "fresh", "--resume")) == 1
        assert "nothing to resume" in capsys.readouterr().err

    def test_resume_conflicts_with_no_cache_and_refresh(self, tmp_path, capsys):
        for flag in ("--no-cache", "--refresh"):
            assert main(_sweep_args(tmp_path, "conflict", "--resume", flag)) == 1
            assert "--resume" in capsys.readouterr().err


class TestDegradedSweeps:
    def test_hung_unit_is_killed_and_retried(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "sweep.unit:0=hang:30")
        args = _sweep_args(
            tmp_path,
            "hang",
            "--unit-timeout",
            "1.5",
            "--retry-backoff",
            "0.01",
        )
        started = time.monotonic()
        assert main(args) == 0
        assert time.monotonic() - started < 20
        assert "1 retried" in capsys.readouterr().out
        journal = next((tmp_path / "hang" / "store" / "journals").glob("*.jsonl"))
        events = [json.loads(line) for line in journal.read_text().splitlines()]
        kinds = [event["kind"] for event in events if event["event"] == "retry"]
        assert kinds == ["timeout"]

    def test_exhausted_retries_keep_going_partial_failure(
        self, tmp_path, monkeypatch, capsys
    ):
        # This unit fails on every attempt; the sweep must finish the rest
        # and report a structured partial failure, not raise mid-flight.
        monkeypatch.setenv(REPRO_FAULTS_ENV, "sweep.unit:1=raise*")
        args = _sweep_args(
            tmp_path,
            "partial",
            "--max-retries",
            "1",
            "--keep-going",
            "--retry-backoff",
            "0.01",
        )
        assert main(args) == 1
        captured = capsys.readouterr()
        assert captured.out == ""  # diagnostics never land on stdout
        assert "1 failed" in captured.err
        assert "Figure 6 view" not in captured.err  # no half-rendered views
        assert "failed after 2 attempt(s) [error]" in captured.err
        assert "injected failure at sweep.unit:1" in captured.err
        assert len(_store_bytes(tmp_path, "partial")) == 2  # the others landed

        # With the fault disarmed, --resume completes just the failed unit.
        monkeypatch.delenv(REPRO_FAULTS_ENV)
        assert main(_sweep_args(tmp_path, "partial", "--resume")) == 0
        assert "# 1 simulation(s) run" in capsys.readouterr().out

    def test_fail_fast_stops_dispatching(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "sweep.unit:0=raise*")
        args = _sweep_args(
            tmp_path,
            "failfast",
            "--max-retries",
            "0",
            "--retry-backoff",
            "0.01",
        )
        assert main(args) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "1 failed" in captured.err
        assert "not run" in captured.err


class TestSessionFaults:
    def test_enospc_on_store_write_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "store.write:0=enospc")
        session = make_session(store_root=tmp_path / "store")
        checkpointed = session.sweep_checkpointed(
            benchmarks=[tiny_spec()],
            policies=["lru"],
            supervision=SupervisionPolicy(max_retries=1, **_FAST),
        )
        report = checkpointed.report
        assert report.complete
        assert report.retried == 1
        assert report.failed == 0

    def test_truncated_trace_capture_is_quarantined(self, tmp_path):
        traces = tmp_path / "traces"
        session = make_session(store_root=tmp_path / "a", trace_root=traces)
        session.sweep_checkpointed(benchmarks=[tiny_spec()], policies=["lru"])
        capture = next(traces.rglob("*.trace"))
        corrupt_file(capture)
        # A fresh session re-captures; the damaged bytes are quarantined.
        session = make_session(store_root=tmp_path / "b", trace_root=traces)
        checkpointed = session.sweep_checkpointed(
            benchmarks=[tiny_spec()], policies=["lru"]
        )
        assert checkpointed.report.complete
        assert capture.with_suffix(".corrupt").exists()
        assert capture.exists()  # recaptured into a clean slot
        assert session.traces.corrupt == 1

    def test_checkpointed_sweep_requires_a_store(self):
        session = make_session()  # no store
        with pytest.raises(ConfigurationError, match="store"):
            session.sweep_checkpointed(benchmarks=[tiny_spec()], policies=["lru"])

    def test_raise_on_failure_for_programmatic_callers(
        self, tmp_path, monkeypatch
    ):
        from repro.common.errors import SweepExecutionError

        monkeypatch.setenv(REPRO_FAULTS_ENV, "sweep.unit:0=raise*")
        session = make_session(store_root=tmp_path / "store")
        checkpointed = session.sweep_checkpointed(
            benchmarks=[tiny_spec()],
            policies=["lru"],
            supervision=SupervisionPolicy(
                max_retries=0, keep_going=True, **_FAST
            ),
        )
        assert not checkpointed.report.complete
        with pytest.raises(SweepExecutionError, match="sweep incomplete"):
            checkpointed.raise_on_failure()
        # A complete sweep's raise_on_failure is a no-op.
        monkeypatch.delenv(REPRO_FAULTS_ENV)
        resumed = session.sweep_checkpointed(
            benchmarks=[tiny_spec()], policies=["lru"], resume=True
        )
        resumed.raise_on_failure()
        assert resumed.report.complete
