"""Tests for the ``repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import build_parser, main
from repro.cli.serialize import csv_rows, render_csv, to_jsonable


class TestParser:
    def test_parser_covers_all_subcommands(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["list", "experiments"],
            ["policies"],
            ["workloads"],
            ["run", "figure3", "--tiny", "--no-cache"],
            ["run", "table3", "--benchmarks", "sqlite,gcc", "--jobs", "2"],
            ["run", "figure6", "--tiny", "--policy", "ship:shct_bits=3"],
            ["run", "table3", "--tiny", "--workload", "zipf:alpha=1.2"],
            ["run", "figure6", "--tiny", "--trace-dir", "traces"],
            ["sweep", "--policies", "lru,trrip-1", "--tiny"],
            ["sweep", "--policy", "trrip-2", "--tiny"],
            ["sweep", "--workload", "streaming", "--workload", "zipf"],
            ["report", "figure3", "--format", "csv"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_tiny_and_benchmarks_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "figure6", "--tiny", "--benchmarks", "sqlite"]
            )
        assert "not allowed with" in capsys.readouterr().err


class TestList:
    def test_list_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out
        assert "sqlite" in out
        assert "trrip-1" in out
        assert "srrip (baseline)" in out

    def test_list_sections(self, capsys):
        assert main(["list", "policies"]) == 0
        out = capsys.readouterr().out
        assert "replacement policies" in out
        assert "experiments:" not in out


class TestPolicies:
    def test_policies_subcommand_lists_catalog(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "trrip-1" in out
        assert "aliases: trrip, trrip1" in out
        assert "rrpv_bits:int=2" in out
        assert "[baseline]" in out

    def test_run_with_parameterised_policy(self, capsys):
        argv = [
            "run",
            "table3",
            "--tiny",
            "--no-cache",
            "--policy",
            "ship:shct_bits=3",
            "--policy",
            "trrip-1",
        ]
        assert main(argv) == 0
        assert "ship:shct_bits=3" in capsys.readouterr().out

    def test_unknown_policy_fails_cleanly(self, capsys):
        assert main(["sweep", "--tiny", "--no-cache", "--policy", "nope"]) == 1
        err = capsys.readouterr().err
        assert "unknown replacement policy 'nope'" in err
        assert "trrip-1" in err  # the message names the valid choices

    def test_malformed_policy_parameter_fails_cleanly(self, capsys):
        argv = ["sweep", "--tiny", "--no-cache", "--policy", "ship:bogus=1"]
        assert main(argv) == 1
        assert "no parameter 'bogus'" in capsys.readouterr().err

    def test_policy_warning_for_fixed_policy_experiments(self, capsys):
        argv = ["run", "figure3", "--tiny", "--no-cache", "--policy", "trrip-1"]
        assert main(argv) == 0
        assert "--policy ignored" in capsys.readouterr().err


class TestWorkloads:
    def test_workloads_subcommand_lists_families(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "zipf" in out
        assert "alpha:float=1.2" in out
        assert "aliases: stream" in out
        assert "--workload" in out

    def test_run_with_family_workload(self, capsys):
        argv = [
            "run",
            "table3",
            "--tiny",
            "--no-cache",
            "--workload",
            "zipf:alpha=1.2,instructions=4000,warmup=1000",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "tinybenc" in out
        assert "zipf:alp" in out  # family column next to the tiny one

    def test_unknown_family_fails_cleanly(self, capsys):
        argv = ["run", "table3", "--tiny", "--no-cache", "--workload", "nope"]
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "unknown workload" in err

    def test_bad_family_parameter_fails_cleanly(self, capsys):
        argv = ["sweep", "--no-cache", "--workload", "zipf:bogus=1"]
        assert main(argv) == 1
        assert "no parameter 'bogus'" in capsys.readouterr().err

    def test_empty_benchmarks_fails_instead_of_running_defaults(self, capsys):
        argv = ["run", "table3", "--benchmarks", ",", "--no-cache"]
        assert main(argv) == 1
        assert "benchmark axis is empty" in capsys.readouterr().err

    def test_trace_dir_captures_then_replays(self, tmp_path, capsys):
        traces = str(tmp_path / "traces")
        argv = [
            "run",
            "figure7",
            "--tiny",
            "--no-cache",
            "--trace-dir",
            traces,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 replayed, 1 captured" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "1 replayed, 0 captured" in second
        assert list((tmp_path / "traces").glob("*/*.trace"))


class TestRun:
    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "figure33", "--no-cache"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        assert main(["run", "figure3", "--benchmarks", "nope", "--no-cache"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_static_experiment_runs_without_cache(self, capsys):
        assert main(["run", "table2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "sqlite" in out

    def test_tiny_run_caches_and_replays(self, tmp_path, capsys):
        store = str(tmp_path)
        assert main(["run", "figure7", "--tiny", "--store", store]) == 0
        first = capsys.readouterr().out
        assert "Figure 7" in first
        assert "0 served from cache" in first

        assert main(["run", "figure7", "--tiny", "--store", store]) == 0
        second = capsys.readouterr().out
        assert "# 0 simulation(s) run" in second

    def test_no_cache_disables_the_store(self, tmp_path, capsys):
        store = str(tmp_path)
        argv = ["run", "figure7", "--tiny", "--store", store, "--no-cache"]
        assert main(argv) == 0
        assert "cache disabled" in capsys.readouterr().out
        assert not list(tmp_path.glob("runs/*/*.json"))

    def test_jobs_warning_for_serial_experiments(self, tmp_path, capsys):
        argv = ["run", "figure1", "--tiny", "--jobs", "4", "--store", str(tmp_path)]
        assert main(argv) == 0
        assert "--jobs ignored" in capsys.readouterr().err

    def test_single_benchmark_experiments_warn_on_extra_benchmarks(
        self, tmp_path, capsys
    ):
        argv = [
            "run",
            "ablation-kill-switch",
            "--benchmarks",
            "rapidjson,bullet",
            "--store",
            str(tmp_path),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "using only 'rapidjson'" in captured.err
        assert "bullet" not in captured.out

    def test_refresh_ignores_cached_entries(self, tmp_path, capsys):
        store = str(tmp_path)
        assert main(["run", "figure7", "--tiny", "--store", store]) == 0
        capsys.readouterr()
        argv = ["run", "figure7", "--tiny", "--store", store, "--refresh"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 served from cache" in out


class TestSweep:
    def test_tiny_sweep(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--tiny",
            "--policies",
            "lru,trrip-1",
            "--store",
            str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Figure 6 view" in out
        assert "Table 3 view" in out
        assert "tinybench" in out

        # Second sweep over the same grid is fully cached.
        assert main(argv) == 0
        assert "# 0 simulation(s) run" in capsys.readouterr().out


class TestBench:
    def test_bench_tiny_writes_report_and_asserts_floors(self, tmp_path, capsys):
        """One-round tiny bench: table printed, JSON written, floors hold.

        The floors are deliberately conservative, so a healthy engine passes
        even on a noisy test machine; a real hot-path regression (orders of
        magnitude, not percent) would exit non-zero here.
        """
        import json

        output = tmp_path / "bench-report.json"
        assert (
            main(
                [
                    "bench",
                    "--tiny",
                    "--rounds",
                    "1",
                    "--no-sweep",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Engine speed" in out
        assert "pinned speedup floors hold" in out
        report = json.loads(output.read_text())
        assert set(report["shapes"]) == {
            "hot_loop",
            "resident",
            "mixed",
            "streaming",
        }
        for row in report["shapes"].values():
            assert row["fast_ips"] > row["seed_ips"]


class TestReport:
    def test_report_without_run_fails(self, tmp_path, capsys):
        assert main(["report", "figure3", "--store", str(tmp_path)]) == 1
        assert "no cached report" in capsys.readouterr().err

    def test_report_formats(self, tmp_path, capsys):
        store = str(tmp_path)
        assert main(["run", "figure3", "--tiny", "--store", store]) == 0
        run_out = capsys.readouterr().out

        assert main(["report", "figure3", "--store", store]) == 0
        captured = capsys.readouterr()
        text = captured.out
        assert text.strip() in run_out
        # Provenance goes to stderr so piped output stays clean.
        assert "benchmarks=tinybench" in captured.err

        assert main(["report", "figure3", "--format", "json", "--store", store]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["benchmark"] == "tinybench"

        assert main(["report", "figure3", "--format", "csv", "--store", store]) == 0
        csv_text = capsys.readouterr().out
        assert csv_text.splitlines()[0].startswith("benchmark,")

    def test_sweep_report_keeps_both_views(self, tmp_path, capsys):
        store = str(tmp_path)
        argv = ["sweep", "--tiny", "--policies", "trrip-1", "--store", store]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["report", "sweep", "--store", store]) == 0
        text = capsys.readouterr().out
        assert "Figure 6 view" in text
        assert "Table 3 view" in text

    def test_report_to_file(self, tmp_path, capsys):
        store = str(tmp_path)
        assert main(["run", "table2", "--tiny", "--store", store]) == 0
        capsys.readouterr()
        output = tmp_path / "table2.csv"
        argv = [
            "report",
            "table2",
            "--format",
            "csv",
            "--store",
            store,
            "--output",
            str(output),
        ]
        assert main(argv) == 0
        assert output.read_text(encoding="utf-8").startswith("benchmark,")


class TestSerialize:
    def test_to_jsonable_handles_enums_and_nested_dataclasses(self):
        from repro.common.temperature import Temperature
        from repro.cpu.topdown import TopDownBreakdown

        payload = to_jsonable(
            {Temperature.HOT: TopDownBreakdown(retire=1.0), "plain": (1, 2)}
        )
        json.dumps(payload)  # must be serialisable
        assert payload["plain"] == [1, 2]
        [temp_key] = [k for k in payload if k != "plain"]
        assert payload[temp_key]["retire"] == 1.0

    def test_csv_rows_flatten_nested_structures(self):
        headers, rows = csv_rows([{"a": {"b": 1}, "c": [2, 3]}])
        assert headers == ["a.b", "c.0", "c.1"]
        assert rows[0]["a.b"] == 1
        text = render_csv([{"a": {"b": 1}, "c": [2, 3]}])
        assert text.splitlines()[0] == "a.b,c.0,c.1"
