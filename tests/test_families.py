"""Tests for the parametric workload-family registry."""

from __future__ import annotations

import pytest

from repro.api import Scenario, Session
from repro.common.errors import ConfigurationError, WorkloadError
from repro.sim.config import SimulatorConfig
from repro.workloads.families import (
    WORKLOAD_FAMILIES,
    WorkloadFamilySpec,
    describe_families,
    family_names,
    get_family_info,
    is_family_token,
    resolve_workload,
)
from repro.workloads.spec import PROXY_BENCHMARKS, WorkloadSpec, get_spec

#: A cheap parameterisation usable by every family in simulation tests.
FAST = "instructions=4000,warmup=1000"


# -------------------------------------------------------------------- registry
class TestFamilyRegistry:
    def test_catalog_contents(self):
        assert family_names() == (
            "streaming",
            "pointer-chase",
            "zipf",
            "phased",
            "interleave",
        )

    def test_aliases_normalise_to_canonical_names(self):
        assert get_family_info("stream").name == "streaming"
        assert get_family_info("pointer_chase").name == "pointer-chase"
        assert WorkloadFamilySpec.of("multiprogram").name == "interleave"

    def test_family_tokens_are_recognised(self):
        assert is_family_token("zipf")
        assert is_family_token("zipf:alpha=1.4")
        assert is_family_token("CHASE")
        assert not is_family_token("sqlite")
        assert not is_family_token("")
        assert not is_family_token("nosuch:alpha=1")

    def test_family_names_do_not_shadow_the_catalog(self):
        # A family token must never be ambiguous with a paper benchmark.
        for name in family_names():
            assert name not in PROXY_BENCHMARKS

    def test_describe_families_renders_typed_defaults(self):
        rows = dict((info.name, summary) for info, summary in describe_families())
        assert "alpha:float=1.2" in rows["zipf"]
        assert "programs:int=2" in rows["interleave"]

    def test_unknown_family_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="belady-chase"):
            WorkloadFamilySpec.of("belady-chase")
        with pytest.raises(ConfigurationError, match="pointer-chase"):
            WorkloadFamilySpec.of("belady-chase")


# ------------------------------------------------------------ WorkloadFamilySpec
class TestWorkloadFamilySpec:
    def test_parse_round_trips_through_canonical(self):
        spec = WorkloadFamilySpec.parse("zipf:alpha=1.4,footprint_kb=48")
        assert spec.name == "zipf"
        assert spec.kwargs == {"alpha": 1.4, "footprint_kb": 48}
        assert WorkloadFamilySpec.parse(spec.canonical()) == spec

    def test_params_are_order_insensitive_and_hashable(self):
        a = WorkloadFamilySpec.parse("streaming:footprint_kb=64,reuse_kb=4")
        b = WorkloadFamilySpec.parse("streaming:reuse_kb=4,footprint_kb=64")
        assert a == b
        assert len({a, b}) == 1

    def test_unknown_parameter_raises_with_valid_parameters(self):
        with pytest.raises(ConfigurationError, match="no parameter 'bogus'"):
            WorkloadFamilySpec.parse("zipf:bogus=1")
        with pytest.raises(ConfigurationError, match="footprint_kb"):
            WorkloadFamilySpec.parse("zipf:bogus=1")

    def test_badly_typed_parameter_raises(self):
        with pytest.raises(ConfigurationError, match="expects int"):
            WorkloadFamilySpec.parse("interleave:programs=two")

    def test_malformed_token_raises(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            WorkloadFamilySpec.parse("zipf:alpha")

    def test_of_accepts_overrides(self):
        spec = WorkloadFamilySpec.of("zipf", alpha=2.0)
        assert spec.kwargs == {"alpha": 2.0}


# ------------------------------------------------------------------- synthesis
class TestSynthesis:
    @pytest.mark.parametrize("family", family_names())
    def test_every_family_synthesizes_a_valid_spec(self, family):
        spec = WorkloadFamilySpec.of(family).synthesize()
        assert isinstance(spec, WorkloadSpec)  # __post_init__ validated it
        assert spec.category == "family"
        assert spec.name == family

    def test_synthesis_is_deterministic(self):
        token = f"phased:phases=4,{FAST}"
        a = WorkloadFamilySpec.parse(token).synthesize()
        b = WorkloadFamilySpec.parse(token).synthesize()
        assert a == b

    def test_spec_name_is_the_canonical_token(self):
        spec = WorkloadFamilySpec.parse("zipf:footprint_kb=48,alpha=1.4")
        assert spec.synthesize().name == "zipf:alpha=1.4,footprint_kb=48"

    def test_zipf_alpha_shapes_the_hot_set(self):
        skewed = WorkloadFamilySpec.of("zipf", alpha=2.0).synthesize()
        uniform = WorkloadFamilySpec.of("zipf", alpha=0.1).synthesize()
        assert skewed.data_reuse_kb < uniform.data_reuse_kb
        # Footprint conserved: the 64 kB default splits into head + tail.
        assert skewed.data_reuse_kb + skewed.data_stream_kb == 64

    def test_pointer_chase_depth_maps_to_backend_stalls(self):
        shallow = WorkloadFamilySpec.of("pointer-chase", depth=1).synthesize()
        deep = WorkloadFamilySpec.of("pointer-chase", depth=8).synthesize()
        assert deep.depend_stall_rate > shallow.depend_stall_rate
        assert deep.depend_stall_cycles > shallow.depend_stall_cycles

    def test_interleave_footprints_add_up(self):
        base = get_spec("sqlite")
        doubled = WorkloadFamilySpec.of("interleave", programs=2).synthesize()
        assert doubled.hot_functions == base.hot_functions * 2
        assert doubled.data_stream_kb == base.data_stream_kb * 2
        assert doubled.segments_per_iteration == base.segments_per_iteration * 2
        assert (
            doubled.occasional_visit_probability
            == base.occasional_visit_probability / 2
        )

    def test_interleave_unknown_base_raises(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            WorkloadFamilySpec.of("interleave", base="nosuch").synthesize()

    def test_invalid_family_parameters_raise(self):
        for token in (
            "zipf:alpha=-1",
            "zipf:footprint_kb=1",
            "pointer-chase:depth=0",
            "phased:phases=0",
            "interleave:programs=0",
        ):
            with pytest.raises(ConfigurationError):
                WorkloadFamilySpec.parse(token).synthesize()


# ------------------------------------------------------------------ resolution
class TestResolution:
    def test_resolve_workload_handles_every_token_kind(self):
        assert resolve_workload("sqlite") is get_spec("sqlite")
        spec = get_spec("gcc")
        assert resolve_workload(spec) is spec
        by_token = resolve_workload("zipf:alpha=1.4")
        by_spec = resolve_workload(WorkloadFamilySpec.of("zipf", alpha=1.4))
        assert by_token == by_spec

    def test_resolve_workload_unknown_name_raises(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            resolve_workload("nosuchbench")

    def test_scenario_accepts_family_tokens(self):
        scenario = Scenario(benchmarks=f"zipf:alpha=1.4,{FAST}")
        [request] = scenario.expand()
        assert request.spec.name.startswith("zipf:alpha=1.4")
        assert request.spec.eval_instructions == 4000

    def test_family_specs_scale_with_the_config(self):
        import dataclasses

        config = dataclasses.replace(
            SimulatorConfig.scaled(), name="halfscale", workload_scale=0.5
        )
        token = f"streaming:{FAST}"
        [request] = Scenario(benchmarks=token, config=config).expand()
        expected = WorkloadFamilySpec.parse(token).synthesize().scaled(0.5)
        assert request.spec == expected

    def test_session_runs_a_family_point(self):
        session = Session(config=SimulatorConfig.scaled())
        artifacts = session.run_one(f"zipf:alpha=1.4,{FAST}", "trrip-1")
        assert artifacts.result.benchmark.startswith("zipf:")
        assert artifacts.result.instructions == 4000

    def test_registry_context_normalises_family_tokens(self):
        from repro.experiments.registry import ExperimentContext

        ctx = ExperimentContext(benchmarks=[f"zipf:{FAST}", "sqlite"])
        first, second = ctx.benchmarks
        assert isinstance(first, WorkloadSpec)
        assert first.category == "family"
        assert second == "sqlite"  # catalog names pass through untouched
