"""Durability tests for the serve daemon: journal, recovery, claims, retry.

Three layers of proof:

* **in-process** — journal record/replay semantics, manager recovery, the
  submit-vs-shutdown race, claim arbitration on both store backends,
  two managers over one shared store executing each job key once, and the
  client's transport retry / bounded wait / bounce-riding poll loop;
* **process-level** — the acceptance chaos sequence: a ``repro serve``
  daemon SIGKILLed with one job running and one queued, restarted over the
  same store and journal, finishes everything under the original job ids
  with a store byte-identical to an uninterrupted run;
* **cross-replica** — a stale claim left by a dead owner is adopted after
  its TTL lapses.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.api.session import Session
from repro.client import (
    ConnectionFailed,
    ReproClient,
    RetryPolicy,
    ServiceError,
)
from repro.common.errors import InjectedFault, JobTimeout
from repro.experiments.backends import open_backend
from repro.experiments.store import ResultStore
from repro.experiments.supervisor import SupervisionPolicy
from repro.server import JobManager, ReproServer, parse_submission
from repro.server.journal import SubmissionJournal, summarize_journals
from repro.sim.config import SimulatorConfig
from repro.testing import REPRO_FAULTS_ENV, reset_fault_counters, wait_until

TINY = {"benchmarks": ["tiny"], "policies": ["lru", "trrip-1"]}
TINY_LRU = {"benchmarks": ["tiny"], "policies": ["lru"]}


def store_session_factory(root):
    def factory() -> Session:
        return Session(config=SimulatorConfig.scaled(), store=ResultStore(root))

    return factory


def make_manager(tmp_path, workers=1, **kwargs):
    return JobManager(
        session_factory=store_session_factory(tmp_path / "store"),
        workers=workers,
        queue_size=8,
        **kwargs,
    )


def store_bytes(root: Path) -> dict:
    return {
        path.relative_to(root): path.read_bytes()
        for path in sorted(Path(root).rglob("runs/*/*.json"))
    }


# ------------------------------------------------------------------- journal
class TestSubmissionJournal:
    def test_pending_tracks_terminal_records(self, tmp_path):
        journal = SubmissionJournal.for_store(tmp_path / "store", "r0")
        journal.record("accepted", job="a-1", key="ka", submission=TINY)
        journal.record("accepted", job="b-2", key="kb", submission=TINY_LRU)
        journal.record("done", job="a-1", key="ka")
        journal.close()

        replayed = SubmissionJournal(journal.path)
        pending = replayed.pending()
        assert [entry["job"] for entry in pending] == ["b-2"]
        assert replayed.counts() == {"accepted": 2, "done": 1}

    def test_torn_tail_is_skipped(self, tmp_path):
        journal = SubmissionJournal.for_store(tmp_path / "store", "r0")
        journal.record("accepted", job="a-1", key="ka", submission=TINY)
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "accepted", "job": "b-2", "key"')  # torn
        replayed = SubmissionJournal(journal.path)
        assert [entry["job"] for entry in replayed.pending()] == ["a-1"]

    def test_summarize_journals(self, tmp_path):
        store_root = tmp_path / "store"
        assert summarize_journals(store_root) is None
        journal = SubmissionJournal.for_store(store_root, "r0")
        journal.record("accepted", job="a-1", key="ka", submission=TINY)
        journal.close()
        line = summarize_journals(store_root)
        assert "1 replica(s)" in line
        assert "1 accepted" in line
        assert "1 pending recovery" in line

    @pytest.mark.parametrize(
        "payload",
        [
            TINY,
            {"benchmarks": ["tiny"]},
            {"benchmarks": ["tiny"], "warmup_instructions": 500,
             "measure_instructions": 900, "track_reuse": True, "label": "x"},
        ],
    )
    def test_wire_round_trip_preserves_job_key(self, payload):
        parsed = parse_submission(payload)
        again = parse_submission(parsed.wire())
        assert again.job_key == parsed.job_key
        # And the wire form is a fixed point: re-wiring changes nothing.
        assert parse_submission(again.wire()).wire() == parsed.wire()


# ------------------------------------------------------------------ recovery
class TestRecovery:
    def test_restart_reenqueues_unfinished_jobs_under_original_ids(
        self, tmp_path
    ):
        journal_path = tmp_path / "store" / "serve" / "journal-r0.jsonl"
        before = make_manager(
            tmp_path, workers=0, journal=SubmissionJournal(journal_path)
        )
        one, _ = before.submit(parse_submission(TINY))
        two, _ = before.submit(parse_submission(TINY_LRU))
        before.shutdown()  # workers=0: the backlog dies with the process

        after = make_manager(
            tmp_path, workers=1, journal=SubmissionJournal(journal_path)
        )
        after.start()
        assert after.recovered == 2
        assert after.journal_replayed == 2
        recovered_one = after.wait(one.id, timeout=120)
        recovered_two = after.wait(two.id, timeout=120)
        assert recovered_one.state == "done" and recovered_two.state == "done"
        assert recovered_one.recovered and recovered_two.recovered
        metrics = after.metrics()
        assert metrics["durability"]["recovered"] == 2
        assert metrics["durability"]["journal_replayed"] == 2
        after.shutdown()

        # New job ids never collide with recovered ones: the sequence
        # advanced past every journaled id.
        fresh = make_manager(
            tmp_path, workers=0, journal=SubmissionJournal(journal_path)
        )
        fresh.recover()
        job, _ = fresh.submit(
            parse_submission({"benchmarks": ["tiny"], "policies": ["srrip"]})
        )
        assert job.id.rsplit("-", 1)[1] == "3"
        fresh.shutdown()

    def test_completed_jobs_are_not_recovered(self, tmp_path):
        journal_path = tmp_path / "store" / "serve" / "journal-r0.jsonl"
        before = make_manager(
            tmp_path, workers=1, journal=SubmissionJournal(journal_path)
        )
        before.start()
        job, _ = before.submit(parse_submission(TINY))
        before.wait(job.id, timeout=120)
        before.shutdown()

        after = make_manager(
            tmp_path, workers=0, journal=SubmissionJournal(journal_path)
        )
        assert after.recover() == 0
        assert after.recovered == 0
        after.shutdown()

    def test_recovery_repeats_zero_simulations(self, tmp_path):
        """A recovered job whose points are already stored is pure cache."""
        journal_path = tmp_path / "store" / "serve" / "journal-r0.jsonl"
        before = make_manager(
            tmp_path, workers=0, journal=SubmissionJournal(journal_path)
        )
        job, _ = before.submit(parse_submission(TINY))
        before.shutdown()

        # The "crashed" daemon's work happened anyway (another replica, a
        # direct CLI run): make every point durable out of band.
        direct = Session(
            config=SimulatorConfig.scaled(),
            store=ResultStore(tmp_path / "store"),
        )
        direct.execute(parse_submission(TINY).plan)
        snapshot = store_bytes(tmp_path / "store")
        assert snapshot

        after = make_manager(
            tmp_path, workers=1, journal=SubmissionJournal(journal_path)
        )
        after.start()
        finished = after.wait(job.id, timeout=120)
        assert finished.state == "done"
        stats = after.metrics()["store"]
        assert stats["misses"] == 0 and stats["writes"] == 0
        assert store_bytes(tmp_path / "store") == snapshot
        after.shutdown()

    def test_unparseable_journaled_submission_is_skipped(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        journal = SubmissionJournal(journal_path)
        journal.record(
            "accepted",
            job="dead-1",
            key="k",
            submission={"benchmarks": ["no-such-bench"]},
        )
        journal.close()
        manager = make_manager(
            tmp_path, workers=0, journal=SubmissionJournal(journal_path)
        )
        assert manager.recover() == 0
        events = SubmissionJournal(journal_path).replay()
        assert events[-1]["event"] == "skipped"
        assert events[-1]["job"] == "dead-1"
        manager.shutdown()


# ---------------------------------------------------------- admission safety
class TestAdmissionSafety:
    def test_journal_failure_rejects_the_submission(self, tmp_path, monkeypatch):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "serve.journal:0=raise")
        reset_fault_counters()
        manager = make_manager(
            tmp_path,
            workers=0,
            journal=SubmissionJournal(tmp_path / "journal.jsonl"),
        )
        with pytest.raises(InjectedFault):
            manager.submit(parse_submission(TINY))
        assert manager.rejected == 1
        assert manager.metrics()["jobs"]["queued"] == 0
        # The very next submission (fault disarmed) is accepted normally.
        job, _ = manager.submit(parse_submission(TINY))
        assert job.state == "queued"
        manager.shutdown()

    def test_journal_failure_maps_to_503_over_http(self, tmp_path, monkeypatch):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "serve.journal:0=enospc")
        reset_fault_counters()
        manager = make_manager(
            tmp_path,
            workers=0,
            journal=SubmissionJournal(tmp_path / "journal.jsonl"),
        )
        with ReproServer(manager, port=0) as server:
            client = ReproClient(server.url, timeout=30)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(TINY)
            assert excinfo.value.status == 503
            # Content-addressed resubmission after the 503 succeeds.
            assert client.submit(TINY)["state"] == "queued"

    def test_submission_racing_shutdown_is_never_accepted_and_lost(
        self, tmp_path
    ):
        """Satellite (d): every 202 is journaled and drained; everything
        else is a clean rejection."""
        journal_path = tmp_path / "journal.jsonl"
        manager = make_manager(
            tmp_path, workers=1, journal=SubmissionJournal(journal_path)
        )
        policies = ["lru", "trrip-1", "srrip", "brrip", "ship:shct_bits=3"]
        outcomes: list = [None] * len(policies)
        with ReproServer(manager, port=0) as server:
            manager.start()
            barrier = threading.Barrier(len(policies) + 1)

            def submit(slot: int, policy: str) -> None:
                client = ReproClient(server.url, timeout=30)
                barrier.wait()
                try:
                    outcomes[slot] = ("accepted", client.submit(
                        {"benchmarks": ["tiny"], "policies": [policy]}
                    ))
                except ServiceError as error:
                    outcomes[slot] = ("rejected", error.status)

            threads = [
                threading.Thread(target=submit, args=(slot, policy))
                for slot, policy in enumerate(policies)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()  # shutdown races the submissions
            manager.shutdown(drain=True)
            for thread in threads:
                thread.join()

        journaled = {
            entry["job"]
            for entry in SubmissionJournal(journal_path).replay()
            if entry["event"] == "accepted"
        }
        for outcome in outcomes:
            kind, detail = outcome
            if kind == "accepted":
                # Journaled at admission, completed by the drain.
                assert detail["job"] in journaled
                job = manager.get(detail["job"])
                assert job is not None and job.state == "done"
            else:
                assert detail in (503, 429)


# -------------------------------------------------------------------- claims
class TestClaims:
    @pytest.mark.parametrize("backend_name", ["dir", "sqlite"])
    def test_claim_lease_arbitration(self, tmp_path, backend_name):
        backend = open_backend(backend_name, tmp_path / "store")
        assert backend.acquire_claim("k", "r1", ttl=30.0) == "acquired"
        assert backend.acquire_claim("k", "r1", ttl=30.0) == "acquired"
        assert backend.acquire_claim("k", "r2", ttl=30.0) == "held"
        assert backend.renew_claim("k", "r1", ttl=30.0)
        assert not backend.renew_claim("k", "r2", ttl=30.0)
        # A second instance over the same root sees the same lease state —
        # that is the cross-process story in miniature.
        twin = open_backend(backend_name, tmp_path / "store")
        assert twin.acquire_claim("k", "r2", ttl=30.0) == "held"
        # Expiry: r1's lease lapses, r2 adopts, r1 can no longer renew.
        future = time.time() + 120.0
        assert twin.acquire_claim("k", "r2", ttl=30.0, now=future) == "adopted"
        assert not backend.renew_claim("k", "r1", ttl=30.0)
        assert backend.claims()["k"]["owner"] == "r2"
        twin.release_claim("k", "r2")
        assert backend.claims() == {}

    @pytest.mark.parametrize("backend_name", ["dir", "sqlite"])
    def test_two_replicas_execute_each_job_key_once(
        self, tmp_path, backend_name
    ):
        """Shared store + claims: one execution, both replicas converge."""
        store_root = tmp_path / "store"

        def replica(name: str) -> JobManager:
            def factory() -> Session:
                return Session(
                    config=SimulatorConfig.scaled(),
                    store=ResultStore(store_root, backend=backend_name),
                )

            return JobManager(
                session_factory=factory,
                workers=1,
                queue_size=8,
                claims=open_backend(backend_name, store_root),
                replica_id=name,
                claim_ttl=30.0,
            )

        left, right = replica("rA"), replica("rB")
        job_left, _ = left.submit(parse_submission(TINY))
        job_right, _ = right.submit(parse_submission(TINY))
        left.start()
        right.start()
        assert left.wait(job_left.id, timeout=120).state == "done"
        assert right.wait(job_right.id, timeout=120).state == "done"
        # Exactly one replica simulated each unique point; the other served
        # the shared store.  Two points total, split misses+hits across the
        # two managers' sessions.
        misses = (
            left.metrics()["store"]["misses"]
            + right.metrics()["store"]["misses"]
        )
        assert misses == parse_submission(TINY).unique_points
        assert json.dumps(
            [entry["result"] for entry in job_left.results], sort_keys=True
        ) == json.dumps(
            [entry["result"] for entry in job_right.results], sort_keys=True
        )
        left.shutdown()
        right.shutdown()
        # Nothing leaks: both replicas released their markers.
        assert open_backend(backend_name, store_root).claims() == {}

    def test_stale_claim_of_dead_replica_is_adopted(self, tmp_path):
        store_root = tmp_path / "store"
        backend = open_backend("dir", store_root)
        parsed = parse_submission(TINY)
        # A replica that died mid-job: its claim exists but nobody renews.
        assert backend.acquire_claim(
            parsed.job_key, "dead", ttl=0.2
        ) == "acquired"

        manager = JobManager(
            session_factory=store_session_factory(store_root),
            workers=1,
            queue_size=8,
            claims=open_backend("dir", store_root),
            replica_id="live",
            claim_ttl=5.0,
            claim_poll=0.05,
        )
        job, _ = manager.submit(parsed)
        manager.start()
        assert manager.wait(job.id, timeout=120).state == "done"
        durability = manager.metrics()["durability"]
        assert durability["adopted"] == 1
        assert durability["stale_claims_expired"] == 1
        manager.shutdown()

    def test_held_claim_with_stored_results_serves_the_cache(self, tmp_path):
        """A live holder's finished results unblock the waiter without any
        claim transfer (and without duplicate simulation)."""
        store_root = tmp_path / "store"
        parsed = parse_submission(TINY)
        direct = Session(
            config=SimulatorConfig.scaled(), store=ResultStore(store_root)
        )
        direct.execute(parsed.plan)  # the holder's durable output
        backend = open_backend("dir", store_root)
        assert backend.acquire_claim(
            parsed.job_key, "holder", ttl=3600.0
        ) == "acquired"  # still nominally running, never expires in-test

        manager = JobManager(
            session_factory=store_session_factory(store_root),
            workers=1,
            queue_size=8,
            claims=open_backend("dir", store_root),
            replica_id="waiter",
            claim_ttl=30.0,
        )
        job, _ = manager.submit(parsed)
        manager.start()
        assert manager.wait(job.id, timeout=120).state == "done"
        stats = manager.metrics()["store"]
        assert stats["misses"] == 0 and stats["writes"] == 0
        assert backend.claims()[parsed.job_key]["owner"] == "holder"
        manager.shutdown()


# ------------------------------------------------------------- bounded waits
class TestBoundedWaits:
    def test_manager_wait_raises_job_timeout(self, tmp_path):
        manager = make_manager(tmp_path, workers=0)
        job, _ = manager.submit(parse_submission(TINY))
        with pytest.raises(JobTimeout, match=job.id):
            manager.wait(job.id, timeout=0.05)
        assert issubclass(JobTimeout, TimeoutError)  # old call sites survive
        manager.shutdown()

    def test_client_wait_raises_job_timeout_naming_the_job(self, tmp_path):
        manager = make_manager(tmp_path, workers=0)
        with ReproServer(manager, port=0) as server:
            client = ReproClient(server.url, timeout=30)
            accepted = client.submit(TINY)
            with pytest.raises(JobTimeout, match=accepted["job"]):
                client.wait(accepted["job"], timeout=0.3, poll=0.05)

    def test_client_wait_timeout_when_server_never_answers(self):
        client = ReproClient("http://127.0.0.1:9", timeout=1)
        with pytest.raises(JobTimeout, match="unreachable"):
            client.wait("ghost-1", timeout=0.3, poll=0.05)


# ------------------------------------------------------------- client retry
class TestClientRetry:
    def test_backoff_mirrors_the_sweep_supervisor(self):
        ours = RetryPolicy(
            retries=3, backoff_base=0.25, backoff_factor=2.0,
            backoff_max=30.0, jitter=0.25, seed=7,
        )
        theirs = SupervisionPolicy(
            backoff_base=0.25, backoff_factor=2.0,
            backoff_max=30.0, backoff_jitter=0.25, seed=7,
        )
        for ordinal in range(4):
            for attempt in range(1, 5):
                assert ours.backoff(ordinal, attempt) == theirs.backoff(
                    ordinal, attempt
                )

    def test_transport_fault_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "client.transport:0=enospc")
        reset_fault_counters()
        manager = make_manager(tmp_path, workers=0)
        with ReproServer(manager, port=0) as server:
            client = ReproClient(
                server.url,
                timeout=30,
                retry=RetryPolicy(retries=2, backoff_base=0.01),
            )
            accepted = client.submit(TINY)  # first attempt dies, retry lands
            assert accepted["state"] == "queued"

    def test_without_retries_the_fault_surfaces(self, tmp_path, monkeypatch):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "client.transport:0=enospc")
        reset_fault_counters()
        manager = make_manager(tmp_path, workers=0)
        with ReproServer(manager, port=0) as server:
            client = ReproClient(server.url, timeout=30)
            with pytest.raises(ConnectionFailed):
                client.submit(TINY)

    def test_wait_rides_out_a_daemon_bounce(self, tmp_path):
        """The client polls across a restart; the journal-backed daemon
        comes back with the same job id and finishes it."""
        journal_path = tmp_path / "journal.jsonl"
        before = make_manager(
            tmp_path, workers=0, journal=SubmissionJournal(journal_path)
        )
        first_server = ReproServer(before, port=0)
        first_server.start_background()
        port = first_server.port
        client = ReproClient(first_server.url, timeout=5)
        accepted = client.submit(TINY)
        first_server.stop()  # workers=0: the job survives only in the journal

        def restart() -> None:
            time.sleep(0.5)  # long enough for wait() to poll into the outage
            after = make_manager(
                tmp_path, workers=1, journal=SubmissionJournal(journal_path)
            )
            second_server = ReproServer(after, port=port)
            second_server.start_background()

        thread = threading.Thread(target=restart)
        thread.start()
        snapshot = client.wait(accepted["job"], timeout=120, poll=0.1)
        thread.join()
        assert snapshot["state"] == "done"
        assert snapshot["recovered"] is True


# ----------------------------------------------------------------- listings
class TestJobListing:
    def test_jobs_endpoint_enumerates_every_state(self, tmp_path):
        manager = make_manager(tmp_path, workers=0)
        with ReproServer(manager, port=0) as server:
            client = ReproClient(server.url, timeout=30)
            one = client.submit(TINY)
            two = client.submit(TINY_LRU)
            listing = client.jobs()["jobs"]
            assert {row["job"] for row in listing} == {one["job"], two["job"]}
            assert all(row["state"] == "queued" for row in listing)
            manager.start(1)
            client.wait(one["job"], timeout=120)
            client.wait(two["job"], timeout=120)
            listing = client.jobs()["jobs"]
            assert all(row["state"] == "done" for row in listing)
            assert all("key" in row and "points" in row for row in listing)


# --------------------------------------------------------------- chaos (SIGKILL)
def spawn_daemon(tmp_path, name, store_root, extra=(), faults=None):
    src_dir = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.pop(REPRO_FAULTS_ENV, None)
    if faults:
        env[REPRO_FAULTS_ENV] = faults
    ready = tmp_path / f"ready-{name}"
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--workers", "1",
            "--store", str(store_root),
            "--ready-file", str(ready),
        ]
        + list(extra),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        wait_until(
            lambda: ready.exists() or daemon.poll() is not None,
            timeout=60,
            message=f"daemon {name} never became ready",
        )
        if daemon.poll() is not None:
            raise AssertionError(daemon.communicate()[1])
    except BaseException:
        daemon.kill()
        raise
    return daemon, ready.read_text(encoding="utf-8").strip()


class TestKillRestartChaos:
    def test_sigkill_then_restart_finishes_everything_byte_identical(
        self, tmp_path
    ):
        """The acceptance chaos sequence, in-tree (CI repeats it end to end):
        SIGKILL with one running + one queued job, restart over the same
        store and journal, everything finishes under the original ids and
        the store matches an uninterrupted run byte for byte."""
        store_root = tmp_path / "store"
        # Job 0 hangs inside the worker: guaranteed *running* (not just
        # queued) when the KILL lands; job 1 sits behind it, queued.
        daemon, url = spawn_daemon(
            tmp_path, "first", store_root, faults="serve.job:0=hang:120"
        )
        try:
            client = ReproClient(url, timeout=30)
            first = client.submit(TINY)
            second = client.submit(TINY_LRU)
            wait_until(
                lambda: client.status(first["job"])["state"] == "running",
                timeout=60,
                message="first job never started",
            )
            assert client.status(second["job"])["state"] == "queued"
        finally:
            daemon.kill()  # SIGKILL: no drain, no journal close, no cleanup
            daemon.wait(timeout=60)

        daemon, url = spawn_daemon(tmp_path, "second", store_root)
        try:
            client = ReproClient(url, timeout=30, retry=2)
            metrics = client.metrics()
            assert metrics["durability"]["recovered"] == 2
            assert metrics["durability"]["journal_replayed"] >= 2
            # Original ids, terminal states, real results.
            done_first = client.wait(first["job"], timeout=180)
            done_second = client.wait(second["job"], timeout=180)
            assert done_first["state"] == "done"
            assert done_second["state"] == "done"
            assert done_first["recovered"] and done_second["recovered"]
            assert len(client.result(first["job"])["results"]) == 2
            daemon.send_signal(signal.SIGTERM)
            _, stderr = daemon.communicate(timeout=120)
            assert "recovered 2 unfinished job(s)" in stderr
        finally:
            if daemon.poll() is None:
                daemon.kill()

        # Byte-identity against an uninterrupted run of the same work.
        direct_root = tmp_path / "direct"
        direct = Session(
            config=SimulatorConfig.scaled(), store=ResultStore(direct_root)
        )
        direct.execute(parse_submission(TINY).plan)
        direct.execute(parse_submission(TINY_LRU).plan)
        chaos = store_bytes(store_root)
        assert chaos and chaos == store_bytes(direct_root)
