"""Determinism regression tests for the fast simulation engine.

The engine promises three equalities, all bit-exact:

1. running the same workload twice produces identical ``SimulationResult``s;
2. the packed-trace fast loop reproduces the record-at-a-time loop exactly
   (same MPKI, IPC and Top-Down numbers, down to float identity);
3. the parallel sweep runner returns results identical — and identically
   ordered — to the serial path.
"""

from __future__ import annotations

import pytest

from repro.common.trace import PackedTrace
from repro.core.pipeline import CoDesignPipeline
from repro.experiments.runner import BenchmarkRunner
from repro.experiments.sweep import run_policy_sweep
from repro.sim.config import SimulatorConfig
from repro.sim.simulator import SystemSimulator
from repro.workloads.spec import InputSet, get_spec

#: Every scalar field of SimulationResult that must match bit-for-bit.
RESULT_FIELDS = (
    "benchmark",
    "policy",
    "config_name",
    "instructions",
    "cycles",
    "ipc",
    "l2_inst_misses",
    "l2_data_misses",
    "l2_inst_mpki",
    "l2_data_mpki",
    "l1i_mpki",
    "branch_mpki",
    "dram_accesses",
)

WARMUP = 4000
MEASURED = 12000


def assert_results_identical(a, b) -> None:
    for field in RESULT_FIELDS:
        assert getattr(a, field) == getattr(b, field), field
    assert a.topdown == b.topdown
    assert a.line_stall_cycles == b.line_stall_cycles
    assert a.line_miss_counts == b.line_miss_counts


@pytest.fixture(scope="module")
def prepared():
    return CoDesignPipeline().prepare(get_spec("sqlite"))


def _run(prepared, policy: str, packed: bool):
    config = SimulatorConfig.scaled().with_l2_policy(policy)
    simulator = SystemSimulator(
        config, translator=prepared.mmu(), benchmark=prepared.spec.name
    )
    generator = prepared.trace_generator(InputSet.EVALUATION)
    if packed:
        warmup = generator.take_packed(WARMUP)
        measured = generator.take_packed(MEASURED)
    else:
        warmup = generator.take(WARMUP)
        measured = generator.take(MEASURED)
    simulator.warm_up(warmup)
    return simulator.run(measured)


class TestEngineDeterminism:
    def test_same_workload_twice_is_bit_identical(self, prepared):
        first = _run(prepared, "srrip", packed=False)
        second = _run(prepared, "srrip", packed=False)
        assert_results_identical(first, second)

    @pytest.mark.parametrize("policy", ("srrip", "lru", "ship", "trrip-1"))
    def test_packed_path_matches_record_path(self, prepared, policy):
        via_records = _run(prepared, policy, packed=False)
        via_packed = _run(prepared, policy, packed=True)
        assert_results_identical(via_records, via_packed)

    def test_packed_trace_from_records_equals_generator_packed(self, prepared):
        generator = prepared.trace_generator(InputSet.EVALUATION)
        records = generator.take(2000)
        generator.reset()
        packed = generator.take_packed(2000)
        repacked = PackedTrace.from_records(records)
        assert list(packed.pc) == list(repacked.pc)
        assert list(packed.flags) == list(repacked.flags)
        assert list(packed.mem_address) == list(repacked.mem_address)
        assert packed.to_records() == records


class TestParallelSweepDeterminism:
    def test_parallel_grid_matches_serial(self):
        runner_serial = BenchmarkRunner()
        runner_parallel = BenchmarkRunner()
        benchmarks = ("sqlite", "rapidjson")
        policies = ("srrip", "trrip-1")
        serial = runner_serial.run_grid(benchmarks, policies, jobs=None)
        parallel = runner_parallel.run_grid(benchmarks, policies, jobs=2)
        assert [(b, p) for b, p, _ in serial] == [(b, p) for b, p, _ in parallel]
        for (_, _, a), (_, _, b) in zip(serial, parallel):
            assert_results_identical(a, b)

    def test_sweep_ordering_is_benchmark_major(self):
        sweep = run_policy_sweep(
            benchmarks=("sqlite",), policies=("lru",), jobs=None
        )
        assert sweep.benchmarks == ("sqlite",)
        assert list(sweep.results["sqlite"].keys())[0] == sweep.baseline_policy
