"""Tests for the on-disk result store and the runner's cached path."""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineOptions
from repro.experiments.runner import BenchmarkRunner
from repro.experiments.store import ResultStore, run_key
from repro.sim.config import SimulatorConfig
from repro.workloads.spec import tiny_spec


@pytest.fixture
def spec():
    return tiny_spec()


@pytest.fixture
def config():
    return SimulatorConfig.scaled()


class TestRunKey:
    def test_key_is_stable_across_equal_inputs(self, spec, config):
        options = PipelineOptions()
        key1 = run_key(spec, "srrip", config, options)
        key2 = run_key(spec, "srrip", SimulatorConfig.scaled(), PipelineOptions())
        assert key1 == key2
        assert len(key1) == 64  # hex sha256

    def test_key_changes_with_each_input(self, spec, config):
        options = PipelineOptions()
        base = run_key(spec, "srrip", config, options)
        assert run_key(spec, "trrip-1", config, options) != base
        assert (
            run_key(spec.scaled(0.5), "srrip", config, options) != base
        )
        bigger = config.with_l2_geometry(size_bytes=64 * 1024)
        assert run_key(spec, "srrip", bigger, options) != base
        other_options = PipelineOptions(percentile_hot=0.5)
        assert run_key(spec, "srrip", config, other_options) != base

    def test_config_content_hash_is_stable(self, config):
        assert config.content_hash() == SimulatorConfig.scaled().content_hash()
        assert config.content_hash() != SimulatorConfig.paper().content_hash()


class TestCachedRuns:
    def test_second_runner_serves_from_store_without_simulating(
        self, tmp_path, spec, config
    ):
        first = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        warm = first.run(spec, "trrip-1")
        assert first.simulations_run == 1
        assert first.store.writes == 1

        second = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        cached = second.run(spec, "trrip-1")
        assert second.simulations_run == 0
        assert second.store.hits == 1
        assert second.store.misses == 0
        # Bit-exact: the dataclass compares floats by identity.
        assert cached.result == warm.result

    def test_cache_hit_still_exposes_prepared_workload(self, tmp_path, spec, config):
        store = ResultStore(tmp_path)
        BenchmarkRunner(config=config, store=ResultStore(tmp_path)).run(spec)
        runner = BenchmarkRunner(config=config, store=store)
        artifacts = runner.run(spec)
        assert runner.simulations_run == 0
        assert artifacts.prepared.spec == runner.resolve_spec(spec)
        assert artifacts.prepared.binary is not None

    def test_reuse_histograms_round_trip(self, tmp_path, spec, config):
        first = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        tracked = first.run(spec, track_reuse=True)
        assert first.simulations_run == 1

        second = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        cached = second.run(spec, track_reuse=True)
        assert second.simulations_run == 0
        assert cached.reuse is not None
        assert cached.reuse.base.counts == tracked.reuse.base.counts
        assert cached.reuse.hot_only.counts == tracked.reuse.hot_only.counts

        # A cached hit without track_reuse keeps the fresh-run artifact
        # shape: no tracker, even though the entry carries histograms.
        untracked = second.run(spec)
        assert second.simulations_run == 0
        assert untracked.reuse is None

    def test_entry_without_reuse_upgrades_when_tracking_requested(
        self, tmp_path, spec, config
    ):
        # First run does not track reuse; a later track_reuse=True request
        # must re-simulate and upgrade the entry in place.
        BenchmarkRunner(config=config, store=ResultStore(tmp_path)).run(spec)
        upgrading = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        artifacts = upgrading.run(spec, track_reuse=True)
        assert upgrading.simulations_run == 1
        assert artifacts.reuse is not None

        third = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        third.run(spec, track_reuse=True)
        assert third.simulations_run == 0

    def test_refresh_resimulates_but_rewrites(self, tmp_path, spec, config):
        BenchmarkRunner(config=config, store=ResultStore(tmp_path)).run(spec)
        refreshing = BenchmarkRunner(
            config=config, store=ResultStore(tmp_path, refresh=True)
        )
        refreshing.run(spec)
        assert refreshing.simulations_run == 1
        assert refreshing.store.writes == 1

        after = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        after.run(spec)
        assert after.simulations_run == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path, spec, config):
        store = ResultStore(tmp_path)
        runner = BenchmarkRunner(config=config, store=store)
        runner.run(spec)
        entries = list(tmp_path.glob("runs/*/*.json"))
        assert len(entries) == 1
        entries[0].write_text("{not json", encoding="utf-8")

        recovered_store = ResultStore(tmp_path)
        recovered = BenchmarkRunner(config=config, store=recovered_store)
        recovered.run(spec)
        assert recovered.simulations_run == 1
        assert recovered_store.corrupt == 1

    def test_corrupt_entry_is_quarantined_not_deleted(self, tmp_path, spec, config):
        """The damaged bytes move to <key>.corrupt; the slot is rewritten."""
        runner = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        runner.run(spec)
        entry = next(tmp_path.glob("runs/*/*.json"))
        entry.write_text("{torn", encoding="utf-8")

        store = ResultStore(tmp_path)
        BenchmarkRunner(config=config, store=store).run(spec)
        quarantined = entry.with_suffix(".corrupt")
        assert quarantined.read_text(encoding="utf-8") == "{torn"
        assert entry.exists()  # re-simulated and atomically rewritten
        assert store.corrupt == 1
        # The rewritten entry is healthy: a fresh store serves it as a hit.
        after = ResultStore(tmp_path)
        BenchmarkRunner(config=config, store=after).run(spec)
        assert (after.hits, after.corrupt) == (1, 0)

    def test_unreadable_entry_is_a_plain_miss_not_corrupt(
        self, tmp_path, spec, config
    ):
        """OSError (missing file) never counts toward the corrupt counter."""
        store = ResultStore(tmp_path)
        BenchmarkRunner(config=config, store=store).run(spec)
        assert (store.misses, store.corrupt) == (1, 0)

    def test_different_configs_do_not_collide(self, tmp_path, spec, config):
        small = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        small_result = small.run(spec).result
        big_config = config.with_l2_geometry(size_bytes=64 * 1024)
        big = BenchmarkRunner(config=big_config, store=ResultStore(tmp_path))
        big.run(spec)
        assert big.simulations_run == 1  # no false hit from the small config

        again = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        assert again.run(spec).result == small_result


class TestResultSerialisation:
    def test_simulation_result_round_trips_exactly(self, spec, config):
        from repro.sim.results import SimulationResult

        runner = BenchmarkRunner(config=config)
        result = runner.run(spec, "trrip-1").result
        assert result.line_stall_cycles  # non-trivial payload
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored == result

    def test_reports_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_report("figure3", {"text": "hello", "data": [1, 2]})
        payload = store.load_report("figure3")
        assert payload["text"] == "hello"
        assert payload["data"] == [1, 2]
        assert store.load_report("unknown") is None


class TestParallelGridWithStore:
    def test_grid_workers_share_the_store(self, tmp_path, spec, config):
        store = ResultStore(tmp_path)
        runner = BenchmarkRunner(config=config, store=store)
        grid = runner.run_grid([spec], ["srrip", "trrip-1"], jobs=2)
        assert len(grid) == 2
        # Workers wrote their runs into the shared on-disk store, and their
        # counters were folded back into the parent runner.
        assert len(list(tmp_path.glob("runs/*/*.json"))) == 2
        assert runner.simulations_run == 2
        assert (store.misses, store.hits) == (2, 0)

        serial = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        replay = serial.run_grid([spec], ["srrip", "trrip-1"], jobs=None)
        assert serial.simulations_run == 0
        assert [r for _, _, r in replay] == [r for _, _, r in grid]

    def test_parallel_replay_counts_hits(self, tmp_path, spec, config):
        BenchmarkRunner(config=config, store=ResultStore(tmp_path)).run_grid(
            [spec], ["srrip", "trrip-1"], jobs=2
        )
        replay = BenchmarkRunner(config=config, store=ResultStore(tmp_path))
        replay.run_grid([spec], ["srrip", "trrip-1"], jobs=2)
        assert replay.simulations_run == 0
        assert (replay.store.misses, replay.store.hits) == (0, 2)
