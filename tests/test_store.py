"""Tests for the result store and the runner's cached path.

Every store-backed test in this module is parametrised over **all
registered storage backends** (``dir`` and ``sqlite``): the assertions are
identical, only the ``backend=`` selection changes, which is the proof that
the backends are interchangeable behind the
:class:`~repro.experiments.backends.StoreBackend` interface.  Tests that
must reach behind the store (damaging an entry, inspecting the quarantine)
do so through the backend-agnostic helpers in :mod:`repro.testing` instead
of poking the filesystem layout directly.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineOptions
from repro.experiments.backends import backend_names
from repro.experiments.runner import BenchmarkRunner
from repro.experiments.store import ResultStore, run_key
from repro.sim.config import SimulatorConfig
from repro.testing import damage_store_entry, read_quarantined_entry
from repro.workloads.spec import tiny_spec


@pytest.fixture
def spec():
    return tiny_spec()


@pytest.fixture
def config():
    return SimulatorConfig.scaled()


@pytest.fixture(params=backend_names())
def make_store(request, tmp_path):
    """Build stores over one shared root with the parametrised backend."""

    def factory(refresh: bool = False) -> ResultStore:
        return ResultStore(tmp_path, refresh=refresh, backend=request.param)

    return factory


class TestRunKey:
    def test_key_is_stable_across_equal_inputs(self, spec, config):
        options = PipelineOptions()
        key1 = run_key(spec, "srrip", config, options)
        key2 = run_key(spec, "srrip", SimulatorConfig.scaled(), PipelineOptions())
        assert key1 == key2
        assert len(key1) == 64  # hex sha256

    def test_key_changes_with_each_input(self, spec, config):
        options = PipelineOptions()
        base = run_key(spec, "srrip", config, options)
        assert run_key(spec, "trrip-1", config, options) != base
        assert (
            run_key(spec.scaled(0.5), "srrip", config, options) != base
        )
        bigger = config.with_l2_geometry(size_bytes=64 * 1024)
        assert run_key(spec, "srrip", bigger, options) != base
        other_options = PipelineOptions(percentile_hot=0.5)
        assert run_key(spec, "srrip", config, other_options) != base

    def test_config_content_hash_is_stable(self, config):
        assert config.content_hash() == SimulatorConfig.scaled().content_hash()
        assert config.content_hash() != SimulatorConfig.paper().content_hash()


class TestCachedRuns:
    def test_second_runner_serves_from_store_without_simulating(
        self, make_store, spec, config
    ):
        first = BenchmarkRunner(config=config, store=make_store())
        warm = first.run(spec, "trrip-1")
        assert first.simulations_run == 1
        assert first.store.writes == 1

        second = BenchmarkRunner(config=config, store=make_store())
        cached = second.run(spec, "trrip-1")
        assert second.simulations_run == 0
        assert second.store.hits == 1
        assert second.store.misses == 0
        # Bit-exact: the dataclass compares floats by identity.
        assert cached.result == warm.result

    def test_cache_hit_still_exposes_prepared_workload(
        self, make_store, spec, config
    ):
        store = make_store()
        BenchmarkRunner(config=config, store=make_store()).run(spec)
        runner = BenchmarkRunner(config=config, store=store)
        artifacts = runner.run(spec)
        assert runner.simulations_run == 0
        assert artifacts.prepared.spec == runner.resolve_spec(spec)
        assert artifacts.prepared.binary is not None

    def test_reuse_histograms_round_trip(self, make_store, spec, config):
        first = BenchmarkRunner(config=config, store=make_store())
        tracked = first.run(spec, track_reuse=True)
        assert first.simulations_run == 1

        second = BenchmarkRunner(config=config, store=make_store())
        cached = second.run(spec, track_reuse=True)
        assert second.simulations_run == 0
        assert cached.reuse is not None
        assert cached.reuse.base.counts == tracked.reuse.base.counts
        assert cached.reuse.hot_only.counts == tracked.reuse.hot_only.counts

        # A cached hit without track_reuse keeps the fresh-run artifact
        # shape: no tracker, even though the entry carries histograms.
        untracked = second.run(spec)
        assert second.simulations_run == 0
        assert untracked.reuse is None

    def test_entry_without_reuse_upgrades_when_tracking_requested(
        self, make_store, spec, config
    ):
        # First run does not track reuse; a later track_reuse=True request
        # must re-simulate and upgrade the entry in place.
        BenchmarkRunner(config=config, store=make_store()).run(spec)
        upgrading = BenchmarkRunner(config=config, store=make_store())
        artifacts = upgrading.run(spec, track_reuse=True)
        assert upgrading.simulations_run == 1
        assert artifacts.reuse is not None

        third = BenchmarkRunner(config=config, store=make_store())
        third.run(spec, track_reuse=True)
        assert third.simulations_run == 0

    def test_refresh_resimulates_but_rewrites(self, make_store, spec, config):
        BenchmarkRunner(config=config, store=make_store()).run(spec)
        refreshing = BenchmarkRunner(config=config, store=make_store(refresh=True))
        refreshing.run(spec)
        assert refreshing.simulations_run == 1
        assert refreshing.store.writes == 1

        after = BenchmarkRunner(config=config, store=make_store())
        after.run(spec)
        assert after.simulations_run == 0

    def test_corrupt_entry_is_a_miss(self, make_store, spec, config):
        store = make_store()
        runner = BenchmarkRunner(config=config, store=store)
        runner.run(spec)
        keys = store.backend.keys("runs")
        assert len(keys) == 1
        damage_store_entry(store, keys[0], text="{not json")

        recovered_store = make_store()
        recovered = BenchmarkRunner(config=config, store=recovered_store)
        recovered.run(spec)
        assert recovered.simulations_run == 1
        assert recovered_store.corrupt == 1

    def test_corrupt_entry_is_quarantined_not_deleted(
        self, make_store, spec, config
    ):
        """The damaged bytes move to quarantine; the slot is rewritten."""
        runner = BenchmarkRunner(config=config, store=make_store())
        runner.run(spec)
        key = runner.store.backend.keys("runs")[0]
        damage_store_entry(runner.store, key, text="{torn")

        store = make_store()
        BenchmarkRunner(config=config, store=store).run(spec)
        assert read_quarantined_entry(store, key) == "{torn"
        assert store.backend.quarantined("runs") == [key]
        # Re-simulated and atomically rewritten into the live slot.
        assert key in store.backend.keys("runs")
        assert store.corrupt == 1
        # The rewritten entry is healthy: a fresh store serves it as a hit.
        after = make_store()
        BenchmarkRunner(config=config, store=after).run(spec)
        assert (after.hits, after.corrupt) == (1, 0)

    def test_unreadable_entry_is_a_plain_miss_not_corrupt(
        self, make_store, spec, config
    ):
        """A missing entry never counts toward the corrupt counter."""
        store = make_store()
        BenchmarkRunner(config=config, store=store).run(spec)
        assert (store.misses, store.corrupt) == (1, 0)

    def test_stats_mirror_the_counter_attributes(self, make_store, spec, config):
        store = make_store()
        BenchmarkRunner(config=config, store=store).run(spec)
        assert store.stats() == {
            "hits": 0,
            "misses": 1,
            "writes": 1,
            "corrupt": 0,
        }
        again = make_store()
        BenchmarkRunner(config=config, store=again).run(spec)
        assert again.stats() == {
            "hits": 1,
            "misses": 0,
            "writes": 0,
            "corrupt": 0,
        }

    def test_different_configs_do_not_collide(self, make_store, spec, config):
        small = BenchmarkRunner(config=config, store=make_store())
        small_result = small.run(spec).result
        big_config = config.with_l2_geometry(size_bytes=64 * 1024)
        big = BenchmarkRunner(config=big_config, store=make_store())
        big.run(spec)
        assert big.simulations_run == 1  # no false hit from the small config

        again = BenchmarkRunner(config=config, store=make_store())
        assert again.run(spec).result == small_result


class TestBackendSelection:
    def test_environment_variable_selects_the_backend(self, tmp_path, monkeypatch):
        from repro.experiments.backends import ENV_VAR, SQLiteBackend

        monkeypatch.setenv(ENV_VAR, "sqlite")
        store = ResultStore(tmp_path)
        assert isinstance(store.backend, SQLiteBackend)

    def test_unknown_backend_fails_eagerly(self, tmp_path):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown store backend"):
            ResultStore(tmp_path, backend="carrier-pigeon")

    def test_backends_store_byte_identical_payloads(self, tmp_path, spec, config):
        """The same run saved through both backends decodes identically."""
        import json

        payloads = {}
        for name in backend_names():
            store = ResultStore(tmp_path / name, backend=name)
            BenchmarkRunner(config=config, store=store).run(spec, "trrip-1")
            (key,) = store.backend.keys("runs")
            payloads[name] = (key, json.dumps(store.backend.load("runs", key)))
        (first, *rest) = payloads.values()
        assert all(entry == first for entry in rest)


class TestResultSerialisation:
    def test_simulation_result_round_trips_exactly(self, spec, config):
        from repro.sim.results import SimulationResult

        runner = BenchmarkRunner(config=config)
        result = runner.run(spec, "trrip-1").result
        assert result.line_stall_cycles  # non-trivial payload
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored == result

    def test_reports_round_trip(self, make_store):
        store = make_store()
        store.save_report("figure3", {"text": "hello", "data": [1, 2]})
        payload = store.load_report("figure3")
        assert payload["text"] == "hello"
        assert payload["data"] == [1, 2]
        assert store.load_report("unknown") is None


class TestParallelGridWithStore:
    def test_grid_workers_share_the_store(self, make_store, spec, config):
        store = make_store()
        runner = BenchmarkRunner(config=config, store=store)
        grid = runner.run_grid([spec], ["srrip", "trrip-1"], jobs=2)
        assert len(grid) == 2
        # Workers wrote their runs into the shared store, and their
        # counters were folded back into the parent runner.
        assert len(store.backend.keys("runs")) == 2
        assert runner.simulations_run == 2
        assert (store.misses, store.hits) == (2, 0)

        serial = BenchmarkRunner(config=config, store=make_store())
        replay = serial.run_grid([spec], ["srrip", "trrip-1"], jobs=None)
        assert serial.simulations_run == 0
        assert [r for _, _, r in replay] == [r for _, _, r in grid]

    def test_parallel_replay_counts_hits(self, make_store, spec, config):
        BenchmarkRunner(config=config, store=make_store()).run_grid(
            [spec], ["srrip", "trrip-1"], jobs=2
        )
        replay = BenchmarkRunner(config=config, store=make_store())
        replay.run_grid([spec], ["srrip", "trrip-1"], jobs=2)
        assert replay.simulations_run == 0
        assert (replay.store.misses, replay.store.hits) == (0, 2)
