"""Tests for the simulation service: job queue, HTTP API, client, dedup.

The heavy scenarios run in-process (an ephemeral-port
:class:`~repro.server.app.ReproServer` with the real
:class:`~repro.client.ReproClient` over real sockets); only the
SIGTERM-drain contract spawns an actual ``repro serve`` subprocess, because
signal delivery and exit codes are process-level behaviour.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.api.session import Session
from repro.client import ReproClient, ServerBusy, ServiceError
from repro.experiments.store import ResultStore
from repro.server import (
    JobManager,
    QueueFullError,
    ReproServer,
    ShuttingDownError,
    SubmissionError,
    parse_submission,
)
from repro.sim.config import SimulatorConfig
from repro.testing import REPRO_FAULTS_ENV, reset_fault_counters

TINY = {"benchmarks": ["tiny"], "policies": ["lru", "trrip-1"]}


def store_session_factory(root):
    """Worker-session factory over a shared store root (its own instances)."""

    def factory() -> Session:
        return Session(config=SimulatorConfig.scaled(), store=ResultStore(root))

    return factory


@pytest.fixture
def manager(tmp_path):
    built = JobManager(
        session_factory=store_session_factory(tmp_path / "store"),
        workers=1,
        queue_size=4,
    )
    yield built
    built.shutdown()


# ---------------------------------------------------------------- submissions
class TestSubmissionParsing:
    def test_normalises_and_content_addresses(self):
        parsed = parse_submission(TINY)
        assert parsed.normalized["benchmarks"] == ["tiny"]
        assert parsed.normalized["policies"] == ["lru", "trrip-1"]
        assert parsed.normalized["config"] == "scaled"
        assert parsed.total_points == 2
        assert parsed.unique_points == 2
        assert len(parsed.run_keys) == 2
        assert all(len(key) == 64 for key in parsed.run_keys)

    def test_job_key_is_content_addressed(self):
        assert parse_submission(TINY).job_key == parse_submission(TINY).job_key
        other = parse_submission({"benchmarks": ["tiny"], "policies": ["lru"]})
        assert other.job_key != parse_submission(TINY).job_key
        # track_reuse changes what the job produces, so it changes the key.
        tracked = parse_submission({**TINY, "track_reuse": True})
        assert tracked.job_key != parse_submission(TINY).job_key

    def test_run_keys_match_the_result_store(self):
        """Served jobs land under the exact keys a direct run would."""
        from repro.experiments.store import run_key

        parsed = parse_submission(TINY)
        expected = tuple(
            run_key(
                request.spec,
                request.policy,
                request.config.with_l2_policy(request.policy),
                request.options,
            )
            for request in parsed.plan.requests
        )
        assert parsed.run_keys == expected

    @pytest.mark.parametrize(
        "payload, match",
        [
            ([], "must be a JSON object"),
            ({}, "needs a 'benchmarks' list"),
            ({"benchmarks": []}, "non-empty list"),
            ({"benchmarks": ["tiny"], "policies": [""]}, "non-empty strings"),
            ({"benchmarks": ["tiny"], "oops": 1}, "unknown submission field"),
            ({"benchmarks": ["tiny"], "config": "huge"}, "unknown configuration"),
            ({"benchmarks": ["tiny"], "track_reuse": "yes"}, "boolean"),
            ({"benchmarks": ["tiny"], "warmup_instructions": -5}, "positive"),
            ({"benchmarks": ["no-such-bench"]}, "no-such-bench"),
            ({"benchmarks": ["tiny"], "policies": ["no-such-pol"]}, "no-such-pol"),
        ],
    )
    def test_bad_payloads_fail_eagerly(self, payload, match):
        with pytest.raises(SubmissionError, match=match):
            parse_submission(payload)

    def test_phase_overrides_reach_the_plan(self):
        parsed = parse_submission(
            {**TINY, "warmup_instructions": 500, "measure_instructions": 1500}
        )
        spec = parsed.plan.requests[0].spec
        assert spec.warmup_instructions == 500
        assert spec.eval_instructions == 1500
        assert parsed.job_key != parse_submission(TINY).job_key


# ----------------------------------------------------------------- job layer
class TestJobManager:
    def test_identical_submissions_attach_to_one_job(self, manager):
        first, deduped_first = manager.submit(parse_submission(TINY))
        again, deduped_again = manager.submit(parse_submission(TINY))
        assert not deduped_first and deduped_again
        assert again is first
        assert first.attached == 2
        assert (manager.submitted, manager.deduped) == (2, 1)

    def test_full_queue_rejects_with_retry_after(self, tmp_path):
        staged = JobManager(
            session_factory=store_session_factory(tmp_path / "store"),
            workers=0,  # no threads: the queue fills deterministically
            queue_size=1,
        )
        staged.submit(parse_submission(TINY))
        with pytest.raises(QueueFullError) as excinfo:
            staged.submit(
                parse_submission({"benchmarks": ["tiny"], "policies": ["lru"]})
            )
        assert excinfo.value.retry_after >= 1
        assert staged.rejected == 1
        # The rejected submission registered no job.
        assert staged.metrics()["jobs"]["queued"] == 1

    def test_drain_completes_accepted_jobs(self, tmp_path):
        staged = JobManager(
            session_factory=store_session_factory(tmp_path / "store"),
            workers=0,
            queue_size=4,
        )
        one, _ = staged.submit(parse_submission(TINY))
        two, _ = staged.submit(
            parse_submission({"benchmarks": ["tiny"], "policies": ["lru"]})
        )
        staged.start(1)
        staged.shutdown(drain=True)  # returns only once the backlog is done
        assert one.state == "done" and two.state == "done"
        with pytest.raises(ShuttingDownError):
            staged.submit(parse_submission(TINY))

    def test_failed_jobs_are_not_dedup_targets(self, manager, monkeypatch):
        monkeypatch.setenv(REPRO_FAULTS_ENV, "serve.job:0=raise")
        reset_fault_counters()
        manager.start()
        failed, _ = manager.submit(parse_submission(TINY))
        manager.wait(failed.id, timeout=60)
        assert failed.state == "failed"
        assert failed.error["type"] == "InjectedFault"
        retry, deduped = manager.submit(parse_submission(TINY))
        assert retry is not failed and not deduped
        manager.wait(retry.id, timeout=60)
        assert retry.state == "done"


# ------------------------------------------------------------------ HTTP API
class TestServedJobs:
    def test_served_results_are_byte_identical_to_a_direct_run(self, tmp_path):
        """The acceptance criterion: same store keys, same payloads."""
        served_root = tmp_path / "served"
        direct_root = tmp_path / "direct"
        manager = JobManager(
            session_factory=store_session_factory(served_root),
            workers=1,
            queue_size=4,
        )
        with ReproServer(manager, port=0) as server:
            client = ReproClient(server.url, timeout=30)
            payload = client.run(TINY, timeout=120)
        assert payload["state"] == "done"

        # The equivalent direct run, into a separate store.
        parsed = parse_submission(TINY)
        direct = Session(
            config=SimulatorConfig.scaled(), store=ResultStore(direct_root)
        )
        artifacts = direct.execute(parsed.plan)

        for entry, arts in zip(payload["results"], artifacts):
            assert entry["result"] == json.loads(json.dumps(arts.result.to_dict()))

        # Store contents: identical key sets, byte-identical entries.
        served = {
            path.relative_to(served_root): path.read_bytes()
            for path in sorted(served_root.rglob("runs/*/*.json"))
        }
        direct_bytes = {
            path.relative_to(direct_root): path.read_bytes()
            for path in sorted(direct_root.rglob("runs/*/*.json"))
        }
        assert served and served == direct_bytes

    def test_concurrent_identical_submissions_run_one_simulation(self, tmp_path):
        """N racing identical submissions -> one job, one simulation per
        point, byte-identical results for every submitter."""
        manager = JobManager(
            session_factory=store_session_factory(tmp_path / "store"),
            workers=0,  # stage everything before any execution
            queue_size=4,
        )
        with ReproServer(manager, port=0) as server:
            submitters = 6
            accepted: list = [None] * submitters
            barrier = threading.Barrier(submitters)

            def submit(slot: int) -> None:
                client = ReproClient(server.url, timeout=30)
                barrier.wait()
                accepted[slot] = client.submit(TINY)

            threads = [
                threading.Thread(target=submit, args=(slot,))
                for slot in range(submitters)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            job_ids = {entry["job"] for entry in accepted}
            assert len(job_ids) == 1  # everyone attached to one job
            assert sum(entry["deduplicated"] for entry in accepted) == (
                submitters - 1
            )

            manager.start(1)
            client = ReproClient(server.url, timeout=30)
            job_id = job_ids.pop()
            client.wait(job_id, timeout=120)
            bodies = {
                json.dumps(client.result(job_id), sort_keys=True)
                for _ in range(submitters)
            }
            assert len(bodies) == 1  # byte-identical result for every fetch

            metrics = client.metrics()
        assert metrics["jobs"]["submitted"] == submitters
        assert metrics["jobs"]["deduped"] == submitters - 1
        assert metrics["jobs"]["completed"] == 1
        # The store counters prove zero duplicate simulations: exactly one
        # miss and one write per unique point, no more.
        assert metrics["store"]["misses"] == 2
        assert metrics["store"]["writes"] == 2

    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        manager = JobManager(
            session_factory=store_session_factory(tmp_path / "store"),
            workers=0,
            queue_size=1,
        )
        with ReproServer(manager, port=0) as server:
            client = ReproClient(server.url, timeout=30)
            client.submit(TINY)
            overflow = {"benchmarks": ["tiny"], "policies": ["lru"]}
            with pytest.raises(ServerBusy) as excinfo:
                client.submit(overflow)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            # The raw response carries the Retry-After header.
            status, headers, _ = client._request("POST", "/jobs", overflow)
            assert status == 429
            assert int(headers["Retry-After"]) >= 1

    def test_shutdown_answers_503(self, manager):
        with ReproServer(manager, port=0) as server:
            client = ReproClient(server.url, timeout=30)
            manager.shutdown()
            with pytest.raises(ServiceError) as excinfo:
                client.submit(TINY)
            assert excinfo.value.status == 503

    def test_status_result_and_error_paths(self, tmp_path):
        manager = JobManager(
            session_factory=store_session_factory(tmp_path / "store"),
            workers=0,
            queue_size=4,
        )
        with ReproServer(manager, port=0) as server:
            client = ReproClient(server.url, timeout=30)
            assert client.health() == {"status": "ok"}

            accepted = client.submit(TINY)
            snapshot = client.status(accepted["job"])
            assert snapshot["state"] == "queued"
            assert snapshot["submission"]["benchmarks"] == ["tiny"]

            # Result before completion: 409, not an error payload.
            with pytest.raises(ServiceError) as excinfo:
                client.result(accepted["job"])
            assert excinfo.value.status == 409

            with pytest.raises(ServiceError) as unknown:
                client.status("no-such-job")
            assert unknown.value.status == 404

            status, _, payload = client._request("POST", "/jobs", None)
            assert status == 400 and "JSON" in payload["error"]

            status, _, payload = client._request(
                "POST", "/jobs", {"benchmarks": ["no-such-bench"]}
            )
            assert status == 400 and "no-such-bench" in payload["error"]

            status, _, _ = client._request("GET", "/no/such/endpoint")
            assert status == 404

    def test_injected_fault_fails_the_job_not_the_worker(
        self, tmp_path, monkeypatch
    ):
        """REPRO_FAULTS in the served path: structured error, worker lives."""
        monkeypatch.setenv(REPRO_FAULTS_ENV, "serve.job:0=enospc")
        reset_fault_counters()
        manager = JobManager(
            session_factory=store_session_factory(tmp_path / "store"),
            workers=1,
            queue_size=4,
        )
        with ReproServer(manager, port=0) as server:
            client = ReproClient(server.url, timeout=30)
            accepted = client.submit(TINY)
            snapshot = client.wait(accepted["job"], timeout=60)
            assert snapshot["state"] == "failed"
            assert snapshot["error"]["type"] == "OSError"
            assert "No space left" in snapshot["error"]["message"]

            from repro.client import JobFailed

            with pytest.raises(JobFailed) as excinfo:
                client.result(accepted["job"])
            assert excinfo.value.error["type"] == "OSError"

            # The worker survived: the next (distinct) job is served.
            follow_up = client.run(
                {"benchmarks": ["tiny"], "policies": ["lru"]}, timeout=120
            )
            assert follow_up["state"] == "done"
            assert client.metrics()["jobs"]["failed"] == 1

    def test_metrics_shape(self, manager):
        with ReproServer(manager, port=0) as server:
            client = ReproClient(server.url, timeout=30)
            client.run(TINY, timeout=120)
            metrics = client.metrics()
        assert metrics["uptime_seconds"] >= 0
        assert metrics["jobs"]["queue_capacity"] == 4
        assert metrics["jobs"]["workers"] == 1
        wall = metrics["job_wall_time"]
        assert wall["count"] == 1
        assert wall["max_seconds"] >= wall["mean_seconds"] > 0
        for counter in ("hits", "misses", "writes", "corrupt"):
            assert counter in metrics["store"]
            assert counter in metrics["traces"]


# ------------------------------------------------------------ process level
class TestServeProcess:
    def test_sigterm_drains_accepted_jobs_and_exits_zero(self, tmp_path):
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        ready = tmp_path / "ready"
        store_root = tmp_path / "store"
        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--workers",
                "1",
                "--store",
                str(store_root),
                "--ready-file",
                str(ready),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not ready.exists() and time.monotonic() < deadline:
                assert daemon.poll() is None, daemon.communicate()[1]
                time.sleep(0.1)
            url = ready.read_text(encoding="utf-8").strip()
            client = ReproClient(url, timeout=30)
            accepted = client.submit({"benchmarks": ["tiny"], "policies": ["lru"]})
            assert accepted["state"] == "queued"
            # SIGTERM lands while the job is queued or running; the drain
            # contract says it still completes before the process exits.
            daemon.send_signal(signal.SIGTERM)
            _, stderr = daemon.communicate(timeout=120)
        finally:
            if daemon.poll() is None:
                daemon.kill()
        assert daemon.returncode == 0, stderr
        assert "drained and stopped" in stderr
        # The accepted job finished during the drain: its run is durable.
        assert len(list(store_root.rglob("runs/*/*.json"))) == 1
