"""Unit tests for the TRRIP replacement policy (Algorithm 1)."""

import pytest

from repro.common.temperature import Temperature
from repro.core.trrip import TRRIPPolicy
from tests.conftest import data_load, instruction


@pytest.fixture
def trrip1() -> TRRIPPolicy:
    return TRRIPPolicy(num_sets=4, num_ways=4, variant=1)


@pytest.fixture
def trrip2() -> TRRIPPolicy:
    return TRRIPPolicy(num_sets=4, num_ways=4, variant=2)


class TestInsertion:
    def test_hot_lines_inserted_immediate_in_both_variants(self, trrip1, trrip2):
        request = instruction(0x40, Temperature.HOT)
        assert trrip1.insertion_rrpv(0, request) == trrip1.rrpv_immediate
        assert trrip2.insertion_rrpv(0, request) == trrip2.rrpv_immediate

    def test_warm_lines_default_in_variant1_near_in_variant2(self, trrip1, trrip2):
        request = instruction(0x40, Temperature.WARM)
        assert trrip1.insertion_rrpv(0, request) == trrip1.rrpv_intermediate
        assert trrip2.insertion_rrpv(0, request) == trrip2.rrpv_near

    def test_cold_lines_follow_default_insertion(self, trrip1, trrip2):
        request = instruction(0x40, Temperature.COLD)
        assert trrip1.insertion_rrpv(0, request) == trrip1.rrpv_intermediate
        assert trrip2.insertion_rrpv(0, request) == trrip2.rrpv_intermediate

    def test_untagged_instruction_lines_follow_default(self, trrip1):
        request = instruction(0x40, Temperature.NONE)
        assert trrip1.insertion_rrpv(0, request) == trrip1.rrpv_intermediate

    def test_data_lines_never_trigger_trrip_even_if_tagged(self, trrip1, trrip2):
        # Temperature on a data request must be ignored (Section 3.4).
        request = data_load(0x40).with_temperature(Temperature.HOT)
        assert trrip1.insertion_rrpv(0, request) == trrip1.rrpv_intermediate
        assert trrip2.insertion_rrpv(0, request) == trrip2.rrpv_intermediate


class TestHitPromotion:
    def test_hot_hits_promote_to_immediate(self, trrip1, trrip2):
        for policy in (trrip1, trrip2):
            policy.on_insert(0, 0, instruction(0x40, Temperature.HOT))
            policy.set_rrpv(0, 0, policy.rrpv_distant)
            policy.on_hit(0, 0, instruction(0x40, Temperature.HOT))
            assert policy.rrpv(0, 0) == policy.rrpv_immediate

    def test_variant1_warm_hits_follow_default_promotion(self, trrip1):
        trrip1.on_insert(0, 0, instruction(0x40, Temperature.WARM))
        trrip1.set_rrpv(0, 0, trrip1.rrpv_distant)
        trrip1.on_hit(0, 0, instruction(0x40, Temperature.WARM))
        assert trrip1.rrpv(0, 0) == trrip1.rrpv_immediate

    def test_variant2_warm_hits_only_decrement(self, trrip2):
        trrip2.on_insert(0, 0, instruction(0x40, Temperature.WARM))
        trrip2.set_rrpv(0, 0, trrip2.rrpv_distant)
        trrip2.on_hit(0, 0, instruction(0x40, Temperature.WARM))
        assert trrip2.rrpv(0, 0) == trrip2.rrpv_distant - 1

    def test_variant2_cold_hits_only_decrement(self, trrip2):
        trrip2.on_insert(0, 0, instruction(0x40, Temperature.COLD))
        trrip2.set_rrpv(0, 0, 1)
        trrip2.on_hit(0, 0, instruction(0x40, Temperature.COLD))
        assert trrip2.rrpv(0, 0) == 0

    def test_variant2_decrement_saturates_at_immediate(self, trrip2):
        trrip2.on_insert(0, 0, instruction(0x40, Temperature.WARM))
        trrip2.set_rrpv(0, 0, trrip2.rrpv_immediate)
        trrip2.on_hit(0, 0, instruction(0x40, Temperature.WARM))
        assert trrip2.rrpv(0, 0) == trrip2.rrpv_immediate

    def test_data_hits_follow_default_promotion(self, trrip2):
        trrip2.on_insert(0, 0, data_load(0x40))
        trrip2.set_rrpv(0, 0, trrip2.rrpv_distant)
        trrip2.on_hit(0, 0, data_load(0x40))
        assert trrip2.rrpv(0, 0) == trrip2.rrpv_immediate


class TestEviction:
    def test_eviction_mechanism_is_unmodified_rrip(self, trrip1):
        """TRRIP does not change GetEvictionLine: aging until a distant line."""
        trrip1.on_insert(0, 0, instruction(0x00, Temperature.HOT))
        trrip1.on_insert(0, 1, data_load(0x40))
        trrip1.on_insert(0, 2, data_load(0x80))
        trrip1.on_insert(0, 3, data_load(0xC0))
        victim = trrip1.select_victim(0, data_load(0x100))
        # Hot line at RRPV 0 must not be the victim; a data line at 2->3 is.
        assert victim != 0

    def test_hot_lines_survive_longer_than_srrip_inserted_lines(self):
        """A freshly missed hot line outlives a freshly missed data line."""
        policy = TRRIPPolicy(num_sets=1, num_ways=2, variant=1)
        policy.on_insert(0, 0, instruction(0x00, Temperature.HOT))
        policy.on_insert(0, 1, data_load(0x40))
        assert policy.select_victim(0, data_load(0x80)) == 1


class TestConstruction:
    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            TRRIPPolicy(num_sets=4, num_ways=4, variant=3)

    def test_name_reflects_variant(self):
        assert TRRIPPolicy(4, 4, variant=1).name == "trrip-1"
        assert TRRIPPolicy(4, 4, variant=2).name == "trrip-2"
