"""Unit tests for the baseline replacement policies (LRU/FIFO/Random/RRIP)."""

import pytest

from repro.cache.replacement.basic import FIFOPolicy, LRUPolicy, RandomPolicy
from repro.cache.replacement.rrip import BRRIPPolicy, SRRIPPolicy
from repro.common.request import AccessType
from tests.conftest import data_load, instruction


class TestLRU:
    def test_victim_is_least_recently_used(self):
        policy = LRUPolicy(num_sets=1, num_ways=4)
        for way in range(4):
            policy.on_insert(0, way, instruction(0x40 * way))
        policy.on_hit(0, 0, instruction(0x0))
        victim = policy.select_victim(0, instruction(0x400))
        assert victim == 1  # way 0 was refreshed; way 1 is now the oldest

    def test_hit_refreshes_recency(self):
        policy = LRUPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0, instruction(0x0))
        policy.on_insert(0, 1, instruction(0x40))
        policy.on_hit(0, 0, instruction(0x0))
        assert policy.select_victim(0, instruction(0x80)) == 1

    def test_reset_clears_stamps(self):
        policy = LRUPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 1, instruction(0x40))
        policy.reset()
        assert policy.select_victim(0, instruction(0x80)) == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            LRUPolicy(num_sets=0, num_ways=4)

    def test_out_of_range_way_rejected(self):
        policy = LRUPolicy(num_sets=1, num_ways=2)
        with pytest.raises(IndexError):
            policy.on_hit(0, 5, instruction(0x0))
        with pytest.raises(IndexError):
            policy.on_hit(3, 0, instruction(0x0))


class TestFIFO:
    def test_hits_do_not_refresh(self):
        policy = FIFOPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0, instruction(0x0))
        policy.on_insert(0, 1, instruction(0x40))
        policy.on_hit(0, 0, instruction(0x0))
        # Way 0 was inserted first and stays the victim despite the hit.
        assert policy.select_victim(0, instruction(0x80)) == 0


class TestRandom:
    def test_victims_are_deterministic_for_a_seed(self):
        a = RandomPolicy(num_sets=1, num_ways=8, seed=7)
        b = RandomPolicy(num_sets=1, num_ways=8, seed=7)
        victims_a = [a.select_victim(0, instruction(0x0)) for _ in range(20)]
        victims_b = [b.select_victim(0, instruction(0x0)) for _ in range(20)]
        assert victims_a == victims_b

    def test_victims_are_in_range(self):
        policy = RandomPolicy(num_sets=2, num_ways=4, seed=1)
        for _ in range(50):
            assert 0 <= policy.select_victim(1, instruction(0x0)) < 4


class TestSRRIP:
    def test_insertion_is_intermediate(self):
        policy = SRRIPPolicy(num_sets=1, num_ways=4)
        policy.on_insert(0, 0, instruction(0x0))
        assert policy.rrpv(0, 0) == policy.rrpv_intermediate

    def test_hit_promotes_to_immediate(self):
        policy = SRRIPPolicy(num_sets=1, num_ways=4)
        policy.on_insert(0, 0, instruction(0x0))
        policy.on_hit(0, 0, instruction(0x0))
        assert policy.rrpv(0, 0) == policy.rrpv_immediate

    def test_victim_search_ages_the_set(self):
        policy = SRRIPPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0, instruction(0x0))
        policy.on_insert(0, 1, instruction(0x40))
        policy.on_hit(0, 0, instruction(0x0))  # way0 -> 0, way1 stays at 2
        victim = policy.select_victim(0, instruction(0x80))
        assert victim == 1
        # Aging must have bumped way 0 as well (0 -> 1).
        assert policy.rrpv(0, 0) == 1

    def test_victim_prefers_existing_distant_line(self):
        policy = SRRIPPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0, instruction(0x0))
        policy.on_insert(0, 1, instruction(0x40))
        policy.set_rrpv(0, 1, policy.rrpv_distant)
        assert policy.select_victim(0, instruction(0x80)) == 1
        assert policy.rrpv(0, 0) == policy.rrpv_intermediate  # untouched, no aging

    def test_rrpv_bounds_enforced(self):
        policy = SRRIPPolicy(num_sets=1, num_ways=2)
        with pytest.raises(ValueError):
            policy.set_rrpv(0, 0, 99)

    def test_wider_rrpv_changes_range(self):
        policy = SRRIPPolicy(num_sets=1, num_ways=2, rrpv_bits=3)
        assert policy.rrpv_max == 7
        assert policy.rrpv_intermediate == 6

    def test_eviction_resets_rrpv_to_distant(self):
        policy = SRRIPPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0, instruction(0x0))
        policy.on_evict(0, 0)
        assert policy.rrpv(0, 0) == policy.rrpv_distant


class TestBRRIP:
    def test_most_insertions_are_distant(self):
        policy = BRRIPPolicy(num_sets=1, num_ways=4, bimodal_interval=8)
        rrpvs = []
        for i in range(16):
            rrpvs.append(policy.insertion_rrpv(0, instruction(0x40 * i)))
        assert rrpvs.count(policy.rrpv_distant) == 14
        assert rrpvs.count(policy.rrpv_intermediate) == 2

    def test_bimodal_interval_validated(self):
        with pytest.raises(ValueError):
            BRRIPPolicy(num_sets=1, num_ways=4, bimodal_interval=0)

    def test_reset_restarts_duty_cycle(self):
        policy = BRRIPPolicy(num_sets=1, num_ways=4, bimodal_interval=4)
        first = [policy.insertion_rrpv(0, data_load(0x40 * i)) for i in range(8)]
        policy.reset()
        second = [policy.insertion_rrpv(0, data_load(0x40 * i)) for i in range(8)]
        assert first == second
