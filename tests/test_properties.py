"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.dueling import SaturatingCounter
from repro.cache.replacement.factory import available_policies, create_policy
from repro.common.addressing import align_up, line_address, line_index
from repro.common.request import AccessType, MemoryRequest
from repro.common.temperature import Temperature
from repro.compiler.classify import ClassifierConfig, TemperatureClassifier
from repro.compiler.ir import BlockId, Program, make_function
from repro.compiler.profile import InstrumentationProfile
from repro.core.trrip import TRRIPPolicy
from repro.cpu.topdown import TopDownBreakdown

addresses = st.integers(min_value=0, max_value=2**40)
temperatures = st.sampled_from(list(Temperature))
access_types = st.sampled_from(list(AccessType))


# ----------------------------------------------------------------- addressing
@given(addresses)
def test_line_address_is_aligned_and_below_original(address):
    aligned = line_address(address)
    assert aligned % 64 == 0
    assert 0 <= address - aligned < 64
    assert line_index(address) == aligned // 64


@given(addresses, st.sampled_from([1, 2, 4, 64, 4096, 16384]))
def test_align_up_is_aligned_and_minimal(address, alignment):
    aligned = align_up(address, alignment)
    assert aligned % alignment == 0
    assert 0 <= aligned - address < alignment


# ----------------------------------------------------------------- saturation
@given(
    st.integers(min_value=1, max_value=12),
    st.lists(st.booleans(), max_size=200),
)
def test_saturating_counter_stays_in_range(bits, steps):
    counter = SaturatingCounter(bits=bits)
    for up in steps:
        counter.increment() if up else counter.decrement()
        assert 0 <= counter.value <= counter.max_value


# ---------------------------------------------------------------- replacement
@st.composite
def request_streams(draw):
    count = draw(st.integers(min_value=1, max_value=120))
    stream = []
    for _ in range(count):
        stream.append(
            MemoryRequest(
                address=draw(st.integers(min_value=0, max_value=64)) * 64,
                access_type=draw(access_types),
                pc=draw(st.integers(min_value=0, max_value=2**20)),
                temperature=draw(temperatures),
                starvation_hint=draw(st.booleans()),
            )
        )
    return stream


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(st.sampled_from(sorted(available_policies())), request_streams())
def test_every_policy_always_returns_a_legal_victim(policy_name, stream):
    """Whatever the access pattern, victims must be legal way indices."""
    policy = create_policy(policy_name, num_sets=4, num_ways=4)
    occupancy = [[False] * 4 for _ in range(4)]
    for request in stream:
        set_index = (request.address // 64) % 4
        free = next((w for w in range(4) if not occupancy[set_index][w]), None)
        if free is not None:
            occupancy[set_index][free] = True
            policy.on_insert(set_index, free, request)
        else:
            victim = policy.select_victim(set_index, request)
            assert 0 <= victim < 4
            policy.on_evict(set_index, victim, request)
            policy.on_insert(set_index, victim, request)


@settings(max_examples=30, deadline=None)
@given(request_streams())
def test_trrip_rrpv_values_stay_in_range(stream):
    policy = TRRIPPolicy(num_sets=4, num_ways=4, variant=2)
    for i, request in enumerate(stream):
        set_index = (request.address // 64) % 4
        way = i % 4
        policy.on_insert(set_index, way, request)
        policy.on_hit(set_index, way, request)
        assert 0 <= policy.rrpv(set_index, way) <= policy.rrpv_max


# ---------------------------------------------------------------------- cache
@settings(max_examples=30, deadline=None)
@given(request_streams())
def test_cache_invariants_under_arbitrary_streams(stream):
    """No duplicate tags in a set; stats always reconcile."""
    from repro.cache.replacement.rrip import SRRIPPolicy

    cache = SetAssociativeCache("prop", 4096, 4, SRRIPPolicy(16, 4))
    for request in stream:
        hit = cache.access(request)
        if not hit:
            cache.fill(request)
        assert cache.contains(request.address)
    for set_index in range(cache.num_sets):
        tags = [b.tag for b in cache.blocks_in_set(set_index) if b.valid]
        assert len(tags) == len(set(tags))
    stats = cache.stats
    assert stats.demand_hits + stats.demand_misses == stats.demand_accesses
    assert stats.inst_accesses + stats.data_accesses == stats.demand_accesses


# ------------------------------------------------------------- classification
@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=40),
    st.floats(min_value=0.05, max_value=1.0),
)
def test_classification_is_monotonic_in_counts(counts, percentile_hot):
    """Blocks with larger counters never end up colder than smaller ones."""
    program = Program(
        name="prop", functions=[make_function("f", [64] * len(counts))]
    )
    profile = InstrumentationProfile("prop")
    for index, count in enumerate(counts):
        profile.record(BlockId("f", index), count)
    classifier = TemperatureClassifier(
        ClassifierConfig(percentile_hot=percentile_hot, percentile_cold=1.0)
    )
    result = classifier.classify(program, profile)
    rank = {Temperature.HOT: 0, Temperature.WARM: 1, Temperature.COLD: 2}
    pairs = sorted(
        ((counts[i], rank[result.temperature(BlockId("f", i))]) for i in range(len(counts))),
        key=lambda pair: pair[0],
        reverse=True,
    )
    best_rank_so_far = 0
    for _count, temperature_rank in pairs:
        assert temperature_rank >= best_rank_so_far
        best_rank_so_far = max(best_rank_so_far, temperature_rank)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=40))
def test_percentile_100_marks_every_executed_block_hot(counts):
    program = Program(name="prop", functions=[make_function("f", [64] * len(counts))])
    profile = InstrumentationProfile("prop")
    for index, count in enumerate(counts):
        profile.record(BlockId("f", index), count)
    classifier = TemperatureClassifier(
        ClassifierConfig(percentile_hot=1.0, percentile_cold=1.0)
    )
    result = classifier.classify(program, profile)
    assert all(
        result.temperature(BlockId("f", i)) is Temperature.HOT
        for i in range(len(counts))
    )


# -------------------------------------------------------------------- topdown
@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(TopDownBreakdown.CATEGORIES),
                          st.floats(min_value=0, max_value=1e6)), max_size=50))
def test_topdown_fractions_always_normalised(additions):
    breakdown = TopDownBreakdown()
    for category, cycles in additions:
        breakdown.add(category, cycles)
    fractions = breakdown.fractions()
    total = sum(fractions.values())
    assert total == 0.0 or abs(total - 1.0) < 1e-9
