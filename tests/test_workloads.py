"""Unit tests for the workload substrate: specs, builder, behaviour, traces."""

import itertools

import pytest

from repro.common.errors import WorkloadError
from repro.common.trace import TraceRecord
from repro.compiler.pgo import PGOCompiler
from repro.workloads.behavior import ControlFlowModel, classify_hot_functions
from repro.workloads.builder import SyntheticProgramBuilder
from repro.workloads.profiling import collect_profile
from repro.workloads.spec import (
    PROXY_BENCHMARK_NAMES,
    SYSTEM_COMPONENT_NAMES,
    InputSet,
    WorkloadSpec,
    all_proxy_specs,
    all_system_specs,
    get_spec,
)
from repro.workloads.tracegen import TraceGenerator


class TestSpecs:
    def test_all_ten_proxies_defined(self):
        assert len(PROXY_BENCHMARK_NAMES) == 10
        assert {spec.name for spec in all_proxy_specs()} == set(PROXY_BENCHMARK_NAMES)

    def test_all_five_system_components_defined(self):
        assert len(SYSTEM_COMPONENT_NAMES) == 5
        assert {s.name for s in all_system_specs()} == set(SYSTEM_COMPONENT_NAMES)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            get_spec("spec2017-floating-point")

    def test_derived_sizes_are_consistent(self):
        spec = get_spec("sqlite")
        assert spec.hot_code_bytes == (
            spec.hot_functions * spec.blocks_per_hot_function * spec.block_bytes
        )
        assert spec.total_code_bytes == (
            spec.hot_code_bytes + spec.warm_code_bytes + spec.cold_code_bytes
        )

    def test_scaling_multiplies_footprints(self):
        spec = get_spec("sqlite")
        bigger = spec.scaled(2.0)
        assert bigger.hot_functions == spec.hot_functions * 2
        assert bigger.eval_instructions == spec.eval_instructions * 2
        with pytest.raises(WorkloadError):
            spec.scaled(0)

    def test_invalid_rates_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(
                name="bad",
                category="proxy",
                description="",
                data_access_rate=1.5,
            )

    def test_with_overrides_creates_modified_copy(self):
        spec = get_spec("sqlite")
        other = spec.with_overrides(hot_functions=5)
        assert other.hot_functions == 5
        assert spec.hot_functions != 5


class TestBuilder:
    def test_build_produces_expected_function_counts(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        assert len(workload.hot_function_names) == tiny_spec.hot_functions
        assert len(workload.warm_function_names) == tiny_spec.warm_functions
        assert len(workload.cold_function_names) == tiny_spec.cold_functions

    def test_builds_are_deterministic(self, tiny_spec):
        a = SyntheticProgramBuilder().build(tiny_spec)
        b = SyntheticProgramBuilder().build(tiny_spec)
        assert [f.name for f in a.program.functions] == [
            f.name for f in b.program.functions
        ]
        assert a.hot_trip_counts == b.hot_trip_counts
        assert a.program.size_bytes == b.program.size_bytes

    def test_function_sizes_are_jittered(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        sizes = {
            len(workload.executed_blocks_of(name))
            for name in workload.hot_function_names
        }
        assert len(sizes) > 1  # not every hot function has the same hot path

    def test_trip_counts_within_bounds(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        for name in workload.hot_function_names:
            assert 1 <= workload.trip_count(name) <= tiny_spec.max_hot_trip_count

    def test_executed_blocks_exist_in_program(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        for name, blocks in workload.executed_blocks.items():
            for block_id in blocks:
                assert workload.program.block(block_id).size_bytes > 0


class TestControlFlow:
    def test_hot_function_classes_partition(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        classes = classify_hot_functions(workload)
        combined = set(classes.core) | set(classes.regular) | set(classes.occasional)
        assert combined == set(workload.hot_function_names)
        assert classes.core and classes.regular

    def test_core_functions_called_more_often_than_occasional(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        model = ControlFlowModel(workload, InputSet.EVALUATION)
        classes = model.classes
        counts = {name: 0 for name in workload.hot_function_names}
        for _ in range(10):
            for call in model.one_iteration():
                if call.kind == "hot":
                    counts[call.function_name] += 1
        core_mean = sum(counts[n] for n in classes.core) / len(classes.core)
        occ = classes.occasional or classes.regular
        occ_mean = sum(counts[n] for n in occ) / len(occ)
        assert core_mean > occ_mean

    def test_training_never_executes_cold_functions(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        model = ControlFlowModel(workload, InputSet.TRAINING)
        kinds = {
            call.kind
            for _ in range(20)
            for call in model.one_iteration()
        }
        assert "cold" not in kinds

    def test_model_is_deterministic_per_input_set(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        a = ControlFlowModel(workload, InputSet.EVALUATION)
        b = ControlFlowModel(workload, InputSet.EVALUATION)
        calls_a = list(itertools.islice(a.calls(), 200))
        calls_b = list(itertools.islice(b.calls(), 200))
        assert calls_a == calls_b

    def test_training_and_evaluation_streams_differ(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        training = list(
            itertools.islice(ControlFlowModel(workload, InputSet.TRAINING).calls(), 200)
        )
        evaluation = list(
            itertools.islice(
                ControlFlowModel(workload, InputSet.EVALUATION).calls(), 200
            )
        )
        assert training != evaluation


class TestProfiling:
    def test_profile_covers_hot_and_warm_but_not_cold(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        profile = collect_profile(workload)
        hot_block = workload.executed_blocks_of(workload.hot_function_names[0])[0]
        assert profile.count(hot_block) > 0
        for name in workload.cold_function_names:
            for block_id in workload.executed_blocks_of(name):
                assert profile.count(block_id) == 0

    def test_hot_counts_dominate_warm_counts(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        profile = collect_profile(workload)
        hot_counts = [
            profile.count(b)
            for n in workload.hot_function_names
            for b in workload.executed_blocks_of(n)
        ]
        warm_counts = [
            profile.count(b)
            for n in workload.warm_function_names
            for b in workload.executed_blocks_of(n)
        ]
        assert min(c for c in hot_counts if c) > max(warm_counts + [0]) * 5

    def test_invalid_arguments_rejected(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        with pytest.raises(ValueError):
            collect_profile(workload, iterations=0)
        with pytest.raises(ValueError):
            collect_profile(workload, trip_multiplier=0)


class TestTraceGenerator:
    @pytest.fixture
    def generator(self, tiny_spec) -> TraceGenerator:
        workload = SyntheticProgramBuilder().build(tiny_spec)
        profile = collect_profile(workload)
        binary = PGOCompiler().compile_with_pgo(workload.program, profile)
        return TraceGenerator(workload, binary)

    def test_produces_requested_number_of_records(self, generator):
        records = generator.take(500)
        assert len(records) == 500
        assert all(isinstance(record, TraceRecord) for record in records)

    def test_records_are_deterministic_after_reset(self, generator):
        first = generator.take(300)
        generator.reset()
        second = generator.take(300)
        assert first == second

    def test_stream_is_continuous_across_calls(self, generator):
        a = generator.take(100)
        b = generator.take(100)
        assert a[-1] != b[0] or a != b  # continues, does not restart

    def test_contains_branches_and_memory_accesses(self, generator):
        records = generator.take(3000)
        assert any(record.is_branch for record in records)
        assert any(record.is_memory for record in records)
        assert any(record.is_store for record in records)

    def test_data_addresses_fall_in_data_regions(self, generator):
        records = generator.take(3000)
        workload = generator.workload
        for record in records:
            if record.mem_address is None:
                continue
            in_stream = (
                workload.data_stream_base
                <= record.mem_address
                < workload.data_stream_base + workload.data_stream_bytes
            )
            in_reuse = (
                workload.data_reuse_base
                <= record.mem_address
                < workload.data_reuse_base + workload.data_reuse_bytes
            )
            assert in_stream or in_reuse

    def test_instruction_addresses_come_from_the_binary(self, generator):
        records = generator.take(3000)
        image = generator.binary.image
        low, high = image.address_range()
        for record in records:
            inside_image = low <= record.pc < high
            inside_external = image.is_external(record.pc)
            assert inside_image or inside_external

    def test_mismatched_binary_rejected(self, tiny_spec):
        workload = SyntheticProgramBuilder().build(tiny_spec)
        other_spec = tiny_spec.with_overrides(name="other")
        other = SyntheticProgramBuilder().build(other_spec)
        binary = PGOCompiler().compile_without_pgo(other.program)
        with pytest.raises(WorkloadError):
            TraceGenerator(workload, binary)
