"""Keep the code blocks in README.md and EXPERIMENTS.md runnable.

CI regenerates documentation drift the cheap way: every fenced ``bash`` block
is parsed and its commands validated against the real CLI/argument parsers
and the real file tree, and every fenced ``python`` block must compile and
only import things that actually exist.  A doc example that rots — a renamed
experiment, a dropped flag, a moved file — fails here before a user hits it.
"""

from __future__ import annotations

import ast
import importlib
import shlex
from pathlib import Path

import pytest

from repro.api.scenario import resolve_token
from repro.cli.main import build_parser
from repro.experiments.registry import REGISTRY
from repro.workloads.spec import get_spec

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = ("README.md", "EXPERIMENTS.md")

#: Commands docs may reference without further checking.
KNOWN_COMMANDS = {"pip", "git", "jq", "less"}


def iter_code_blocks(path: Path):
    """(language, text) for every fenced code block in a markdown file."""
    language = None
    lines: list[str] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if stripped.startswith("```"):
            if language is None:
                language = stripped[3:].strip()
            else:
                yield language, "\n".join(lines)
                language, lines = None, []
        elif language is not None:
            lines.append(line)


def doc_blocks(language: str) -> list:
    blocks = []
    for name in DOC_FILES:
        for block_language, text in iter_code_blocks(REPO_ROOT / name):
            if block_language == language:
                blocks.append(pytest.param(name, text, id=f"{name}:{len(blocks)}"))
    return blocks


# ----------------------------------------------------------------- validators
def _validate_repro_args(argv: list[str], context: str) -> None:
    try:
        args = build_parser().parse_args(argv)
    except SystemExit:
        pytest.fail(f"documented CLI invocation no longer parses: {context}")
    if getattr(args, "command", None) == "run":
        assert args.experiment in REGISTRY, (
            f"documented experiment {args.experiment!r} is not registered "
            f"({context})"
        )
    benchmarks = getattr(args, "benchmarks", None)
    if benchmarks:
        for name in benchmarks.split(","):
            get_spec(name.strip())  # raises on unknown benchmarks
    # The unified workload-token flags (--spec, --core, --workload) accept
    # catalog names, family tokens and "tiny"; validate each through the
    # same resolution path the scenario serializer uses.
    for attr in ("spec", "core", "workload"):
        for token in getattr(args, attr, None) or ():
            resolve_token(token)  # raises on unknown tokens/parameters


def _validate_python_invocation(tokens: list[str], context: str) -> None:
    if tokens[:2] == ["-m", "repro.cli"]:
        _validate_repro_args(tokens[2:], context)
        return
    if tokens[:2] == ["-m", "pytest"]:
        for token in tokens[2:]:
            # Only file/directory targets; skip flags and option values.
            if token.startswith("-") or not ("/" in token or token.endswith(".py")):
                continue
            assert (REPO_ROOT / token).exists(), (
                f"documented pytest target {token!r} does not exist ({context})"
            )
        return
    if tokens and tokens[0].endswith(".py"):
        assert (REPO_ROOT / tokens[0]).exists(), (
            f"documented script {tokens[0]!r} does not exist ({context})"
        )


def _validate_bash_line(line: str, context: str) -> None:
    tokens = shlex.split(line)
    # Drop leading environment assignments (PYTHONPATH=src python ...).
    while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
        tokens.pop(0)
    if not tokens:
        return
    command, rest = tokens[0], tokens[1:]
    if command == "repro":
        _validate_repro_args(rest, context)
    elif command == "python":
        _validate_python_invocation(rest, context)
    else:
        assert command in KNOWN_COMMANDS, (
            f"unrecognised documented command {command!r} ({context}); "
            "add it to KNOWN_COMMANDS if intentional"
        )


# ---------------------------------------------------------------------- tests
@pytest.mark.parametrize("doc,block", doc_blocks("bash"))
def test_bash_blocks_reference_real_commands(doc, block):
    for line in block.splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            _validate_bash_line(line, context=doc)


@pytest.mark.parametrize("doc,block", doc_blocks("python"))
def test_python_blocks_compile_and_import(doc, block):
    tree = compile(block, f"<{doc}>", "exec", flags=ast.PyCF_ONLY_AST)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{doc}: `from {node.module} import {alias.name}` no "
                    "longer resolves"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                importlib.import_module(alias.name)


def test_docs_mention_every_registered_experiment():
    """`repro list` is the catalog; EXPERIMENTS.md must name its span."""
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for anchor in ("table1", "figure9b", "repro list", "repro report"):
        assert anchor in text, f"EXPERIMENTS.md no longer documents {anchor!r}"
