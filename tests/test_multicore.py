"""Interleaved multi-core simulation: scenarios, keys, partitioning, server.

The invariants under test:

* a one-entry ``cores=[x]`` scenario is *the same scenario* as
  ``benchmarks=[x]`` — same requests, same store keys, bit-identical result;
* N-core runs are deterministic and identical whether the session executes
  serially or with a worker pool (multi-core points always run solo-serial);
* the shared L2/SLC actually couples the cores (non-zero inter-core
  evictions under contention) and ``partition`` largely decouples them;
* the scenario wire form round-trips through the one shared serializer and
  rejects unknown fields/versions with the offending token attached;
* a served submission of the same core list produces exactly the store keys
  a direct session run writes (CLI and daemon share one cache).
"""

from __future__ import annotations

import pytest

from repro.api.scenario import Scenario, build_plan
from repro.cache.replacement.partition import PartitionPolicy, parse_partition_ways
from repro.cache.replacement.spec import PolicySpec
from repro.common.errors import ConfigurationError, ReproError
from repro.experiments.interference import format_interference, run_interference
from repro.experiments.store import multicore_run_key
from repro.server.submission import parse_submission
from repro.sim.config import SimulatorConfig
from repro.sim.multicore import MulticoreResult, normalize_interleave
from repro.testing import make_session
from repro.workloads.spec import tiny_spec

#: Two small, genuinely contending core workloads (skewed reuse vs scan).
CONTENDERS = (
    "zipf:alpha=1.2,instructions=4000,warmup=1000",
    "streaming:instructions=4000,warmup=1000",
)


def run_cores(session, cores, policy="lru", interleave=()):
    scenario = Scenario(cores=cores, interleave=interleave, policies=(policy,))
    [artifacts] = session.run(scenario)
    return artifacts.result


# ------------------------------------------------------------ N=1 degeneration
class TestSingleCoreEquivalence:
    def test_one_core_scenario_normalizes_to_single_core(self):
        scenario = Scenario(cores=("tiny",))
        assert not scenario.is_multicore
        assert scenario.cores == ()
        assert scenario.benchmarks == ("tiny",)

    def test_one_core_requests_equal_legacy_requests(self):
        plan_cores = build_plan((Scenario(cores=(tiny_spec(),)),))
        plan_legacy = build_plan((Scenario(benchmarks=(tiny_spec(),)),))
        assert [r.key() for r in plan_cores.requests] == [
            r.key() for r in plan_legacy.requests
        ]

    def test_one_core_result_bit_identical_to_legacy(self, tiny_session):
        [via_cores] = tiny_session.run(Scenario(cores=(tiny_spec(),)))
        [legacy] = tiny_session.run(Scenario(benchmarks=(tiny_spec(),)))
        assert via_cores.result.to_dict() == legacy.result.to_dict()


# ----------------------------------------------------------------- determinism
class TestDeterminism:
    def test_two_core_run_is_deterministic(self, tiny_session):
        first = run_cores(tiny_session, (tiny_spec(), tiny_spec()))
        second = run_cores(tiny_session, (tiny_spec(), tiny_spec()))
        assert first.to_dict() == second.to_dict()

    def test_pool_session_matches_serial(self):
        # Multi-core points are pinned to the solo-serial path, so a jobs=2
        # plan that mixes single- and multi-core requests stays bit-identical.
        scenario = Scenario(cores=(tiny_spec(), tiny_spec()))
        solo = Scenario(benchmarks=(tiny_spec(),))
        serial = make_session()
        pooled = make_session()
        results_serial = serial.run(solo, scenario)
        results_pooled = pooled.run(solo, scenario, jobs=2)
        for left, right in zip(results_serial, results_pooled):
            assert left.result.to_dict() == right.result.to_dict()

    def test_interleave_ratio_changes_the_result_key(self):
        even = build_plan((Scenario(cores=(tiny_spec(), tiny_spec())),))
        skewed = build_plan(
            (Scenario(cores=(tiny_spec(), tiny_spec()), interleave=(2, 1)),)
        )
        assert even.requests[0].key() != skewed.requests[0].key()


# ------------------------------------------------------------- shared hierarchy
class TestSharedCache:
    def test_contention_produces_inter_core_evictions(self, tiny_session):
        result = run_cores(tiny_session, CONTENDERS)
        assert isinstance(result, MulticoreResult)
        assert len(result.cores) == 2
        assert result.total_inter_core_evictions > 0

    def test_per_core_stats_are_private(self, tiny_session):
        result = run_cores(tiny_session, CONTENDERS)
        for core in result.cores:
            assert core.instructions > 0
            assert core.ipc > 0

    def test_occupancy_accounts_all_cores(self, tiny_session):
        result = run_cores(tiny_session, CONTENDERS)
        assert set(result.occupancy) == {0, 1}
        assert all(lines >= 0 for lines in result.occupancy.values())
        assert sum(result.occupancy.values()) > 0

    def test_partition_reduces_inter_core_evictions(self, tiny_session):
        shared = run_cores(tiny_session, CONTENDERS, policy="lru")
        isolated = run_cores(
            tiny_session, CONTENDERS, policy="partition:base=lru"
        )
        assert (
            isolated.total_inter_core_evictions
            < shared.total_inter_core_evictions
        )

    def test_multicore_result_round_trips_through_dict(self, tiny_session):
        result = run_cores(tiny_session, (tiny_spec(), tiny_spec()))
        clone = MulticoreResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()

    def test_store_hit_on_second_run(self, tmp_path):
        session = make_session(store_root=tmp_path)
        scenario = Scenario(cores=(tiny_spec(), tiny_spec()))
        [first] = session.run(scenario)
        hits_before = session.store.hits
        [second] = session.run(scenario)
        assert session.store.hits == hits_before + 1
        assert second.result.to_dict() == first.result.to_dict()


# ------------------------------------------------------------ partition policy
class TestPartitionPolicy:
    def test_parse_ways(self):
        assert parse_partition_ways("4+4", 8) == (4, 4)
        assert parse_partition_ways("6+2", 8) == (6, 2)
        assert parse_partition_ways("", 8) == (4, 4)

    def test_ways_must_cover_the_cache(self):
        with pytest.raises(ConfigurationError, match="sum to"):
            PolicySpec.of("partition:ways=5+5,base=lru").build(4, 8)

    def test_zero_width_segment_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            parse_partition_ways("8+0", 8)

    def test_nesting_rejected(self):
        with pytest.raises(ConfigurationError, match="nest"):
            PartitionPolicy(4, 8, ways="4+4", base="partition")

    def test_composes_with_other_bases(self):
        for base in ("lru", "srrip", "ship"):
            policy = PolicySpec.of(f"partition:ways=4+4,base={base}").build(4, 8)
            assert isinstance(policy, PartitionPolicy)

    def test_canonical_token_is_stable(self):
        spec = PolicySpec.of("partition:ways=4+4,base=lru")
        assert spec.canonical() == "partition:base=lru,ways=4+4"


# ------------------------------------------------------------------- serializer
class TestScenarioWire:
    def test_round_trip_preserves_expansion(self):
        scenario = Scenario(
            cores=("tiny", "tiny"),
            interleave=(2, 1),
            policies=("lru", "srrip"),
            config=SimulatorConfig.scaled(),
        )
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone.to_dict() == scenario.to_dict()
        left = build_plan((scenario,))
        right = build_plan((clone,))
        assert [r.key() for r in left.requests] == [
            r.key() for r in right.requests
        ]

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario field"):
            Scenario.from_dict({"benchmarks": ["tiny"], "oops": 1})

    def test_unsupported_version_rejected(self):
        with pytest.raises(ConfigurationError, match="unsupported scenario schema"):
            Scenario.from_dict({"v": 99, "benchmarks": ["tiny"]})

    def test_unknown_token_carries_itself(self):
        with pytest.raises(ConfigurationError) as caught:
            Scenario.from_dict({"cores": ["tiny", "no-such-workload"]})
        assert caught.value.token == "no-such-workload"

    def test_interleave_needs_cores(self):
        with pytest.raises(ConfigurationError, match="interleave"):
            Scenario(benchmarks=("tiny",), interleave=(2, 1))

    def test_interleave_length_must_match(self):
        with pytest.raises(ConfigurationError):
            Scenario(cores=("tiny", "tiny"), interleave=(1, 1, 1))

    def test_normalize_interleave(self):
        assert normalize_interleave((), 3) == (1, 1, 1)
        assert normalize_interleave((2, 1), 2) == (2, 1)
        with pytest.raises(ReproError):
            normalize_interleave((0, 1), 2)


# ------------------------------------------------------------------ served path
class TestServedSubmission:
    def test_served_keys_match_direct_store_keys(self, tmp_path):
        parsed = parse_submission(
            {"cores": ["tiny", "tiny"], "interleave": [2, 1]}
        )
        session = make_session(store_root=tmp_path)
        session.execute(parsed.plan)
        for key in parsed.run_keys:
            assert session.store.load_multicore(key) is not None

    def test_served_key_equals_handwritten_key(self):
        parsed = parse_submission({"cores": ["tiny", "tiny"]})
        [request] = parsed.plan.requests
        assert parsed.run_keys[0] == multicore_run_key(
            request.cores,
            request.policy,
            request.config.with_l2_policy(request.policy),
            request.options,
            request.interleave,
        )

    def test_bad_core_token_is_a_submission_error_with_token(self):
        from repro.server.submission import SubmissionError

        with pytest.raises(SubmissionError) as caught:
            parse_submission({"cores": ["tiny", "no-such"]})
        assert caught.value.token == "no-such"

    def test_http_400_body_carries_the_token(self):
        from repro.server import JobManager, ReproServer
        from repro.client import ReproClient, ServiceError

        manager = JobManager(session_factory=make_session, workers=1)
        with ReproServer(manager, port=0) as server:
            client = ReproClient(server.url)
            with pytest.raises(ServiceError) as caught:
                client.submit({"cores": ["tiny", "no-such"]})
        assert caught.value.status == 400
        assert caught.value.payload["token"] == "no-such"

    def test_bad_partition_geometry_is_a_400_token(self):
        from repro.server.submission import SubmissionError

        with pytest.raises(SubmissionError) as caught:
            parse_submission(
                {
                    "cores": ["tiny", "tiny"],
                    "policies": ["partition:ways=9+9,base=lru"],
                }
            )
        assert caught.value.token == "partition:base=lru,ways=9+9"


# ------------------------------------------------------------------- experiment
class TestInterferenceExperiment:
    def test_runs_and_formats(self, tiny_session):
        report = run_interference(
            cores=(tiny_spec(), tiny_spec()), session=tiny_session
        )
        assert set(report["matrix"]) == {"lru", "partition:base=lru"}
        for cell in report["matrix"].values():
            assert len(cell["cores"]) == 2
            for core in cell["cores"]:
                assert core["slowdown"] > 0
        text = format_interference(report)
        assert "slowdown" in text
        assert "lru" in text

    def test_single_core_rejected(self, tiny_session):
        with pytest.raises(ConfigurationError, match="at least two"):
            run_interference(cores=("tiny",), session=tiny_session)
