"""Unit tests for repro.common: temperature, addressing, requests, traces."""

import pytest

from repro.common.addressing import (
    CACHE_LINE_SIZE,
    align_down,
    align_up,
    is_power_of_two,
    line_address,
    line_index,
    line_offset,
    page_number,
    page_offset,
)
from repro.common.errors import ConfigurationError, ReproError, SimulationError
from repro.common.request import AccessResult, AccessType, HitLevel, MemoryRequest
from repro.common.temperature import TEMPERATURE_NAMES, Temperature
from repro.common.trace import TraceRecord
from repro.common.translation import IdentityTranslator


class TestTemperature:
    def test_round_trip_through_pte_bits(self):
        for temperature in Temperature:
            assert Temperature.from_bits(temperature.to_bits()) is temperature

    def test_none_is_not_tagged(self):
        assert not Temperature.NONE.is_tagged

    def test_hot_warm_cold_are_tagged(self):
        for temperature in (Temperature.HOT, Temperature.WARM, Temperature.COLD):
            assert temperature.is_tagged

    def test_from_bits_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Temperature.from_bits(4)

    def test_order_is_hot_warm_cold(self):
        assert Temperature.order() == (
            Temperature.HOT,
            Temperature.WARM,
            Temperature.COLD,
        )

    def test_every_temperature_has_a_name(self):
        assert set(TEMPERATURE_NAMES) == set(Temperature)


class TestAddressing:
    def test_line_address_masks_offset(self):
        assert line_address(0x1234) == 0x1234 - (0x1234 % CACHE_LINE_SIZE)

    def test_line_address_of_aligned_address_is_identity(self):
        assert line_address(0x4000) == 0x4000

    def test_line_index_and_offset_recompose(self):
        address = 0xABCDE
        assert line_index(address) * CACHE_LINE_SIZE + line_offset(address) == address

    def test_page_number_and_offset_recompose(self):
        address = 0x12345678
        assert page_number(address) * 4096 + page_offset(address) == address

    def test_align_up_and_down(self):
        assert align_up(100, 64) == 128
        assert align_up(128, 64) == 128
        assert align_down(100, 64) == 64
        assert align_down(128, 64) == 128

    def test_align_rejects_non_positive_alignment(self):
        with pytest.raises(ValueError):
            align_up(10, 0)
        with pytest.raises(ValueError):
            align_down(10, -1)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(96)


class TestMemoryRequest:
    def test_instruction_request_properties(self):
        request = MemoryRequest(0x100, AccessType.INSTRUCTION_FETCH)
        assert request.is_instruction
        assert not request.is_write

    def test_store_request_is_write(self):
        request = MemoryRequest(0x100, AccessType.DATA_STORE)
        assert request.is_write
        assert not request.is_instruction

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(-1, AccessType.DATA_LOAD)

    def test_as_prefetch_retargets_address(self):
        request = MemoryRequest(0x100, AccessType.INSTRUCTION_FETCH)
        prefetch = request.as_prefetch(0x200)
        assert prefetch.is_prefetch
        assert prefetch.address == 0x200
        assert not request.is_prefetch  # original is unchanged (frozen)

    def test_with_temperature_returns_tagged_copy(self):
        request = MemoryRequest(0x100, AccessType.INSTRUCTION_FETCH)
        tagged = request.with_temperature(Temperature.HOT)
        assert tagged.temperature is Temperature.HOT
        assert request.temperature is Temperature.NONE

    def test_with_starvation_hint(self):
        request = MemoryRequest(0x100, AccessType.INSTRUCTION_FETCH)
        assert request.with_starvation_hint().starvation_hint


class TestHitLevelAndResult:
    def test_l2_miss_definition(self):
        assert HitLevel.SLC.is_l2_miss
        assert HitLevel.DRAM.is_l2_miss
        assert not HitLevel.L2.is_l2_miss
        assert not HitLevel.L1.is_l2_miss

    def test_access_result_flags(self):
        request = MemoryRequest(0x40, AccessType.DATA_LOAD)
        result = AccessResult(request=request, hit_level=HitLevel.DRAM, latency=400)
        assert result.l2_miss
        assert result.dram_access


class TestTraceRecord:
    def test_memory_property(self):
        assert TraceRecord(pc=0x100, mem_address=0x2000).is_memory
        assert not TraceRecord(pc=0x100).is_memory

    def test_rejects_invalid_fields(self):
        with pytest.raises(ValueError):
            TraceRecord(pc=-4)
        with pytest.raises(ValueError):
            TraceRecord(pc=0, size=0)


class TestIdentityTranslator:
    def test_identity_translation_is_untagged(self):
        translator = IdentityTranslator()
        assert translator.translate_instruction(0x1234) == (0x1234, Temperature.NONE)
        assert translator.translate_data(0x5678) == (0x5678, Temperature.NONE)


class TestErrors:
    def test_error_hierarchy(self):
        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(SimulationError, ReproError)
