"""Client error paths: every failure is a typed, structured exception.

``repro.client`` is the only HTTP client in the tree, so the CLI's error
story is exactly these paths: a dead endpoint raises
:class:`~repro.client.ConnectionFailed` (not a raw socket traceback), a
body that is not JSON raises :class:`~repro.client.MalformedResponse` (with
a snippet for diagnosis), and a 429 is absorbed by honoring the server's
``Retry-After`` before the retry.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.client import (
    ConnectionFailed,
    MalformedResponse,
    ReproClient,
    ServerBusy,
)
from repro.common.errors import ReproError


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Serves a scripted list of (status, headers, raw_body) responses."""

    protocol_version = "HTTP/1.1"

    def _reply(self) -> None:
        status, headers, body = self.server.script[
            min(self.server.calls, len(self.server.script) - 1)
        ]
        self.server.calls += 1
        if self.command == "POST":
            self.rfile.read(int(self.headers.get("Content-Length", 0)))
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _reply
    do_POST = _reply

    def log_message(self, format, *args):  # noqa: A002 - http.server naming
        pass


@pytest.fixture
def scripted_server():
    """A one-thread HTTP server replaying a caller-provided response script."""
    server = HTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.script = [(200, {}, b"{}")]
    server.calls = 0
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def client_for(server) -> ReproClient:
    host, port = server.server_address
    return ReproClient(f"http://{host}:{port}", timeout=5.0)


# ------------------------------------------------------------------ connection
class TestConnectionFailed:
    def test_connection_refused_is_structured(self):
        # Bind an ephemeral port, then close it: the port is free again, so
        # connecting is a fast deterministic refusal.
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = ReproClient(f"http://127.0.0.1:{port}", timeout=2.0)
        with pytest.raises(ConnectionFailed) as caught:
            client.health()
        assert "repro serve" in str(caught.value)
        assert isinstance(caught.value.cause, OSError)

    def test_connection_failed_is_a_repro_error(self):
        # The CLI's ReproError handling covers it — no raw OSError escapes.
        assert issubclass(ConnectionFailed, ReproError)


# -------------------------------------------------------------- malformed body
class TestMalformedResponse:
    def test_non_json_body_is_structured(self, scripted_server):
        scripted_server.script = [
            (200, {"Content-Type": "text/html"}, b"<html>proxy error</html>")
        ]
        with pytest.raises(MalformedResponse) as caught:
            client_for(scripted_server).health()
        assert caught.value.status == 200
        assert "proxy error" in caught.value.snippet

    def test_truncated_json_is_structured(self, scripted_server):
        scripted_server.script = [(200, {}, b'{"status": "ok"')]
        with pytest.raises(MalformedResponse):
            client_for(scripted_server).health()

    def test_malformed_response_is_a_repro_error(self):
        assert issubclass(MalformedResponse, ReproError)


# ------------------------------------------------------------------------- 429
class TestBusyRetry:
    ACCEPTED = json.dumps({"job": "j1", "state": "queued"}).encode()

    def test_429_without_retries_raises_server_busy(self, scripted_server):
        scripted_server.script = [
            (429, {"Retry-After": "7"}, json.dumps({"error": "full"}).encode())
        ]
        with pytest.raises(ServerBusy) as caught:
            client_for(scripted_server).submit({"benchmarks": ["tiny"]})
        assert caught.value.retry_after == 7
        assert caught.value.status == 429

    def test_retry_after_is_honored_before_the_retry(self, scripted_server):
        scripted_server.script = [
            (429, {"Retry-After": "1"}, json.dumps({"error": "full"}).encode()),
            (202, {}, self.ACCEPTED),
        ]
        started = time.monotonic()
        accepted = client_for(scripted_server).submit(
            {"benchmarks": ["tiny"]}, busy_retries=1
        )
        elapsed = time.monotonic() - started
        assert accepted["job"] == "j1"
        assert scripted_server.calls == 2
        assert elapsed >= 1.0  # slept the advertised Retry-After

    def test_retries_exhausted_still_raises(self, scripted_server):
        scripted_server.script = [
            (429, {"Retry-After": "0"}, json.dumps({"error": "full"}).encode())
        ]
        with pytest.raises(ServerBusy):
            client_for(scripted_server).submit(
                {"benchmarks": ["tiny"]}, busy_retries=2
            )
        assert scripted_server.calls == 3
