"""Integration tests: co-design pipeline, simulator configs, system simulator."""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.common.temperature import Temperature
from repro.core.pipeline import CoDesignPipeline, PipelineOptions
from repro.cpu.topdown import TopDownBreakdown
from repro.osmodel.loader import OverlapPolicy
from repro.sim.config import EVALUATED_POLICIES, SimulatorConfig, table1_rows
from repro.sim.results import (
    SimulationResult,
    geomean_reduction,
    geomean_speedup,
    geometric_mean,
)
from repro.sim.simulator import SystemSimulator
from repro.workloads.spec import InputSet


class TestPipeline:
    def test_prepare_produces_tagged_pgo_binary(self, tiny_spec):
        prepared = CoDesignPipeline().prepare(tiny_spec)
        assert prepared.pgo_applied
        assert prepared.binary.temperature_map is not None
        assert prepared.loaded.tagged_pages > 0
        hot_vaddr = prepared.binary.image.section(".text.hot").vaddr
        _, temperature = prepared.mmu().translate_instruction(hot_vaddr)
        assert temperature is Temperature.HOT

    def test_non_pgo_pipeline_has_single_section(self, tiny_spec):
        options = PipelineOptions(apply_pgo=False)
        prepared = CoDesignPipeline(options).prepare(tiny_spec)
        assert not prepared.pgo_applied
        assert [s.name for s in prepared.binary.image.sections] == [".text"]
        assert prepared.loaded.tagged_pages == 0

    def test_temperature_propagation_can_be_disabled(self, tiny_spec):
        options = PipelineOptions(propagate_temperature=False)
        prepared = CoDesignPipeline(options).prepare(tiny_spec)
        assert prepared.pgo_applied
        assert prepared.loaded.tagged_pages == 0

    def test_options_map_to_sub_configs(self):
        options = PipelineOptions(
            percentile_hot=0.8,
            page_size=16384,
            overlap_policy=OverlapPolicy.DISABLE,
            pad_sections_to_page=True,
        )
        assert options.classifier_config().percentile_hot == 0.8
        assert options.layout_config().page_size == 16384
        assert options.loader_config().overlap_policy is OverlapPolicy.DISABLE

    def test_trace_generator_uses_evaluation_input(self, tiny_spec):
        prepared = CoDesignPipeline().prepare(tiny_spec)
        generator = prepared.trace_generator(InputSet.EVALUATION)
        assert len(generator.take(100)) == 100


class TestSimulatorConfig:
    def test_paper_config_matches_table1(self):
        config = SimulatorConfig.paper()
        assert config.hierarchy.l2.size_bytes == 512 * 1024
        assert config.hierarchy.l1i.size_bytes == 64 * 1024
        assert config.hierarchy.l2.associativity == 8
        assert config.core.dispatch_width == 6

    def test_scaled_config_keeps_structure(self):
        config = SimulatorConfig.scaled()
        assert config.hierarchy.l2.associativity == 8
        assert config.hierarchy.slc.size_bytes > config.hierarchy.l2.size_bytes
        config.validate()

    def test_with_l2_policy_returns_modified_copy(self):
        config = SimulatorConfig.scaled()
        trrip = config.with_l2_policy("trrip-1")
        assert trrip.l2_policy == "trrip-1"
        assert config.l2_policy == "srrip"

    def test_with_l2_geometry(self):
        config = SimulatorConfig.scaled().with_l2_geometry(
            size_bytes=64 * 1024, associativity=16
        )
        assert config.hierarchy.l2.size_bytes == 64 * 1024
        assert config.hierarchy.l2.associativity == 16

    def test_invalid_page_size_rejected(self):
        config = dataclasses.replace(SimulatorConfig.scaled(), page_size=0)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_table1_rows_cover_all_components(self):
        components = [component for component, _ in table1_rows()]
        assert "Core" in components
        assert "Unified Shared L2" in components
        assert "DRAM" in components

    def test_evaluated_policies_match_paper_set(self):
        assert set(EVALUATED_POLICIES) == {
            "lru",
            "brrip",
            "drrip",
            "ship",
            "clip",
            "emissary",
            "trrip-1",
            "trrip-2",
        }


class TestResults:
    def _result(self, cycles: float, inst_mpki: float = 1.0, data_mpki: float = 2.0):
        return SimulationResult(
            benchmark="demo",
            policy="srrip",
            config_name="scaled",
            instructions=1000,
            cycles=cycles,
            ipc=1000 / cycles,
            topdown=TopDownBreakdown(retire=cycles),
            l2_inst_misses=int(inst_mpki),
            l2_data_misses=int(data_mpki),
            l2_inst_mpki=inst_mpki,
            l2_data_mpki=data_mpki,
            l1i_mpki=10.0,
            branch_mpki=1.0,
            dram_accesses=0,
        )

    def test_speedup_is_cycle_ratio_minus_one(self):
        baseline = self._result(cycles=1000)
        faster = self._result(cycles=800)
        assert faster.speedup_over(baseline) == pytest.approx(0.25)

    def test_speedup_requires_same_benchmark(self):
        baseline = self._result(cycles=1000)
        other = dataclasses.replace(self._result(cycles=900), benchmark="other")
        with pytest.raises(ValueError):
            other.speedup_over(baseline)

    def test_mpki_reduction_signs(self):
        baseline = self._result(cycles=1000, inst_mpki=4.0, data_mpki=10.0)
        better = self._result(cycles=900, inst_mpki=3.0, data_mpki=11.0)
        inst, data = better.mpki_reduction_over(baseline)
        assert inst == pytest.approx(25.0)
        assert data == pytest.approx(-10.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geomean_speedup(self):
        assert geomean_speedup([0.1, 0.1]) == pytest.approx(0.1)
        assert geomean_speedup([]) == 0.0

    def test_geomean_reduction_handles_negatives(self):
        value = geomean_reduction([50.0, -50.0])
        assert -50.0 < value < 50.0


class TestSystemSimulator:
    def test_end_to_end_run_produces_sane_metrics(self, tiny_spec, scaled_config):
        prepared = CoDesignPipeline().prepare(tiny_spec)
        simulator = SystemSimulator(
            scaled_config, translator=prepared.mmu(), benchmark=tiny_spec.name
        )
        generator = prepared.trace_generator()
        simulator.warm_up(generator.records(tiny_spec.warmup_instructions))
        result = simulator.run(generator.records(tiny_spec.eval_instructions))
        assert result.instructions == tiny_spec.eval_instructions
        assert result.cycles > 0
        assert 0 < result.ipc <= simulator.config.core.dispatch_width
        assert result.l2_inst_mpki >= 0
        assert sum(result.topdown.fractions().values()) == pytest.approx(1.0)

    def test_stats_reset_between_warmup_and_measurement(self, tiny_spec, scaled_config):
        prepared = CoDesignPipeline().prepare(tiny_spec)
        simulator = SystemSimulator(
            scaled_config, translator=prepared.mmu(), benchmark=tiny_spec.name
        )
        generator = prepared.trace_generator()
        simulator.warm_up(generator.records(2000))
        assert simulator.hierarchy.stats.instruction_fetches > 0
        result = simulator.run(generator.records(2000))
        # Measured window only counts its own fetches.
        assert simulator.hierarchy.stats.instruction_fetches <= 2000

    def test_empty_measurement_window_rejected(self, tiny_spec, scaled_config):
        prepared = CoDesignPipeline().prepare(tiny_spec)
        simulator = SystemSimulator(scaled_config, translator=prepared.mmu())
        with pytest.raises(Exception):
            simulator.run(iter(()))

    def test_identical_runs_are_deterministic(self, tiny_spec, scaled_config):
        results = []
        for _ in range(2):
            prepared = CoDesignPipeline().prepare(tiny_spec)
            simulator = SystemSimulator(
                scaled_config, translator=prepared.mmu(), benchmark=tiny_spec.name
            )
            generator = prepared.trace_generator()
            simulator.warm_up(generator.records(tiny_spec.warmup_instructions))
            results.append(
                simulator.run(generator.records(tiny_spec.eval_instructions))
            )
        assert results[0].cycles == results[1].cycles
        assert results[0].l2_inst_misses == results[1].l2_inst_misses
