"""Tests for trace capture/replay (:mod:`repro.workloads.capture`).

The load-bearing guarantee: a captured trace replayed through the engine is
**bit-identical** to regeneration — same packed columns, same simulation
result, same result-store key — for catalog specs and family-generated specs
alike.  The CI determinism job re-checks the same property end-to-end
through the installed CLI.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineOptions
from repro.experiments.runner import BenchmarkRunner
from repro.testing import make_session
from repro.workloads.capture import (
    MAGIC,
    CaptureFormatError,
    TraceArchive,
    read_trace_file,
    trace_key,
    write_trace_file,
)
from repro.workloads.families import WorkloadFamilySpec
from repro.workloads.spec import tiny_spec

FAMILY_TOKEN = "zipf:alpha=1.4,instructions=4000,warmup=1000"


def generate_pair(spec):
    """(warmup, measured) packed traces straight from the generator."""
    runner = BenchmarkRunner()
    return runner.packed_traces(runner.prepare(spec))


def columns(trace):
    return {
        name: getattr(trace, name).tobytes()
        for name in (
            "pc",
            "size",
            "flags",
            "branch_target",
            "mem_address",
            "depend_stall",
            "issue_stall",
        )
    }


# ------------------------------------------------------------------ file format
class TestTraceFile:
    def test_round_trip_is_column_exact(self, tmp_path):
        warmup, measured = generate_pair(tiny_spec())
        path = tmp_path / "tiny.trace"
        write_trace_file(path, warmup, measured, {"benchmark": "tinybench"})
        loaded_warmup, loaded_measured, meta = read_trace_file(path)
        assert columns(loaded_warmup) == columns(warmup)
        assert columns(loaded_measured) == columns(measured)
        assert len(loaded_measured) == len(measured)
        assert meta["benchmark"] == "tinybench"

    def test_replayed_records_match_generated_records(self, tmp_path):
        _, measured = generate_pair(tiny_spec())
        path = tmp_path / "tiny.trace"
        write_trace_file(path, measured, measured, {})
        _, loaded, _ = read_trace_file(path)
        assert loaded.to_records()[:100] == measured.to_records()[:100]

    @pytest.mark.parametrize(
        "corruption",
        ["magic", "truncate", "trailing", "garbage-header"],
    )
    def test_corrupt_files_raise_capture_format_error(self, tmp_path, corruption):
        warmup, measured = generate_pair(tiny_spec())
        path = tmp_path / "tiny.trace"
        write_trace_file(path, warmup, measured, {})
        payload = path.read_bytes()
        if corruption == "magic":
            payload = b"X" + payload[1:]
        elif corruption == "truncate":
            payload = payload[: len(payload) // 2]
        elif corruption == "trailing":
            payload += b"\0\0"
        else:
            payload = MAGIC + (99).to_bytes(4, "little") + b"{" * 99
        path.write_bytes(payload)
        with pytest.raises(CaptureFormatError):
            read_trace_file(path)

    def test_json_valid_but_type_corrupt_header_is_still_a_format_error(
        self, tmp_path
    ):
        """A damaged header that still parses as JSON must not escape the
        CaptureFormatError contract (the archive treats it as a miss)."""
        import json

        from repro.workloads.capture import TRACE_SCHEMA_VERSION

        warmup, measured = generate_pair(tiny_spec())
        path = tmp_path / "tiny.trace"
        write_trace_file(path, warmup, measured, {})
        payload = path.read_bytes()
        header_len = int.from_bytes(payload[8:12], "little")
        header = json.loads(payload[12 : 12 + header_len])

        def rewrite(mutate):
            mutated = json.loads(json.dumps(header))
            mutate(mutated)
            raw = json.dumps(mutated, sort_keys=True).encode("utf-8")
            path.write_bytes(
                payload[:8]
                + len(raw).to_bytes(4, "little")
                + raw
                + payload[12 + header_len :]
            )

        def corrupt_length(h):
            h["segments"][0]["length"] = "not-a-number"

        def corrupt_typecode(h):
            h["segments"][0]["columns"][0]["typecode"] = "z"

        def corrupt_byteorder(h):
            h["byteorder"] = "middle"

        def drop_columns(h):
            del h["segments"][0]["columns"][0]["name"]

        for mutate in (
            corrupt_length,
            corrupt_typecode,
            corrupt_byteorder,
            drop_columns,
        ):
            rewrite(mutate)
            with pytest.raises(CaptureFormatError):
                read_trace_file(path)
        assert TRACE_SCHEMA_VERSION == header["schema"]

    def test_write_is_atomic_leaves_no_temp_files(self, tmp_path):
        warmup, measured = generate_pair(tiny_spec())
        write_trace_file(tmp_path / "a.trace", warmup, measured, {})
        assert [p.name for p in tmp_path.iterdir()] == ["a.trace"]


# -------------------------------------------------------------------- trace key
class TestTraceKey:
    def test_key_covers_spec_and_options(self):
        options = PipelineOptions()
        base = trace_key(tiny_spec(), options)
        assert trace_key(tiny_spec(), options) == base  # deterministic
        assert trace_key(tiny_spec(seed=7), options) != base
        assert trace_key(tiny_spec(), PipelineOptions(apply_pgo=False)) != base

    def test_family_specs_key_by_canonical_parameters(self):
        options = PipelineOptions()
        a = WorkloadFamilySpec.parse("zipf:alpha=1.4,footprint_kb=64")
        b = WorkloadFamilySpec.parse("zipf:footprint_kb=64,alpha=1.4")
        assert trace_key(a.synthesize(), options) == trace_key(
            b.synthesize(), options
        )


# ---------------------------------------------------------------------- archive
class TestTraceArchive:
    def test_miss_then_save_then_hit(self, tmp_path):
        archive = TraceArchive(tmp_path)
        spec, options = tiny_spec(), PipelineOptions()
        assert archive.load(spec, options) is None
        warmup, measured = generate_pair(spec)
        archive.save(spec, options, warmup, measured)
        pair = archive.load(spec, options)
        assert pair is not None
        assert columns(pair[1]) == columns(measured)
        assert (archive.hits, archive.misses, archive.writes) == (1, 1, 1)

    def test_refresh_forces_misses_but_still_writes(self, tmp_path):
        archive = TraceArchive(tmp_path)
        spec, options = tiny_spec(), PipelineOptions()
        warmup, measured = generate_pair(spec)
        archive.save(spec, options, warmup, measured)
        refreshing = TraceArchive(tmp_path, refresh=True)
        assert refreshing.load(spec, options) is None
        assert refreshing.misses == 1

    def test_corrupt_entries_are_plain_misses(self, tmp_path):
        archive = TraceArchive(tmp_path)
        spec, options = tiny_spec(), PipelineOptions()
        warmup, measured = generate_pair(spec)
        path = archive.save(spec, options, warmup, measured)
        path.write_bytes(b"not a trace")
        assert archive.load(spec, options) is None


# ----------------------------------------------------- capture → replay == regen
class TestReplayBitIdentical:
    @pytest.mark.parametrize(
        "workload", [tiny_spec(), FAMILY_TOKEN], ids=["proxy", "family"]
    )
    def test_replayed_run_matches_generated_run(self, tmp_path, workload):
        capture = make_session(trace_root=tmp_path / "traces")
        generated = capture.run_one(workload, "trrip-1")
        assert capture.traces.writes == 1

        replay = make_session(trace_root=tmp_path / "traces")
        replayed = replay.run_one(workload, "trrip-1")
        assert replay.traces.hits == 1
        assert replay.traces.writes == 0
        assert replay.simulations_run == 1  # simulated, but from replayed bytes
        assert replayed.result.to_dict() == generated.result.to_dict()

    @pytest.mark.parametrize(
        "workload", [tiny_spec(), FAMILY_TOKEN], ids=["proxy", "family"]
    )
    def test_replayed_run_lands_on_the_same_store_key(self, tmp_path, workload):
        traces = tmp_path / "traces"
        first = make_session(store_root=tmp_path / "a", trace_root=traces)
        first.run_one(workload, "trrip-1")

        second = make_session(store_root=tmp_path / "b", trace_root=traces)
        second.run_one(workload, "trrip-1")
        assert second.traces.hits == 1

        keys_a = sorted(p.name for p in (tmp_path / "a").glob("runs/*/*.json"))
        keys_b = sorted(p.name for p in (tmp_path / "b").glob("runs/*/*.json"))
        assert keys_a and keys_a == keys_b
        for name in keys_a:
            entry_a = (tmp_path / "a" / "runs" / name[:2] / name).read_bytes()
            entry_b = (tmp_path / "b" / "runs" / name[:2] / name).read_bytes()
            assert entry_a == entry_b

    def test_replayed_store_hit_skips_trace_io_entirely(self, tmp_path):
        traces = tmp_path / "traces"
        store = tmp_path / "store"
        make_session(store_root=store, trace_root=traces).run_one(
            tiny_spec(), "trrip-1"
        )
        cached = make_session(store_root=store, trace_root=traces)
        cached.run_one(tiny_spec(), "trrip-1")
        assert cached.simulations_run == 0
        # A store hit never needs the trace: no archive traffic at all.
        assert (cached.traces.hits, cached.traces.misses) == (0, 0)

    def test_parallel_execution_replays_and_folds_counters(self, tmp_path):
        from repro.api import Scenario

        scenario = Scenario(
            benchmarks=tiny_spec(), policies=("srrip", "lru", "trrip-1")
        )
        capture = make_session(trace_root=tmp_path / "traces")
        serial = capture.run(scenario)
        assert capture.traces.writes == 1

        replay = make_session(trace_root=tmp_path / "traces")
        parallel = replay.run(scenario, jobs=2)
        assert [a.result.to_dict() for a in serial] == [
            a.result.to_dict() for a in parallel
        ]
        # Worker archive counters fold back into the session's archive.
        assert replay.traces.hits >= 1
        assert replay.traces.writes == 0


# ------------------------------------------------------------ schema version
class TestSchemaVersioning:
    def test_old_version_archive_is_a_miss_not_a_crash(self, tmp_path):
        """A version-1 archive (no geometry columns) must be regenerated."""
        import json

        spec = tiny_spec()
        archive = TraceArchive(tmp_path)
        warmup, measured = generate_pair(spec)
        options = PipelineOptions()
        path = archive.save(spec, options, warmup, measured)

        # Rewrite the header as schema version 1 (the pre-geometry layout).
        payload = path.read_bytes()
        header_len = int.from_bytes(payload[len(MAGIC) : len(MAGIC) + 4], "little")
        header = json.loads(payload[len(MAGIC) + 4 : len(MAGIC) + 4 + header_len])
        header["schema"] = 1
        for segment in header["segments"]:
            segment.pop("geometry", None)
        new_header = json.dumps(header, sort_keys=True).encode("utf-8")
        path.write_bytes(
            MAGIC
            + len(new_header).to_bytes(4, "little")
            + new_header
            + payload[len(MAGIC) + 4 + header_len :]
        )

        with pytest.raises(CaptureFormatError):
            read_trace_file(path)
        assert archive.load(spec, options) is None  # plain miss
        assert archive.misses == 1
        # The next capture simply overwrites the stale entry.
        archive.save(spec, options, warmup, measured)
        assert archive.load(spec, options) is not None

    def test_restored_geometry_matches_recomputation(self, tmp_path):
        """The archived geometry columns equal what a fresh scan computes."""
        from repro.workloads.capture import GEOMETRY_LINE_SIZE

        spec = tiny_spec()
        warmup, measured = generate_pair(spec)
        path = tmp_path / "geom.trace"
        write_trace_file(path, warmup, measured, {})
        _, loaded, _ = read_trace_file(path)

        # The loaded trace's caches are pre-seeded by adopt_geometry…
        assert GEOMETRY_LINE_SIZE in loaded._events_cache
        assert GEOMETRY_LINE_SIZE in loaded._mem_lines_cache
        restored = loaded.fetch_events(GEOMETRY_LINE_SIZE)
        restored_mem = loaded.mem_lines(GEOMETRY_LINE_SIZE)
        # …and byte-identical to recomputing from the raw columns.
        from repro.common.trace import PackedTrace

        fresh = PackedTrace()
        for name in (
            "pc",
            "size",
            "flags",
            "branch_target",
            "mem_address",
            "depend_stall",
            "issue_stall",
        ):
            getattr(fresh, name).frombytes(getattr(loaded, name).tobytes())
        computed = fresh.fetch_events(GEOMETRY_LINE_SIZE)
        for restored_column, computed_column in zip(restored, computed):
            assert restored_column.tobytes() == computed_column.tobytes()
        assert restored_mem.tobytes() == fresh.mem_lines(
            GEOMETRY_LINE_SIZE
        ).tobytes()
