"""Lockstep multi-policy replay: bit-identical to independent runs.

A figure sweep replays one workload trace under N L2 replacement policies.
Lockstep execution decodes the trace once, computes branch outcomes and
fetch-boundary events once, and advances the N hierarchies together; these
tests pin that every observable result equals the N independent solo runs,
through every layer (core loop, simulator pair, runner with a store, and
Session plan execution).
"""

from __future__ import annotations

import pytest

from repro.api.scenario import Scenario
from repro.api.session import Session
from repro.core.pipeline import CoDesignPipeline
from repro.experiments.runner import BenchmarkRunner
from repro.sim.config import SimulatorConfig
from repro.sim.simulator import SystemSimulator, run_lockstep
from repro.workloads.spec import InputSet, get_spec
from tests.test_determinism import assert_results_identical

POLICIES = ("srrip", "lru", "trrip-1", "ship")

WARMUP = 3000
MEASURED = 9000


@pytest.fixture(scope="module")
def prepared():
    return CoDesignPipeline().prepare(get_spec("sqlite"))


@pytest.fixture(scope="module")
def traces(prepared):
    generator = prepared.trace_generator(InputSet.EVALUATION)
    return generator.take_packed(WARMUP), generator.take_packed(MEASURED)


def _solo(prepared, traces, policy):
    warmup, measured = traces
    config = SimulatorConfig.scaled().with_l2_policy(policy)
    simulator = SystemSimulator(
        config, translator=prepared.mmu(), benchmark=prepared.spec.name
    )
    simulator.warm_up(warmup)
    return simulator.run(measured)


class TestLockstepCore:
    def test_lockstep_matches_solo_for_every_policy(self, prepared, traces):
        warmup, measured = traces
        simulators = [
            SystemSimulator(
                SimulatorConfig.scaled().with_l2_policy(policy),
                translator=prepared.mmu(),
                benchmark=prepared.spec.name,
            )
            for policy in POLICIES
        ]
        lockstep_results = run_lockstep(simulators, warmup, measured)
        for policy, result in zip(POLICIES, lockstep_results):
            assert_results_identical(result, _solo(prepared, traces, policy))

    def test_single_simulator_group_matches_solo(self, prepared, traces):
        warmup, measured = traces
        simulator = SystemSimulator(
            SimulatorConfig.scaled().with_l2_policy("srrip"),
            translator=prepared.mmu(),
            benchmark=prepared.spec.name,
        )
        (result,) = run_lockstep([simulator], warmup, measured)
        assert_results_identical(result, _solo(prepared, traces, "srrip"))

    def test_mismatched_core_configuration_rejected(self, prepared, traces):
        from repro.cpu.core import run_packed_lockstep

        config_a = SimulatorConfig.scaled()
        config_b = SimulatorConfig.scaled()
        config_b.core.dispatch_width = config_a.core.dispatch_width + 2
        simulators = [
            SystemSimulator(config_a, benchmark="a"),
            SystemSimulator(config_b, benchmark="b"),
        ]
        with pytest.raises(ValueError):
            run_packed_lockstep(
                [s.core for s in simulators], traces[1]
            )


class TestLockstepRunner:
    def test_runner_lockstep_matches_run_resolved(self):
        config = SimulatorConfig.scaled()
        runner_solo = BenchmarkRunner(config=config, lockstep=False)
        runner_lockstep = BenchmarkRunner(config=config)
        spec = runner_solo.resolve_spec("sqlite")
        artifacts = runner_lockstep.run_lockstep_resolved(spec, POLICIES)
        assert runner_lockstep.simulations_run == len(POLICIES)
        for policy, artifact in zip(POLICIES, artifacts):
            solo = runner_solo.run_resolved(spec, policy)
            assert_results_identical(artifact.result, solo.result)

    def test_lockstep_serves_and_fills_the_store(self, tmp_path):
        from repro.experiments.store import ResultStore

        config = SimulatorConfig.scaled()
        store = ResultStore(root=tmp_path)
        runner = BenchmarkRunner(config=config, store=store)
        spec = runner.resolve_spec("sqlite")
        first = runner.run_lockstep_resolved(spec, POLICIES)
        assert runner.simulations_run == len(POLICIES)
        # Second lockstep group: all points served from the store.
        runner_again = BenchmarkRunner(config=config, store=store)
        again = runner_again.run_lockstep_resolved(spec, POLICIES)
        assert runner_again.simulations_run == 0
        for a, b in zip(first, again):
            assert_results_identical(a.result, b.result)
        # And a solo run lands on the same store key.
        runner_solo = BenchmarkRunner(config=config, store=store, lockstep=False)
        solo = runner_solo.run_resolved(spec, "trrip-1")
        assert runner_solo.simulations_run == 0
        assert_results_identical(solo.result, first[POLICIES.index("trrip-1")].result)

    def test_serial_grid_uses_lockstep_and_matches(self):
        config = SimulatorConfig.scaled()
        grid_runner = BenchmarkRunner(config=config)
        solo_runner = BenchmarkRunner(config=config, lockstep=False)
        grid = grid_runner.run_grid(("sqlite",), POLICIES)
        solo = solo_runner.run_grid(("sqlite",), POLICIES)
        assert [(b, p) for b, p, _ in grid] == [(b, p) for b, p, _ in solo]
        for (_, _, a), (_, _, b) in zip(grid, solo):
            assert_results_identical(a, b)


class TestLockstepSession:
    def test_session_plan_groups_policies(self):
        config = SimulatorConfig.scaled()
        session = Session(config=config)
        scenario = Scenario(benchmarks="sqlite", policies=POLICIES)
        grouped = session.run(scenario)
        assert session.simulations_run == len(POLICIES)

        solo_session = Session(config=config, lockstep=False)
        solo = solo_session.run(scenario)
        for a, b in zip(grouped, solo):
            assert_results_identical(a.result, b.result)

    def test_reuse_tracking_points_run_solo(self):
        config = SimulatorConfig.scaled()
        session = Session(config=config)
        scenario = Scenario(
            benchmarks="sqlite", policies=("srrip", "lru"), track_reuse=True
        )
        artifacts = session.run(scenario)
        assert all(artifact.reuse is not None for artifact in artifacts)


def test_mismatched_branch_geometry_rejected(prepared, traces):
    """Branch outcomes are computed once on the lead core's unit, so any
    difference in predictor geometry must be rejected, not silently absorbed."""
    from repro.cpu.core import run_packed_lockstep

    config_a = SimulatorConfig.scaled()
    config_b = SimulatorConfig.scaled()
    config_b.core.branch.history_bits = 4
    simulators = [
        SystemSimulator(config_a, benchmark="a"),
        SystemSimulator(config_b, benchmark="b"),
    ]
    with pytest.raises(ValueError):
        run_packed_lockstep([s.core for s in simulators], traces[1])
