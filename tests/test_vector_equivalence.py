"""Scalar vs vector replay engines: the bit-identity differential harness.

The NumPy batch kernel (:mod:`repro.cpu.vector`) replays packed traces in
windows — batched tag probes against per-window snapshots, then an ordered
apply pass — while the scalar loop
(:meth:`repro.cpu.core.CoreModel.run_packed`) walks one event at a time.
The two must be **bit-identical**: same :class:`SimulationResult` (cycles,
Top-Down floats, MPKI, per-line stall dicts), same cache columns, same
residency dicts, same replacement-policy state, same RNG state.

This suite pins that property over the shared policy × workload-family
matrix from :mod:`repro.testing` (every registered replacement policy
crossed with every registered workload family), for the scalar, auto and —
where the configuration is batchable — forced-vector engines, and across
degenerate window sizes (1, a prime, the whole trace in one window).
Policies the kernel cannot batch (request-aware ones) must fall back
cleanly under ``engine="auto"`` and refuse loudly under ``engine="vector"``.
"""

from __future__ import annotations

import random
from array import array

import pytest

from repro.common.errors import ConfigurationError
from repro.cpu.vector import (
    DEFAULT_WINDOW,
    numpy_available,
    run_packed_vector,
    unbatchable_reason,
)
from repro.sim.config import SimulatorConfig
from repro.sim.simulator import SystemSimulator
from repro.testing import equivalence_matrix, family_trace_pair

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the vector kernel requires NumPy"
)

#: Cached per-family (warm-up, measured) trace pairs: generated once per
#: test session, shared by every policy row of the matrix.
_TRACES: dict[str, tuple] = {}


def traces_for(family: str):
    if family not in _TRACES:
        _TRACES[family] = family_trace_pair(family)
    return _TRACES[family]


def _canonical(value, seen=None):
    """Convert arbitrary mutable state into a comparable-by-value form.

    Policies hang plain helper objects off themselves (e.g. CLIP's
    ``SetDuelingController``) that define no ``__eq__``; a deep copy of
    those would compare by identity and always differ.  Recurse into
    ``__dict__``/``__slots__`` and special-case ``random.Random`` so every
    snapshot bottoms out in primitives."""
    if seen is None:
        seen = set()
    if isinstance(value, random.Random):
        return ("<random>", value.getstate())
    if isinstance(value, (type(None), bool, int, float, str, bytes)):
        return value
    if id(value) in seen:
        return "<cycle>"
    seen = seen | {id(value)}
    if isinstance(value, dict):
        return {key: _canonical(item, seen) for key, item in value.items()}
    if isinstance(value, (list, tuple, array)):
        return [_canonical(item, seen) for item in value]
    if isinstance(value, (set, frozenset)):
        return ("<set>", sorted(repr(item) for item in value))
    state = {}
    if hasattr(value, "__dict__"):
        state.update(vars(value))
    for slot_name in getattr(type(value), "__slots__", ()):
        if hasattr(value, slot_name):
            state[slot_name] = getattr(value, slot_name)
    if not state:
        return repr(value)
    return (
        type(value).__name__,
        {key: _canonical(item, seen) for key, item in state.items()},
    )


def policy_state(policy) -> dict:
    """A comparable snapshot of one replacement policy's mutable state."""
    return _canonical(policy)


def hierarchy_state(hierarchy) -> dict:
    """Full comparable snapshot of the memory system's mutable state."""
    state = {}
    for cache in (
        hierarchy.l1i,
        hierarchy.l1d,
        hierarchy.l2,
        hierarchy.slc,
    ):
        state[cache.name] = {
            "lines": list(cache._lines),
            "valid": bytes(cache._valid),
            "dirty": list(cache._dirty),
            "instr": list(cache._instr),
            "temps": list(cache._temps),
            "pcs": list(cache._pcs),
            "line_map": dict(cache._line_map),
            "policy": policy_state(cache.policy),
        }
    return state


def run_engine(policy: str, family: str, engine: str):
    """One warm-up + measured replay; returns (result, end state)."""
    warmup, measured = traces_for(family)
    simulator = SystemSimulator(
        SimulatorConfig.scaled().with_l2_policy(policy),
        benchmark=family,
        engine=engine,
    )
    simulator.warm_up(warmup)
    result = simulator.run(measured)
    return result, hierarchy_state(simulator.hierarchy)


@pytest.mark.parametrize(
    "policy,family",
    equivalence_matrix(),
    ids=[f"{p}-{f}" for p, f in equivalence_matrix()],
)
def test_engines_bit_identical(policy, family):
    """scalar == auto (== forced vector, when batchable) on the full matrix.

    The comparison is exact: dataclass equality on the packaged result
    (covering the float Top-Down accumulators and the per-line stall dicts
    bit for bit) plus deep equality of every cache column, residency dict
    and policy state after the run.
    """
    scalar_result, scalar_state = run_engine(policy, family, "scalar")
    auto_result, auto_state = run_engine(policy, family, "auto")
    assert scalar_result == auto_result
    assert scalar_state == auto_state

    probe = SystemSimulator(
        SimulatorConfig.scaled().with_l2_policy(policy), benchmark=family
    )
    if unbatchable_reason(probe.core) is None:
        vector_result, vector_state = run_engine(policy, family, "vector")
        assert scalar_result == vector_result
        assert scalar_state == vector_state
    else:
        # Request-aware configurations must refuse a forced vector engine
        # (auto already proved it falls back to the scalar loop above).
        forced = SystemSimulator(
            SimulatorConfig.scaled().with_l2_policy(policy),
            benchmark=family,
            engine="vector",
        )
        warmup, _ = traces_for(family)
        with pytest.raises(ConfigurationError):
            forced.warm_up(warmup)


@pytest.mark.parametrize("policy", ["lru", "srrip", "brrip", "fifo", "random"])
@pytest.mark.parametrize("family", ["zipf", "streaming"])
def test_window_size_invariance(policy, family):
    """The window is a pure batching knob: 1, a prime, len(trace), and the
    default all replay bit-identically to the scalar loop."""
    warmup, measured = traces_for(family)
    scalar = SystemSimulator(
        SimulatorConfig.scaled().with_l2_policy(policy),
        benchmark=family,
        engine="scalar",
    )
    scalar.warm_up(warmup)
    scalar_result = scalar.run(measured)
    scalar_state = hierarchy_state(scalar.hierarchy)

    event_count = len(measured.fetch_events(64)[0])
    for window in (1, 257, max(event_count, 1), DEFAULT_WINDOW):
        simulator = SystemSimulator(
            SimulatorConfig.scaled().with_l2_policy(policy),
            benchmark=family,
            engine="vector",
        )
        run_packed_vector(simulator.core, warmup, window=window)
        simulator.hierarchy.reset_stats()
        core_result = run_packed_vector(simulator.core, measured, window=window)
        result = simulator.package(core_result)
        assert result == scalar_result, f"window={window}"
        assert hierarchy_state(simulator.hierarchy) == scalar_state, (
            f"window={window}"
        )


def test_vector_engine_requires_packed_trace():
    """Record streams cannot be windowed; engine='vector' says so."""
    warmup, _ = traces_for("zipf")
    simulator = SystemSimulator(
        SimulatorConfig.scaled().with_l2_policy("lru"), engine="vector"
    )
    with pytest.raises(ConfigurationError, match="record stream"):
        simulator.warm_up(list(warmup))


def test_auto_falls_back_for_record_streams():
    """engine='auto' replays record streams through the scalar loop."""
    warmup, measured = traces_for("zipf")
    packed = SystemSimulator(
        SimulatorConfig.scaled().with_l2_policy("lru"), engine="auto"
    )
    packed.warm_up(warmup)
    expected = packed.run(measured)

    records = SystemSimulator(
        SimulatorConfig.scaled().with_l2_policy("lru"), engine="auto"
    )
    records.warm_up(list(warmup))
    assert records.run(list(measured)) == expected


@pytest.mark.parametrize("policy", ["lru", "srrip", "random", "brrip", "fifo"])
def test_mmu_pipeline_bit_identical(policy):
    """The full co-design pipeline — MMU translation with demand paging and
    temperature-tagged code pages — replays bit-identically on the vector
    engine, end to end through the experiment runner."""
    from repro.experiments.runner import BenchmarkRunner
    from repro.workloads.families import WorkloadFamilySpec

    results = {}
    for engine in ("scalar", "vector"):
        spec = WorkloadFamilySpec.of(
            "zipf", instructions=4000, warmup=1000
        ).synthesize()
        runner = BenchmarkRunner(
            config=SimulatorConfig.scaled(), engine=engine
        )
        results[engine] = runner.run(spec, policy).result
    assert results["scalar"] == results["vector"]


def test_mmu_deep_state_identical():
    """Under MMU translation the entire memory-system state — including the
    per-line temperature metadata written by fills of tagged code pages —
    matches between engines after a run."""
    from repro.experiments.runner import BenchmarkRunner
    from repro.workloads.families import WorkloadFamilySpec

    results, states = {}, {}
    for engine in ("scalar", "vector"):
        spec = WorkloadFamilySpec.of(
            "phased", instructions=4000, warmup=1000
        ).synthesize()
        runner = BenchmarkRunner(
            config=SimulatorConfig.scaled().with_l2_policy("srrip"),
            engine=engine,
        )
        prepared = runner._prepare_resolved(spec)
        warm, measured = runner.packed_traces(prepared)
        simulator = SystemSimulator(
            runner.config,
            translator=prepared.mmu(),
            benchmark="phased",
            engine=engine,
        )
        simulator.warm_up(warm)
        results[engine] = simulator.run(measured)
        states[engine] = hierarchy_state(simulator.hierarchy)
    assert results["scalar"] == results["vector"]
    assert states["scalar"] == states["vector"]

    tagged = [
        temp
        for cache_state in states["vector"].values()
        for temp in cache_state["temps"]
        if getattr(temp, "is_tagged", False)
    ]
    assert tagged, "expected temperature-tagged lines under the co-design MMU"


def test_observer_forces_scalar_fallback():
    """An attached l2_access_observer is a per-run unbatchable condition."""
    warmup, measured = traces_for("zipf")
    simulator = SystemSimulator(
        SimulatorConfig.scaled().with_l2_policy("lru"), engine="vector"
    )
    simulator.warm_up(warmup)
    simulator.hierarchy.l2_access_observer = lambda *args: None
    with pytest.raises(ConfigurationError, match="observer"):
        simulator.run(measured)
