"""Tests for the experiment harness (fast tables + miniature sweeps)."""

import dataclasses

import pytest

from repro.api.session import Session
from repro.common.temperature import Temperature
from repro.experiments import (
    format_figure3,
    format_figure6,
    format_figure7,
    format_figure8,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    format_topdown_rows,
    run_table1,
    run_table2,
    run_table4,
    run_table5,
)
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure7 import run_figure7
from repro.experiments.sweep import run_policy_sweep
from repro.experiments.topdown_figures import run_figure1, run_figure2
from repro.sim.config import SimulatorConfig


@pytest.fixture(scope="module")
def tiny_env(request):
    """A shared (spec, session) over the miniature workload (keeps module fast)."""
    from repro.workloads.spec import tiny_spec

    return tiny_spec(), Session(config=SimulatorConfig.scaled())


class TestStaticTables:
    def test_table1_rows_and_formatting(self):
        rows = run_table1()
        assert len(rows) == 7
        text = format_table1(rows)
        assert "TRRIP" not in text  # baseline config uses SRRIP at the L2
        assert "512kB" in text

    def test_table2_covers_all_benchmarks(self):
        rows = run_table2()
        assert len(rows) == 10
        assert "sqlite" in format_table2(rows)

    def test_table4_reports_four_mechanisms(self):
        reports = run_table4()
        assert [r.mechanism for r in reports] == ["trrip", "clip", "emissary", "ship"]
        assert "Mechanism" in format_table4(reports)

    def test_table5_page_counts_positive(self):
        rows = run_table5(benchmarks=["bullet", "sqlite"])
        assert len(rows) == 2
        for row in rows:
            assert row.pages_4k[0] >= 1
            assert row.pages_4k[0] >= row.pages_16k[0]
            assert row.pages_16k[0] >= row.pages_2m[0]
            assert row.binary_size_bytes > 0
        assert "Benchmark" in format_table5(rows)


class TestSimulationExperiments:
    def test_policy_sweep_on_tiny_benchmark(self, tiny_env):
        spec, session = tiny_env
        sweep = run_policy_sweep(
            benchmarks=[spec], policies=["trrip-1"], session=session
        )
        benchmark_name = sweep.benchmarks[0]
        assert sweep.result(benchmark_name, "trrip-1").policy == "trrip-1"
        assert isinstance(sweep.geomean_speedup("trrip-1"), float)
        assert "geomean" in format_figure6(sweep)
        assert "L2 MPKI" in format_table3(sweep)

    def test_figure1_and_2_topdown_rows(self, tiny_env):
        spec, session = tiny_env
        fig1 = run_figure1(components=[spec], session=session)
        assert len(fig1) == 1
        assert fig1[0].pgo_applied
        fig2 = run_figure2(benchmarks=[spec], session=session)
        assert len(fig2) == 2
        labels = [row.label for row in fig2]
        assert labels[0] + "*" == labels[1]
        for row in fig1 + fig2:
            assert sum(row.fractions.values()) == pytest.approx(1.0)
        assert "retire" in format_topdown_rows(fig2)

    def test_figure3_reuse_rows(self, tiny_env):
        spec, session = tiny_env
        rows = run_figure3(benchmarks=[spec], session=session)
        assert len(rows) == 1
        row = rows[0]
        assert row.base_accesses >= row.hot_only_accesses >= 0
        if row.base_accesses:
            assert sum(row.base.values()) == pytest.approx(1.0)
        assert "~" in format_figure3(rows)

    def test_figure7_coverage_rows(self, tiny_env):
        spec, session = tiny_env
        rows = run_figure7(benchmarks=[spec], session=session)
        assert len(rows) == 1
        row = rows[0]
        for percentile, value in row.including_external.coverage_percent.items():
            assert 0.0 <= value <= 100.0
        for percentile in row.excluding_external.coverage_percent:
            assert (
                row.excluding_external.coverage_percent[percentile]
                >= row.including_external.coverage_percent[percentile] - 1e-9
            )
        assert "Figure 7a" in format_figure7(rows)

    def test_figure8_threshold_points(self, tiny_env):
        spec, session = tiny_env
        from repro.experiments.figure8 import run_figure8

        points = run_figure8(
            benchmarks=[spec], thresholds=[0.10, 1.0], session=session
        )
        assert len(points) == 2
        low, high = points
        assert low.percentile_hot == 0.10
        # A higher threshold never shrinks the hot text fraction.
        assert (
            high.text_fractions[Temperature.HOT]
            >= low.text_fractions[Temperature.HOT]
        )
        assert "pct_hot" in format_figure8(points)


class TestWorkloadScaling:
    """Regression for the latent double-scaling bug (ROADMAP).

    Figure modules used to resolve a spec (applying ``workload_scale``) and
    pass it back into ``runner.run``, which resolved — and scaled — it again.
    With ``workload_scale != 1`` every figure then simulated the wrong
    footprints and trace lengths.  Resolution now happens exactly once, in
    the scenario layer (``repro.api``), so the spec a figure prepares must
    be exactly the directly-scaled one, with matching instruction counts.
    """

    def test_figure_module_scales_spec_exactly_once(self):
        from repro.workloads.spec import tiny_spec

        spec = tiny_spec()
        config = dataclasses.replace(
            SimulatorConfig.scaled(), name="halfscale", workload_scale=0.5
        )
        session = Session(config=config)
        once_scaled = spec.scaled(0.5)

        rows = run_figure1(components=[spec], session=session)
        assert len(rows) == 1

        # The figure prepared exactly the once-scaled spec — scaling a
        # second time would have shrunk eval_instructions to 3000 * 0.5.
        prepared_specs = {
            key[0]
            for runner in session._runners.values()
            for key in runner._prepared
        }
        assert prepared_specs == {once_scaled}

        # And the simulated instruction count matches a direct run of the
        # spec through the session (which resolves and scales exactly once).
        artifacts = session.run_one(spec)
        assert artifacts.result.instructions == once_scaled.eval_instructions
        assert once_scaled.eval_instructions == spec.eval_instructions // 2
