"""Unit tests for DRRIP, SHiP, CLIP, Emissary, Belady and the factory."""

import pytest

from repro.cache.replacement.belady import OptimalPolicy
from repro.cache.replacement.clip import CLIPPolicy
from repro.cache.replacement.drrip import DRRIPPolicy
from repro.cache.replacement.dueling import (
    Constituency,
    SaturatingCounter,
    SetDuelingController,
)
from repro.cache.replacement.emissary import EmissaryPolicy
from repro.cache.replacement.factory import available_policies, create_policy
from repro.cache.replacement.ship import SHiPPolicy
from repro.common.errors import ConfigurationError
from repro.core.trrip import TRRIPPolicy
from tests.conftest import data_load, instruction


class TestSaturatingCounter:
    def test_saturates_at_bounds(self):
        counter = SaturatingCounter(bits=2, value=3)
        counter.increment()
        assert counter.value == 3
        counter.value = 0
        counter.decrement()
        assert counter.value == 0

    def test_favors_a_below_midpoint(self):
        counter = SaturatingCounter(bits=4, value=0)
        assert counter.favors_a
        counter.value = 12
        assert not counter.favors_a


class TestSetDueling:
    def test_leader_sets_are_assigned_to_both_policies(self):
        controller = SetDuelingController(num_sets=64, leader_sets_per_policy=4)
        groups = [controller.constituency(i) for i in range(64)]
        assert groups.count(Constituency.LEADER_A) == 4
        assert groups.count(Constituency.LEADER_B) == 4
        assert groups.count(Constituency.FOLLOWER) == 56

    def test_misses_steer_followers(self):
        controller = SetDuelingController(num_sets=64, leader_sets_per_policy=4)
        leader_a = next(
            i for i in range(64) if controller.constituency(i) is Constituency.LEADER_A
        )
        follower = next(
            i for i in range(64) if controller.constituency(i) is Constituency.FOLLOWER
        )
        # Many misses in A's leader sets mean A is doing badly.
        for _ in range(600):
            controller.record_miss(leader_a)
        assert not controller.use_policy_a(follower)

    def test_leader_sets_always_use_their_own_policy(self):
        controller = SetDuelingController(num_sets=64, leader_sets_per_policy=2)
        for i in range(64):
            group = controller.constituency(i)
            if group is Constituency.LEADER_A:
                assert controller.use_policy_a(i)
            elif group is Constituency.LEADER_B:
                assert not controller.use_policy_a(i)


class TestDRRIP:
    def test_leader_sets_insert_with_their_policy(self):
        policy = DRRIPPolicy(num_sets=64, num_ways=4, leader_sets=4)
        srrip_leader = next(
            i
            for i in range(64)
            if policy.dueling.constituency(i) is Constituency.LEADER_A
        )
        assert policy.insertion_rrpv(srrip_leader, data_load(0x40)) == policy.rrpv_intermediate

    def test_prefetches_do_not_update_psel(self):
        policy = DRRIPPolicy(num_sets=64, num_ways=4, leader_sets=4)
        before = policy.dueling.psel.value
        leader = next(
            i
            for i in range(64)
            if policy.dueling.constituency(i) is Constituency.LEADER_A
        )
        policy.on_insert(leader, 0, data_load(0x40, is_prefetch=True))
        assert policy.dueling.psel.value == before


class TestSHiP:
    def test_dead_signature_inserted_distant(self):
        policy = SHiPPolicy(num_sets=4, num_ways=4, shct_entries=64)
        request = instruction(0x1000, pc=0x1000)
        signature = policy.make_signature(request)
        policy.shct[signature] = 0
        assert policy.insertion_rrpv(0, request) == policy.rrpv_distant

    def test_rereferenced_lines_train_the_shct_up(self):
        policy = SHiPPolicy(num_sets=4, num_ways=4, shct_entries=64)
        request = instruction(0x1000, pc=0x1000)
        signature = policy.make_signature(request)
        before = policy.shct[signature]
        policy.on_insert(0, 0, request)
        policy.on_hit(0, 0, request)
        assert policy.shct[signature] == before + 1

    def test_dead_lines_train_the_shct_down_on_eviction(self):
        policy = SHiPPolicy(num_sets=4, num_ways=4, shct_entries=64)
        request = instruction(0x1000, pc=0x1000)
        signature = policy.make_signature(request)
        before = policy.shct[signature]
        policy.on_insert(0, 0, request)
        policy.on_evict(0, 0, request)
        assert policy.shct[signature] == before - 1

    def test_data_lines_follow_srrip_when_instruction_only(self):
        policy = SHiPPolicy(num_sets=4, num_ways=4, instruction_only=True)
        request = data_load(0x2000, pc=0x400)
        signature = policy.make_signature(request)
        policy.shct[signature] = 0
        assert policy.insertion_rrpv(0, request) == policy.rrpv_intermediate


class TestCLIP:
    def test_instruction_lines_inserted_immediate(self):
        policy = CLIPPolicy(num_sets=64, num_ways=4)
        assert policy.insertion_rrpv(0, instruction(0x40)) == policy.rrpv_immediate

    def test_data_lines_inserted_intermediate(self):
        policy = CLIPPolicy(num_sets=64, num_ways=4)
        assert policy.insertion_rrpv(0, data_load(0x40)) == policy.rrpv_intermediate

    def test_variant_b_limits_data_promotion(self):
        policy = CLIPPolicy(num_sets=64, num_ways=4)
        leader_b = next(
            i
            for i in range(64)
            if policy.dueling.constituency(i) is Constituency.LEADER_B
        )
        policy.on_insert(leader_b, 0, data_load(0x40))
        policy.on_hit(leader_b, 0, data_load(0x40))
        assert policy.rrpv(leader_b, 0) == policy.rrpv_near

    def test_instruction_hits_always_promote(self):
        policy = CLIPPolicy(num_sets=64, num_ways=4)
        policy.on_insert(1, 0, instruction(0x40))
        policy.on_hit(1, 0, instruction(0x40))
        assert policy.rrpv(1, 0) == policy.rrpv_immediate


class TestEmissary:
    def test_priority_granted_to_starving_instruction_lines(self):
        policy = EmissaryPolicy(num_sets=1, num_ways=4, priority_probability=1.0)
        policy.on_insert(0, 0, instruction(0x0, starvation_hint=True))
        assert policy.is_priority(0, 0)

    def test_no_priority_without_hint(self):
        policy = EmissaryPolicy(num_sets=1, num_ways=4, priority_probability=1.0)
        policy.on_insert(0, 0, instruction(0x0))
        assert not policy.is_priority(0, 0)

    def test_priority_lines_protected_from_eviction(self):
        policy = EmissaryPolicy(
            num_sets=1, num_ways=2, priority_ways=1, priority_probability=1.0
        )
        policy.on_insert(0, 0, instruction(0x0, starvation_hint=True))
        policy.on_insert(0, 1, data_load(0x40))
        assert policy.select_victim(0, data_load(0x80)) == 1

    def test_priority_capped_per_set(self):
        policy = EmissaryPolicy(
            num_sets=1, num_ways=4, priority_ways=2, priority_probability=1.0
        )
        for way in range(4):
            policy.on_insert(0, way, instruction(0x40 * way, starvation_hint=True))
        protected = [policy.is_priority(0, way) for way in range(4)]
        assert sum(protected) == 2

    def test_all_priority_falls_back_to_lru(self):
        policy = EmissaryPolicy(
            num_sets=1, num_ways=2, priority_ways=2, priority_probability=1.0
        )
        policy.on_insert(0, 0, instruction(0x0, starvation_hint=True))
        policy.on_insert(0, 1, instruction(0x40, starvation_hint=True))
        assert policy.select_victim(0, instruction(0x80)) == 0

    def test_rotation_demotes_stalest_protected_line(self):
        policy = EmissaryPolicy(
            num_sets=1,
            num_ways=4,
            priority_ways=1,
            priority_probability=1.0,
            rotate_on_saturation=True,
        )
        policy.on_insert(0, 0, instruction(0x0, starvation_hint=True))
        policy.on_insert(0, 1, instruction(0x40, starvation_hint=True))
        assert not policy.is_priority(0, 0)
        assert policy.is_priority(0, 1)

    def test_invalid_priority_ways_rejected(self):
        with pytest.raises(ValueError):
            EmissaryPolicy(num_sets=1, num_ways=4, priority_ways=5)


class TestBelady:
    def test_evicts_line_with_farthest_next_use(self):
        policy = OptimalPolicy(num_sets=1, num_ways=2)
        # Reference stream of line addresses (single set).
        stream = [0x000, 0x040, 0x000, 0x080, 0x040]
        policy.prime(stream)
        policy.on_insert(0, 0, instruction(0x000))
        policy.advance()
        policy.on_insert(0, 1, instruction(0x040))
        policy.advance()
        policy.on_hit(0, 0, instruction(0x000))
        policy.advance()
        # Now inserting 0x080: 0x000 is never used again, 0x040 is used next.
        assert policy.select_victim(0, instruction(0x080)) == 0

    def test_unknown_lines_are_preferred_victims(self):
        policy = OptimalPolicy(num_sets=1, num_ways=2)
        policy.prime([0x000])
        policy.on_insert(0, 0, instruction(0x000))
        policy.on_insert(0, 1, instruction(0x040))  # never referenced again
        assert policy.select_victim(0, instruction(0x080)) == 1


class TestFactory:
    def test_creates_every_advertised_policy(self):
        for name in available_policies():
            policy = create_policy(name, num_sets=16, num_ways=4)
            assert policy.num_sets == 16
            assert policy.num_ways == 4

    def test_trrip_variants_resolve(self):
        assert isinstance(create_policy("trrip-1", 16, 4), TRRIPPolicy)
        assert create_policy("trrip-2", 16, 4).variant == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            create_policy("belady-on-a-budget", 16, 4)
