"""Property-style cache invariants under random operation sequences.

The O(1) tag-index redesign of :class:`SetAssociativeCache` keeps a per-set
``tag -> way`` dict alongside the block array.  These tests drive random
``access``/``fill``/``invalidate`` sequences — across every replacement policy
the factory can build — and assert after each batch that

* the tag index agrees exactly with a linear scan of the block array,
* no tag maps to more than one way within a set,
* the statistics counters add up (hits + misses = accesses, per-stream
  totals = demand totals, evictions/invalidations bounded by fills), and
* ``probe`` answers match residency of the block array.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.factory import available_policies, create_policy
from repro.common.request import AccessType, MemoryRequest
from repro.common.temperature import Temperature

NUM_SETS = 8
NUM_WAYS = 4
LINE = 64

ACCESS_TYPES = (
    AccessType.INSTRUCTION_FETCH,
    AccessType.DATA_LOAD,
    AccessType.DATA_STORE,
)
TEMPERATURES = tuple(Temperature)


def make_cache(policy_name: str) -> SetAssociativeCache:
    policy = create_policy(policy_name, NUM_SETS, NUM_WAYS)
    return SetAssociativeCache(
        name=f"inv-{policy_name}",
        size_bytes=NUM_SETS * NUM_WAYS * LINE,
        associativity=NUM_WAYS,
        policy=policy,
        line_size=LINE,
    )


def random_request(rng: random.Random) -> MemoryRequest:
    # A handful of tags per set keeps hits, refills and evictions all common.
    line_number = rng.randrange(NUM_SETS * NUM_WAYS * 3)
    return MemoryRequest(
        address=line_number * LINE + rng.randrange(LINE),
        access_type=rng.choice(ACCESS_TYPES),
        pc=rng.randrange(1 << 20),
        temperature=rng.choice(TEMPERATURES),
        starvation_hint=rng.random() < 0.1,
        is_prefetch=rng.random() < 0.2,
    )


def assert_invariants(cache: SetAssociativeCache) -> None:
    stats = cache.stats
    total_valid = 0
    for set_index in range(cache.num_sets):
        blocks = cache.blocks_in_set(set_index)
        tag_map = cache.tag_map_of(set_index)

        valid_tags = [block.tag for block in blocks if block.valid]
        total_valid += len(valid_tags)
        # At most one way per tag.
        assert len(valid_tags) == len(set(valid_tags))
        # The tag index is exactly the set of valid (tag, way) pairs.
        expected = {
            block.tag: way for way, block in enumerate(blocks) if block.valid
        }
        assert tag_map == expected
        # probe() agrees with the block array for every resident line.
        for way, block in enumerate(blocks):
            if block.valid:
                assert cache.probe(block.address) == way

    # Statistics totals add up.
    assert stats.demand_accesses == stats.demand_hits + stats.demand_misses
    assert stats.inst_accesses == stats.inst_hits + stats.inst_misses
    assert stats.data_accesses == stats.data_hits + stats.data_misses
    assert stats.demand_accesses == stats.inst_accesses + stats.data_accesses
    assert stats.demand_hits == stats.inst_hits + stats.data_hits
    assert stats.demand_misses == stats.inst_misses + stats.data_misses
    assert stats.prefetch_accesses == stats.prefetch_hits + stats.prefetch_misses
    # Resident lines never exceed capacity, and every eviction and
    # invalidation removed a line some fill had installed.
    assert total_valid <= cache.num_sets * cache.associativity
    assert stats.evictions + stats.invalidations + total_valid == stats.fills
    assert stats.prefetch_fills <= stats.fills
    assert stats.writebacks <= stats.evictions


@pytest.mark.parametrize("policy_name", available_policies())
def test_random_operations_preserve_invariants(policy_name):
    rng = random.Random(hash(policy_name) & 0xFFFF)
    cache = make_cache(policy_name)
    operation_count = 0
    for batch in range(20):
        for _ in range(40):
            request = random_request(rng)
            roll = rng.random()
            if roll < 0.45:
                cache.access(request)
            elif roll < 0.85:
                cache.fill(request)
            elif roll < 0.95:
                cache.invalidate(request.address)
            else:
                # fill_raw must uphold the same invariants as fill.
                cache.fill_raw(request)
            operation_count += 1
        assert_invariants(cache)
    assert operation_count == 800


@pytest.mark.parametrize("policy_name", ("lru", "srrip", "trrip-1"))
def test_reset_clears_index_and_counts(policy_name):
    rng = random.Random(7)
    cache = make_cache(policy_name)
    for _ in range(100):
        cache.fill(random_request(rng))
    cache.reset()
    assert_invariants(cache)
    for set_index in range(cache.num_sets):
        assert cache.tag_map_of(set_index) == {}
        assert all(not b.valid for b in cache.blocks_in_set(set_index))
    assert cache.stats.fills == 0


def test_refresh_fill_preserves_dirty_bit():
    """A prefetch refresh of a resident dirty line must not drop the pending
    writeback (regression test for the seed's fill refresh path)."""
    cache = make_cache("lru")
    store = MemoryRequest(address=0x1000, access_type=AccessType.DATA_STORE)
    cache.fill(store)
    set_index = cache.set_index_of(0x1000)
    way = cache.probe(0x1000)
    assert cache.blocks_in_set(set_index)[way].dirty

    refresh = MemoryRequest(
        address=0x1000, access_type=AccessType.DATA_LOAD, is_prefetch=True
    )
    cache.fill(refresh)
    way = cache.probe(0x1000)
    assert cache.blocks_in_set(set_index)[way].dirty, (
        "clean refill of a resident line dropped the dirty bit"
    )

    # Evicting the line must therefore count a writeback.
    writebacks_before = cache.stats.writebacks
    conflicting = [
        MemoryRequest(
            address=0x1000 + i * NUM_SETS * LINE, access_type=AccessType.DATA_LOAD
        )
        for i in range(1, NUM_WAYS + 1)
    ]
    for request in conflicting:
        cache.fill(request)
    assert cache.stats.writebacks == writebacks_before + 1
