"""Unit tests for the synthetic compiler / PGO substrate."""

import pytest

from repro.common.errors import CompilationError
from repro.common.temperature import Temperature
from repro.compiler.classify import ClassifierConfig, TemperatureClassifier
from repro.compiler.ir import BasicBlock, BlockId, Function, Program, make_function
from repro.compiler.layout import CodeLayoutEngine, LayoutConfig
from repro.compiler.pgo import PGOCompiler
from repro.compiler.profile import InstrumentationProfile


def simple_program() -> Program:
    return Program(
        name="demo",
        functions=[
            make_function("main", [64, 64, 64]),
            make_function("helper", [64, 64]),
            make_function("error_path", [64]),
        ],
        external_code_bytes=4096,
    )


def simple_profile(program: Program) -> InstrumentationProfile:
    profile = InstrumentationProfile("demo")
    for index in range(3):
        profile.record(BlockId("main", index), 10_000)
    for index in range(2):
        profile.record(BlockId("helper", index), 50)
    # error_path never executes.
    return profile


class TestIR:
    def test_program_sizes(self):
        program = simple_program()
        assert program.size_bytes == 6 * 64
        assert program.num_blocks == 6

    def test_duplicate_function_names_rejected(self):
        with pytest.raises(CompilationError):
            Program(name="dup", functions=[make_function("f", [64]), make_function("f", [64])])

    def test_zero_sized_block_rejected(self):
        with pytest.raises(CompilationError):
            BasicBlock(BlockId("f", 0), 0)

    def test_block_lookup(self):
        program = simple_program()
        block = program.block(BlockId("helper", 1))
        assert block.size_bytes == 64
        with pytest.raises(KeyError):
            program.function("missing")


class TestProfile:
    def test_record_and_merge(self):
        a = InstrumentationProfile("demo")
        a.record(BlockId("main", 0), 5)
        b = InstrumentationProfile("demo")
        b.record(BlockId("main", 0), 7)
        b.record(BlockId("main", 1), 1)
        merged = a.merge(b)
        assert merged.count(BlockId("main", 0)) == 12
        assert merged.count(BlockId("main", 1)) == 1
        assert merged.total_count == 13

    def test_negative_counts_rejected(self):
        profile = InstrumentationProfile("demo")
        with pytest.raises(CompilationError):
            profile.record(BlockId("main", 0), -1)

    def test_validation_against_program(self):
        program = simple_program()
        profile = InstrumentationProfile("demo")
        profile.record(BlockId("ghost", 0), 1)
        with pytest.raises(CompilationError):
            profile.validate_against(program)

    def test_from_execution(self):
        profile = InstrumentationProfile.from_execution(
            "demo", [BlockId("main", 0), BlockId("main", 0), BlockId("main", 1)]
        )
        assert profile.count(BlockId("main", 0)) == 2
        assert profile.covered_blocks() == {BlockId("main", 0), BlockId("main", 1)}


class TestClassification:
    def test_hot_warm_cold_split(self):
        program = simple_program()
        profile = simple_profile(program)
        classifier = TemperatureClassifier(
            ClassifierConfig(percentile_hot=0.99, percentile_cold=0.9999)
        )
        result = classifier.classify(program, profile)
        assert result.temperature(BlockId("main", 0)) is Temperature.HOT
        assert result.temperature(BlockId("helper", 0)) is Temperature.WARM
        assert result.temperature(BlockId("error_path", 0)) is Temperature.COLD

    def test_percentile_100_marks_all_executed_code_hot(self):
        program = simple_program()
        profile = simple_profile(program)
        classifier = TemperatureClassifier(
            ClassifierConfig(percentile_hot=1.0, percentile_cold=1.0)
        )
        result = classifier.classify(program, profile)
        assert result.temperature(BlockId("helper", 0)) is Temperature.HOT
        assert result.temperature(BlockId("error_path", 0)) is Temperature.COLD

    def test_low_percentile_shrinks_hot_set(self):
        program = simple_program()
        profile = simple_profile(program)
        # Give one block a dominating count.
        profile.record(BlockId("main", 0), 1_000_000)
        classifier = TemperatureClassifier(ClassifierConfig(percentile_hot=0.10))
        result = classifier.classify(program, profile)
        hot_blocks = result.blocks_with(Temperature.HOT)
        assert hot_blocks == {BlockId("main", 0)}

    def test_empty_profile_marks_everything_cold(self):
        program = simple_program()
        classifier = TemperatureClassifier()
        result = classifier.classify(program, InstrumentationProfile("demo"))
        assert all(t is Temperature.COLD for t in result.temperatures.values())

    def test_section_bytes_accounting(self):
        program = simple_program()
        profile = simple_profile(program)
        result = TemperatureClassifier().classify(program, profile)
        totals = result.section_bytes(program)
        assert totals[Temperature.HOT] == 3 * 64
        assert sum(totals.values()) == program.size_bytes

    def test_invalid_config_rejected(self):
        with pytest.raises(CompilationError):
            ClassifierConfig(percentile_hot=0.0).validate()
        with pytest.raises(CompilationError):
            ClassifierConfig(percentile_hot=0.9, percentile_cold=0.5).validate()


class TestLayoutAndELF:
    def test_plain_layout_has_single_untagged_section(self):
        program = simple_program()
        image = CodeLayoutEngine().layout_plain(program)
        assert [s.name for s in image.sections] == [".text"]
        assert image.sections[0].temperature is Temperature.NONE
        assert image.text_size == program.size_bytes

    def test_pgo_layout_orders_hot_warm_cold(self):
        program = simple_program()
        profile = simple_profile(program)
        compiler = PGOCompiler()
        binary = compiler.compile_with_pgo(program, profile)
        sections = {s.name: s for s in binary.image.sections}
        assert sections[".text.hot"].vaddr < sections[".text.warm"].vaddr
        assert sections[".text.warm"].vaddr < sections[".text.cold"].vaddr

    def test_every_block_gets_a_unique_address(self):
        program = simple_program()
        profile = simple_profile(program)
        binary = PGOCompiler().compile_with_pgo(program, profile)
        addresses = list(binary.image.block_addresses.values())
        assert len(addresses) == len(set(addresses)) == program.num_blocks

    def test_temperature_of_address_matches_sections(self):
        program = simple_program()
        profile = simple_profile(program)
        binary = PGOCompiler().compile_with_pgo(program, profile)
        hot_address = binary.block_address(BlockId("main", 0))
        assert binary.image.temperature_of_address(hot_address) is Temperature.HOT
        cold_address = binary.block_address(BlockId("error_path", 0))
        assert binary.image.temperature_of_address(cold_address) is Temperature.COLD

    def test_external_region_is_disjoint_from_sections(self):
        program = simple_program()
        binary = PGOCompiler().compile_without_pgo(program)
        image = binary.image
        assert image.external_size == 4096
        low, high = image.address_range()
        assert image.external_base >= high
        assert image.is_external(image.external_base)
        assert not image.is_external(low)

    def test_page_padding_aligns_sections(self):
        program = simple_program()
        profile = simple_profile(program)
        compiler = PGOCompiler(
            layout_config=LayoutConfig(pad_sections_to_page=True, page_size=4096)
        )
        binary = compiler.compile_with_pgo(program, profile)
        for section in binary.image.sections:
            assert section.vaddr % 4096 == 0

    def test_program_headers_carry_temperature(self):
        program = simple_program()
        profile = simple_profile(program)
        binary = PGOCompiler().compile_with_pgo(program, profile)
        temps = {header.temperature for header in binary.image.program_headers}
        assert Temperature.HOT in temps

    def test_hot_section_ranges_exposed(self):
        program = simple_program()
        profile = simple_profile(program)
        binary = PGOCompiler().compile_with_pgo(program, profile)
        ranges = binary.hot_section_ranges
        assert len(ranges) == 1
        start, end = ranges[0]
        assert end - start == 3 * 64

    def test_binary_size_grows_with_text(self):
        program = simple_program()
        binary = PGOCompiler().compile_without_pgo(program)
        assert binary.image.binary_size > binary.image.text_size


class TestPGOCompiler:
    def test_without_profile_no_temperature_map(self):
        binary = PGOCompiler().compile_without_pgo(simple_program())
        assert not binary.pgo_applied
        assert binary.temperature_map is None
        assert binary.block_temperature(BlockId("main", 0)) is Temperature.NONE

    def test_with_profile_records_everything(self):
        program = simple_program()
        profile = simple_profile(program)
        binary = PGOCompiler().compile_with_pgo(program, profile)
        assert binary.pgo_applied
        assert binary.block_temperature(BlockId("main", 0)) is Temperature.HOT
        assert binary.profile is profile
