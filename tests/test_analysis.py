"""Unit tests for the analysis modules: reuse distance, coverage, power."""

import pytest

from repro.analysis.coverage import costly_miss_coverage
from repro.analysis.power import PowerAreaModel
from repro.analysis.reuse import (
    REUSE_BUCKETS,
    ReuseDistanceTracker,
    ReuseHistogram,
    bucket_for_distance,
)
from repro.common.temperature import Temperature
from repro.sim.config import SimulatorConfig
from tests.conftest import data_load, instruction


class TestReuseBuckets:
    def test_bucket_boundaries_match_figure3(self):
        assert bucket_for_distance(0) == "0-4"
        assert bucket_for_distance(4) == "0-4"
        assert bucket_for_distance(5) == "5-8"
        assert bucket_for_distance(8) == "5-8"
        assert bucket_for_distance(9) == "9-16"
        assert bucket_for_distance(16) == "9-16"
        assert bucket_for_distance(17) == "16+"

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            bucket_for_distance(-1)

    def test_histogram_fractions(self):
        histogram = ReuseHistogram()
        histogram.record(0)
        histogram.record(10)
        histogram.record(10)
        fractions = histogram.fractions()
        assert fractions["0-4"] == pytest.approx(1 / 3)
        assert fractions["9-16"] == pytest.approx(2 / 3)
        assert histogram.fraction_at_least("9-16") == pytest.approx(2 / 3)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_histogram(self):
        histogram = ReuseHistogram()
        assert histogram.total == 0
        assert all(v == 0.0 for v in histogram.fractions().values())


class TestReuseTracker:
    def test_immediate_rereference_is_bucket_0_4(self):
        tracker = ReuseDistanceTracker(num_sets=4)
        hot = instruction(0x1000, Temperature.HOT)
        tracker.observe(hot)
        tracker.observe(hot)
        assert tracker.base.counts["0-4"] == 1

    def test_intervening_lines_increase_distance(self):
        tracker = ReuseDistanceTracker(num_sets=1)  # everything in one set
        hot = instruction(0x0, Temperature.HOT)
        tracker.observe(hot)
        for i in range(1, 7):
            tracker.observe(data_load(0x40 * i))
        tracker.observe(hot)
        assert tracker.base.counts["5-8"] == 1
        # Hot-only view ignores the data lines entirely.
        assert tracker.hot_only.counts["0-4"] == 1

    def test_only_hot_instruction_lines_are_measured(self):
        tracker = ReuseDistanceTracker(num_sets=4)
        cold = instruction(0x2000, Temperature.COLD)
        tracker.observe(cold)
        tracker.observe(cold)
        assert tracker.base.total == 0

    def test_distances_are_per_set(self):
        tracker = ReuseDistanceTracker(num_sets=2)
        hot = instruction(0x0, Temperature.HOT)
        other_set = instruction(0x40, Temperature.HOT)  # maps to set 1
        tracker.observe(hot)
        tracker.observe(other_set)
        tracker.observe(hot)
        assert tracker.base.counts["0-4"] == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            ReuseDistanceTracker(num_sets=0)


class TestCoverage:
    def test_full_coverage_when_all_costly_lines_are_hot(self):
        hot_ranges = [(0x1000, 0x2000)]
        costs = {0x1000: 50.0, 0x1040: 30.0, 0x1080: 10.0}
        result = costly_miss_coverage("demo", costs, hot_ranges)
        assert all(v == 100.0 for v in result.coverage_percent.values())

    def test_zero_coverage_when_no_costly_line_is_hot(self):
        result = costly_miss_coverage(
            "demo", {0x9000: 50.0}, hot_ranges=[(0x1000, 0x2000)]
        )
        assert all(v == 0.0 for v in result.coverage_percent.values())

    def test_excluding_external_lines_raises_coverage(self):
        hot_ranges = [(0x1000, 0x2000)]
        is_external = lambda a: a >= 0x10_0000
        costs = {0x1000: 50.0, 0x10_0000: 60.0}
        including = costly_miss_coverage(
            "demo", costs, hot_ranges, is_external, exclude_external=False
        )
        excluding = costly_miss_coverage(
            "demo", costs, hot_ranges, is_external, exclude_external=True
        )
        assert excluding.coverage_percent[50] >= including.coverage_percent[50]
        assert excluding.costly_lines == 1

    def test_higher_percentiles_select_fewer_lines(self):
        hot_ranges = [(0x1000, 0x1040)]
        # Only the single costliest line is hot.
        costs = {0x1000: 100.0}
        costs.update({0x9000 + 0x40 * i: float(i) for i in range(1, 20)})
        result = costly_miss_coverage("demo", costs, hot_ranges)
        assert result.coverage_percent[90] >= result.coverage_percent[50]

    def test_empty_costs(self):
        result = costly_miss_coverage("demo", {}, hot_ranges=[(0, 10)])
        assert result.costly_lines == 0
        assert all(v == 0.0 for v in result.coverage_percent.values())


class TestPowerArea:
    def test_table4_ordering_matches_paper(self):
        model = PowerAreaModel(SimulatorConfig.paper())
        reports = {report.mechanism: report for report in model.table4()}
        assert reports["trrip"].area_percent == pytest.approx(0.0)
        assert reports["clip"].area_percent == pytest.approx(0.0)
        assert reports["ship"].area_percent > reports["emissary"].area_percent > 0
        assert (
            reports["ship"].static_power_percent
            > reports["emissary"].static_power_percent
        )

    def test_ship_overhead_in_paper_ballpark(self):
        model = PowerAreaModel(SimulatorConfig.paper())
        ship = model.report("ship")
        assert 1.5 <= ship.area_percent <= 5.0
        assert 0.8 <= ship.static_power_percent <= 3.0

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(KeyError):
            PowerAreaModel().report("hawkeye")

    def test_overheads_scale_with_cache_size(self):
        small = PowerAreaModel(SimulatorConfig.scaled()).report("emissary")
        large = PowerAreaModel(SimulatorConfig.paper()).report("emissary")
        assert large.area_percent != small.area_percent
