"""Flat-array cache vs an object-backed reference: behavioural equivalence.

The production :class:`~repro.cache.cache.SetAssociativeCache` keeps its
state in flat columns with a line-number residency dict, pre-bound policy
hooks and declarative (inline) hit/replace/evict updates.  This suite
replays randomized access streams through it and through
:class:`ReferenceCache` — a deliberately naive object-per-block model that
drives the *same replacement-policy class* through the plain
``on_hit``/``select_victim``/``on_evict``/``on_insert`` hook sequence — and
asserts the two observe **identical hit/miss/evict/writeback sequences** for
every registered policy.  Any shortcut in the flat cache (fused ``replace``,
declarative specs, skipped probes) that changed behaviour for any policy
would diverge here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.spec import PolicySpec
from repro.common.request import AccessType, MemoryRequest
from repro.common.temperature import Temperature
from repro.testing import equivalence_policy_names

SETS = 8
WAYS = 4
LINE = 64
SIZE = SETS * WAYS * LINE

#: Footprint of the random streams (in distinct lines): several times the
#: cache capacity, so the streams exercise misses, evictions and refills.
FOOTPRINT_LINES = SETS * WAYS * 4

STREAM_LENGTH = 3000
SEEDS = (1, 2)


@dataclass
class ReferenceBlock:
    """One line of the object-backed reference model."""

    tag: int = 0
    address: int = 0
    valid: bool = False
    dirty: bool = False
    is_instruction: bool = False
    temperature: Temperature = Temperature.NONE
    pc: int = 0


@dataclass
class ReferenceCache:
    """Textbook object-per-block set-associative cache.

    Linear probes over block objects, no residency index, no pre-bound
    hooks: every policy interaction goes through the four request-aware
    hook methods in the canonical order.  Only behaviour-relevant fields
    are modelled; the event log is the observable surface the equivalence
    test compares.
    """

    policy: object
    num_sets: int = SETS
    ways: int = WAYS
    line_size: int = LINE
    events: list[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.sets = [
            [ReferenceBlock() for _ in range(self.ways)]
            for _ in range(self.num_sets)
        ]

    def _locate(self, address: int) -> tuple[int, int, Optional[int]]:
        set_index = (address // self.line_size) % self.num_sets
        tag = address // (self.line_size * self.num_sets)
        for way, block in enumerate(self.sets[set_index]):
            if block.valid and block.tag == tag:
                return set_index, tag, way
        return set_index, tag, None

    def access(self, request: MemoryRequest) -> bool:
        set_index, _tag, way = self._locate(request.address)
        if way is None:
            self.events.append(("miss", request.address))
            return False
        self.events.append(("hit", request.address))
        if request.access_type is AccessType.DATA_STORE:
            self.sets[set_index][way].dirty = True
        self.policy.on_hit(set_index, way, request)
        return True

    def fill(self, request: MemoryRequest) -> None:
        set_index, tag, way = self._locate(request.address)
        blocks = self.sets[set_index]
        if way is not None:
            # Refresh keeps a pending writeback.
            was_dirty = blocks[way].dirty
            self._install(blocks[way], request, tag)
            blocks[way].dirty = blocks[way].dirty or was_dirty
            self.events.append(("refresh", request.address))
            return
        way = next(
            (w for w, block in enumerate(blocks) if not block.valid), None
        )
        if way is None:
            way = self.policy.select_victim(set_index, request)
            victim = blocks[way]
            self.events.append(
                ("evict", victim.address, bool(victim.dirty))
            )
            self.policy.on_evict(set_index, way, request)
        self._install(blocks[way], request, tag)
        self.events.append(("fill", request.address))
        self.policy.on_insert(set_index, way, request)

    def _install(self, block: ReferenceBlock, request: MemoryRequest, tag: int) -> None:
        block.tag = tag
        block.address = request.address - request.address % self.line_size
        block.valid = True
        block.dirty = request.access_type is AccessType.DATA_STORE
        block.is_instruction = request.access_type is AccessType.INSTRUCTION_FETCH
        block.temperature = request.temperature
        block.pc = request.pc

    def invalidate(self, address: int) -> None:
        set_index, _tag, way = self._locate(address)
        if way is None:
            self.events.append(("inval-miss", address))
            return
        self.policy.on_evict(set_index, way, None)
        self.sets[set_index][way] = ReferenceBlock()
        self.events.append(("inval", address))


class FlatRecorder:
    """Drives the production flat-array cache, logging the same event shapes."""

    def __init__(self, policy) -> None:
        self.cache = SetAssociativeCache("flat", SIZE, WAYS, policy, LINE)
        self.events: list[tuple] = []

    def access(self, request: MemoryRequest) -> bool:
        hit = self.cache.access(request)
        self.events.append(("hit" if hit else "miss", request.address))
        return hit

    def fill(self, request: MemoryRequest) -> None:
        before = (self.cache.stats.fills, self.cache.stats.evictions)
        victim = self.cache.fill(request)
        after = (self.cache.stats.fills, self.cache.stats.evictions)
        if victim is not None:
            self.events.append(("evict", victim.address, bool(victim.dirty)))
        if after[0] == before[0]:
            self.events.append(("refresh", request.address))
        else:
            self.events.append(("fill", request.address))

    def invalidate(self, address: int) -> None:
        if self.cache.invalidate(address):
            self.events.append(("inval", address))
        else:
            self.events.append(("inval-miss", address))


def build_policy(name: str):
    return PolicySpec.of(name).build(SETS, WAYS)


def make_stream(seed: int) -> list[tuple]:
    """A deterministic random op stream: accesses, miss-fills, invalidates."""
    rng = random.Random(seed)
    ops = []
    for _ in range(STREAM_LENGTH):
        line = rng.randrange(FOOTPRINT_LINES)
        address = line * LINE + rng.randrange(LINE)
        kind = rng.random()
        if kind < 0.08:
            ops.append(("invalidate", address))
            continue
        access_type = rng.choice(
            (
                AccessType.INSTRUCTION_FETCH,
                AccessType.DATA_LOAD,
                AccessType.DATA_STORE,
            )
        )
        temperature = rng.choice(
            (Temperature.NONE, Temperature.HOT, Temperature.WARM, Temperature.COLD)
        )
        request = MemoryRequest(
            address=address,
            access_type=access_type,
            pc=(line * 4) & 0xFFFF,
            temperature=temperature,
            starvation_hint=rng.random() < 0.1,
            is_prefetch=rng.random() < 0.15,
        )
        ops.append(("access", request))
    return ops


def model_policy(model):
    return model.cache.policy if isinstance(model, FlatRecorder) else model.policy


def replay(model, ops, line_addresses) -> list[tuple]:
    policy = model_policy(model)
    is_opt = policy.name == "opt"
    if is_opt:
        policy.prime(line_addresses)
    for op in ops:
        if op[0] == "invalidate":
            model.invalidate(op[1])
            continue
        request = op[1]
        if not model.access(request):
            # Miss: fill, exactly like the hierarchy walk would.
            model.fill(request)
        if is_opt:
            policy.advance()
    return model.events


@pytest.mark.parametrize("policy_name", equivalence_policy_names())
@pytest.mark.parametrize("seed", SEEDS)
def test_flat_cache_matches_object_reference(policy_name, seed):
    ops = make_stream(seed)
    line_addresses = [
        op[1].address if op[0] == "access" else op[1] for op in ops
    ]

    flat = FlatRecorder(build_policy(policy_name))
    reference = ReferenceCache(policy=build_policy(policy_name))

    flat_events = replay(flat, ops, line_addresses)
    reference_events = replay(reference, ops, line_addresses)

    assert flat_events == reference_events

    # The end states agree too: same resident lines, same dirty bits.
    for set_index in range(SETS):
        flat_blocks = flat.cache.blocks_in_set(set_index)
        reference_blocks = reference.sets[set_index]
        flat_view = sorted(
            (b.tag, b.dirty) for b in flat_blocks if b.valid
        )
        reference_view = sorted(
            (b.tag, b.dirty) for b in reference_blocks if b.valid
        )
        assert flat_view == reference_view


class TestSubclassOverrideGuards:
    def test_subclass_overriding_select_victim_disables_fused_replace(self):
        """A policy subclass changing victim choice must actually be called.

        The fused ``replace``/``replace_spec`` shortcuts are inherited
        attributes; the cache's structural guard has to notice the overridden
        hook and fall back to the plain sequence, otherwise the override is
        silently bypassed on full sets.
        """
        from repro.cache.replacement.basic import LRUPolicy

        class MRUPolicy(LRUPolicy):
            """Evict the *most* recently used way (inverse of LRU)."""

            def select_victim(self, set_index, request):
                stamps = self._stamps[set_index]
                return stamps.index(max(stamps))

        cache = SetAssociativeCache("mru", SIZE, WAYS, MRUPolicy(SETS, WAYS), LINE)
        assert cache._policy_replace is None
        assert cache._replace_kind == 0

        # Fill one set, touching ways in order; the MRU way must be evicted.
        stride = SETS * LINE
        for way in range(WAYS):
            cache.fill(
                MemoryRequest(address=way * stride, access_type=AccessType.DATA_LOAD)
            )
        victim = cache.fill(
            MemoryRequest(address=WAYS * stride, access_type=AccessType.DATA_LOAD)
        )
        assert victim is not None
        assert victim.address == (WAYS - 1) * stride  # MRU, not LRU (way 0)

    def test_subclass_overriding_touch_disables_declarative_hit(self):
        from repro.cache.replacement.basic import LRUPolicy

        calls = []

        class LoggingLRU(LRUPolicy):
            def touch(self, set_index, way):
                calls.append((set_index, way))
                super().touch(set_index, way)

        cache = SetAssociativeCache(
            "log", SIZE, WAYS, LoggingLRU(SETS, WAYS), LINE
        )
        assert cache._touch_kind == 0  # declarative shortcut disabled
        request = MemoryRequest(address=0x40, access_type=AccessType.DATA_LOAD)
        cache.fill(request)
        calls.clear()
        cache.access(request)
        assert calls  # the override really ran on the hit path
