"""Unit tests for the CPU model: branch prediction, frontend, backend, core."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, CacheLevelConfig, HierarchyConfig
from repro.common.temperature import Temperature
from repro.common.trace import TraceRecord
from repro.cpu.backend import BackendConfig, BackendModel
from repro.cpu.branch import BranchPredictionUnit, BranchPredictorConfig
from repro.cpu.core import CoreConfig, CoreModel
from repro.cpu.frontend import FetchEngine, FrontendConfig
from repro.cpu.topdown import TopDownBreakdown


def small_hierarchy() -> CacheHierarchy:
    config = HierarchyConfig(
        l1i=CacheLevelConfig(size_bytes=512, associativity=2, latency=3, policy="lru"),
        l1d=CacheLevelConfig(size_bytes=512, associativity=2, latency=3, policy="lru"),
        l2=CacheLevelConfig(size_bytes=2048, associativity=4, latency=12, policy="srrip"),
        slc=CacheLevelConfig(size_bytes=4096, associativity=4, latency=30, policy="lru"),
        dram_latency=400,
    )
    return CacheHierarchy(config)


def branch(pc, taken=True, target=0x2000, **kw):
    return TraceRecord(pc=pc, is_branch=True, branch_taken=taken, branch_target=target, **kw)


class TestBranchPredictor:
    def test_repeated_branch_becomes_predictable(self):
        unit = BranchPredictionUnit()
        record = branch(0x100, taken=True, target=0x300)
        for _ in range(20):
            unit.predict_and_update(record)
        outcome = unit.predict_and_update(record)
        assert not outcome.mispredicted

    def test_btb_miss_counts_as_target_misprediction(self):
        unit = BranchPredictionUnit()
        outcome = unit.predict_and_update(branch(0x100, taken=True, target=0x900))
        assert outcome.mispredicted

    def test_random_directions_are_hard(self):
        import random as _random

        rng = _random.Random(42)
        unit = BranchPredictionUnit()
        mispredictions = 0
        for _ in range(128):
            record = branch(0x100, taken=rng.random() < 0.5, target=0x300)
            if unit.predict_and_update(record).mispredicted:
                mispredictions += 1
        # Data-dependent random directions cannot be captured by history.
        assert mispredictions > 20

    def test_loop_predictor_learns_trip_count(self):
        unit = BranchPredictionUnit()
        # A loop branch taken exactly 5 times then not taken, repeatedly.
        mispredicts_late = 0
        for repeat in range(30):
            for i in range(6):
                record = branch(0x200, taken=(i < 5), target=0x200)
                outcome = unit.predict_and_update(record)
                if repeat > 20:
                    mispredicts_late += outcome.mispredicted
        # Once the trip count is learned the exit is predicted too.
        assert mispredicts_late <= 2

    def test_indirect_branches_use_indirect_btb(self):
        unit = BranchPredictionUnit()
        record = branch(0x400, taken=True, target=0x5000, is_indirect=True)
        for _ in range(10):
            unit.predict_and_update(record)
        assert not unit.predict_and_update(record).mispredicted

    def test_non_branch_record_rejected(self):
        unit = BranchPredictionUnit()
        with pytest.raises(ValueError):
            unit.predict_and_update(TraceRecord(pc=0x100))

    def test_stats_accumulate(self):
        unit = BranchPredictionUnit()
        for i in range(10):
            unit.predict_and_update(branch(0x100 + 4 * i, taken=True, target=0x900))
        assert unit.stats.branches == 10
        assert 0.0 <= unit.stats.accuracy <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(btb_entries=0).validate()


class TestFetchEngine:
    def test_fdip_lead_hides_part_of_the_latency(self):
        hierarchy = small_hierarchy()
        engine = FetchEngine(hierarchy, config=FrontendConfig(fdip_lead_cycles=8))
        outcome = engine.fetch_line(0x1000)
        expected = (3 + 12 + 30 + 400) - 3 - 8
        assert outcome.stall_cycles == pytest.approx(expected)

    def test_l1_hits_do_not_stall(self):
        hierarchy = small_hierarchy()
        engine = FetchEngine(hierarchy)
        engine.fetch_line(0x1000)
        outcome = engine.fetch_line(0x1000)
        assert outcome.stall_cycles == 0.0

    def test_starved_lines_are_remembered_for_emissary(self):
        hierarchy = small_hierarchy()
        engine = FetchEngine(hierarchy)
        outcome = engine.fetch_line(0x1000)
        assert outcome.caused_starvation
        assert 0x1000 in engine.starved_lines()

    def test_line_stall_accounting_feeds_figure7(self):
        hierarchy = small_hierarchy()
        engine = FetchEngine(hierarchy)
        engine.fetch_line(0x1000)
        assert engine.line_stall_cycles[0x1000] > 0
        assert engine.line_miss_counts[0x1000] == 1

    def test_reset_clears_state(self):
        hierarchy = small_hierarchy()
        engine = FetchEngine(hierarchy)
        engine.fetch_line(0x1000)
        engine.reset()
        assert not engine.starved_lines()
        assert engine.stats.demand_fetches == 0


class TestBackend:
    def test_short_latencies_fully_hidden(self):
        hierarchy = small_hierarchy()
        backend = BackendModel(hierarchy, config=BackendConfig(hide_latency=50))
        hierarchy.access_data(
            __import__("tests.conftest", fromlist=["data_load"]).data_load(0x9000)
        )
        outcome = backend.access_data(0x9000, pc=0x100, is_store=False)
        assert outcome.stall_cycles == 0.0

    def test_long_latencies_partially_exposed(self):
        hierarchy = small_hierarchy()
        backend = BackendModel(
            hierarchy, config=BackendConfig(hide_latency=20, overlap_fraction=0.5)
        )
        outcome = backend.access_data(0xA000, pc=0x100, is_store=False)
        expected = (445 - 20) * 0.5
        assert outcome.stall_cycles == pytest.approx(expected)

    def test_stores_expose_half_the_stall(self):
        hierarchy = small_hierarchy()
        backend = BackendModel(
            hierarchy, config=BackendConfig(hide_latency=20, overlap_fraction=0.5)
        )
        load = backend.access_data(0xB000, pc=0x100, is_store=False)
        store = backend.access_data(0xC000, pc=0x104, is_store=True)
        assert store.stall_cycles == pytest.approx(load.stall_cycles * 0.5)

    def test_negative_synthetic_stalls_rejected(self):
        backend = BackendModel(small_hierarchy())
        with pytest.raises(ValueError):
            backend.charge_depend_stall(-1)


class TestTopDown:
    def test_fractions_sum_to_one(self):
        breakdown = TopDownBreakdown(retire=10, ifetch=5, mem=5)
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_unknown_category_rejected(self):
        breakdown = TopDownBreakdown()
        with pytest.raises(KeyError):
            breakdown.add("speculation", 1.0)
        with pytest.raises(KeyError):
            breakdown.fraction("speculation")

    def test_merge_and_scale(self):
        a = TopDownBreakdown(retire=1.0, ifetch=2.0)
        b = TopDownBreakdown(retire=3.0, mem=1.0)
        merged = a.merge(b)
        assert merged.retire == 4.0
        assert merged.ifetch == 2.0
        scaled = merged.scaled(0.5)
        assert scaled.retire == 2.0

    def test_frontend_bound_fraction(self):
        breakdown = TopDownBreakdown(retire=5.0, ifetch=4.0, mispred=1.0)
        assert breakdown.frontend_bound == pytest.approx(0.5)


class TestCoreModel:
    def test_straight_line_code_is_retire_dominated_after_warmup(self):
        hierarchy = small_hierarchy()
        core = CoreModel(hierarchy, config=CoreConfig())
        trace = [TraceRecord(pc=0x1000 + 4 * i) for i in range(64)]
        core.run(iter(trace))  # warm caches
        result = core.run(iter(trace))
        assert result.instructions == 64
        assert result.topdown.retire > 0
        assert result.topdown.ifetch == 0.0

    def test_branch_mispredictions_charge_penalty(self):
        hierarchy = small_hierarchy()
        core = CoreModel(hierarchy)
        trace = [
            TraceRecord(
                pc=0x1000,
                is_branch=True,
                branch_taken=True,
                branch_target=0x8000,
            )
        ]
        result = core.run(iter(trace))
        assert result.branch_mispredictions == 1
        assert result.topdown.mispred == pytest.approx(
            core.config.branch.mispredict_penalty
        )

    def test_synthetic_stalls_accounted(self):
        hierarchy = small_hierarchy()
        core = CoreModel(hierarchy)
        trace = [TraceRecord(pc=0x1000, depend_stall=3, issue_stall=2)]
        result = core.run(iter(trace))
        assert result.topdown.depend == pytest.approx(3.0)
        assert result.topdown.issue == pytest.approx(2.0)

    def test_memory_records_touch_the_data_path(self):
        hierarchy = small_hierarchy()
        core = CoreModel(hierarchy)
        trace = [TraceRecord(pc=0x1000, mem_address=0xF000)]
        core.run(iter(trace))
        assert hierarchy.stats.data_accesses == 1

    def test_each_run_reports_only_its_own_window(self):
        hierarchy = small_hierarchy()
        core = CoreModel(hierarchy)
        trace = [
            TraceRecord(pc=0x1000, is_branch=True, branch_taken=True, branch_target=0x2000)
        ]
        first = core.run(iter(trace))
        second = core.run(iter(trace))
        assert first.branches == 1
        assert second.branches == 1
        assert second.instructions == 1

    def test_ipc_and_cpi_consistency(self):
        hierarchy = small_hierarchy()
        core = CoreModel(hierarchy)
        trace = [TraceRecord(pc=0x1000 + 4 * i) for i in range(32)]
        result = core.run(iter(trace))
        assert result.ipc == pytest.approx(1.0 / result.cpi)
