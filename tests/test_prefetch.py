"""Unit tests for the hardware prefetcher models."""

import pytest

from repro.cache.prefetch import (
    NextLinePrefetcher,
    NullPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from tests.conftest import data_load


class TestNullPrefetcher:
    def test_never_prefetches(self):
        prefetcher = NullPrefetcher()
        assert not prefetcher.observe(data_load(0x1000), hit=False)


class TestNextLinePrefetcher:
    def test_prefetches_following_lines(self):
        prefetcher = NextLinePrefetcher(degree=2)
        targets = prefetcher.observe(data_load(0x1010), hit=False)
        assert targets == [0x1040, 0x1080]

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestStridePrefetcher:
    def test_detects_constant_stride(self):
        prefetcher = StridePrefetcher(degree=2, threshold=2)
        pc = 0x400
        targets = []
        for i in range(6):
            targets = prefetcher.observe(data_load(0x1000 + i * 256, pc=pc), hit=False)
        assert targets  # confident by now
        assert targets[0] == 0x1000 + 5 * 256 + 256 - (0x1000 + 5 * 256 + 256) % 64

    def test_no_prefetch_without_confidence(self):
        prefetcher = StridePrefetcher(degree=1, threshold=3)
        pc = 0x400
        assert not prefetcher.observe(data_load(0x1000, pc=pc), hit=False)
        assert not prefetcher.observe(data_load(0x1100, pc=pc), hit=False)

    def test_irregular_strides_reset_confidence(self):
        prefetcher = StridePrefetcher(degree=1, threshold=2)
        pc = 0x400
        addresses = [0x1000, 0x1100, 0x1200, 0x5000, 0x1400]
        results = [prefetcher.observe(data_load(a, pc=pc), hit=False) for a in addresses]
        assert not results[-1]

    def test_table_capacity_is_bounded(self):
        prefetcher = StridePrefetcher(table_entries=4)
        for pc in range(16):
            prefetcher.observe(data_load(0x1000 + pc * 8, pc=pc), hit=False)
        assert len(prefetcher._table) <= 4

    def test_reset_clears_table(self):
        prefetcher = StridePrefetcher()
        prefetcher.observe(data_load(0x1000, pc=0x4), hit=False)
        prefetcher.reset()
        assert len(prefetcher._table) == 0


class TestFactory:
    def test_factory_builds_each_kind(self):
        assert isinstance(make_prefetcher("none"), NullPrefetcher)
        assert isinstance(make_prefetcher("nextline"), NextLinePrefetcher)
        assert isinstance(make_prefetcher("stride"), StridePrefetcher)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_prefetcher("oracle")
