"""Unit tests for the OS substrate: pages, page table, loader, MMU."""

import pytest

from repro.common.errors import LoaderError, SimulationError
from repro.common.temperature import Temperature
from repro.compiler.ir import BlockId, Program, make_function
from repro.compiler.pgo import PGOCompiler
from repro.compiler.profile import InstrumentationProfile
from repro.osmodel.loader import LoaderConfig, OverlapPolicy, ProgramLoader
from repro.osmodel.mmu import MMU
from repro.osmodel.page_table import PageTable
from repro.osmodel.pages import (
    PAGE_SIZE_4K,
    PAGE_SIZE_16K,
    PageTableEntry,
    count_pages_by_temperature,
    pages_spanned,
)


def compiled_demo(pad_sections: bool = False):
    program = Program(
        name="demo",
        functions=[
            make_function("hot_fn", [64] * 80),     # 5 kB of hot code
            make_function("warm_fn", [64] * 40),    # 2.5 kB of warm code
            make_function("cold_fn", [64] * 20),
        ],
        external_code_bytes=8192,
    )
    profile = InstrumentationProfile("demo")
    for index in range(80):
        profile.record(BlockId("hot_fn", index), 10_000)
    for index in range(40):
        profile.record(BlockId("warm_fn", index), 40)
    from repro.compiler.layout import LayoutConfig

    compiler = PGOCompiler(
        layout_config=LayoutConfig(pad_sections_to_page=pad_sections)
    )
    return compiler.compile_with_pgo(program, profile)


class TestPages:
    def test_pte_round_trips_temperature(self):
        entry = PageTableEntry(virtual_page=4, physical_frame=9)
        entry.set_temperature(Temperature.WARM)
        assert entry.temperature is Temperature.WARM

    def test_pte_rejects_bad_attribute_bits(self):
        with pytest.raises(LoaderError):
            PageTableEntry(virtual_page=0, physical_frame=0, attribute_bits=7)

    def test_pages_spanned(self):
        assert pages_spanned(0, 4096, 4096) == 1
        assert pages_spanned(100, 4096, 4096) == 2
        assert pages_spanned(0, 0, 4096) == 0

    def test_count_pages_by_temperature_rounds_up(self):
        binary = compiled_demo()
        counts_4k = count_pages_by_temperature(binary.image, PAGE_SIZE_4K)
        counts_16k = count_pages_by_temperature(binary.image, PAGE_SIZE_16K)
        assert counts_4k[Temperature.HOT] == 2  # 5 kB -> 2 pages
        assert counts_16k[Temperature.HOT] == 1
        assert counts_4k[Temperature.WARM] >= 1


class TestPageTable:
    def test_map_and_lookup(self):
        table = PageTable()
        entry = table.map_page(10, executable=True, temperature=Temperature.HOT)
        assert table.lookup(10) is entry
        assert table.is_mapped(10)
        assert table.lookup(11) is None

    def test_frames_are_unique(self):
        table = PageTable()
        frames = {table.map_page(vpn).physical_frame for vpn in range(32)}
        assert len(frames) == 32

    def test_remapping_updates_attributes(self):
        table = PageTable()
        table.map_page(5, temperature=Temperature.NONE)
        entry = table.map_page(5, executable=True, temperature=Temperature.WARM)
        assert entry.temperature is Temperature.WARM
        assert table.entry_count() == 1

    def test_pages_with_temperature(self):
        table = PageTable()
        table.map_page(1, temperature=Temperature.HOT)
        table.map_page(2, temperature=Temperature.HOT)
        table.map_page(3, temperature=Temperature.COLD)
        assert table.pages_with_temperature(Temperature.HOT) == 2


class TestLoader:
    def test_loader_tags_code_pages(self):
        binary = compiled_demo()
        loaded = ProgramLoader().load(binary)
        assert loaded.code_pages > 0
        assert loaded.tagged_pages > 0
        assert loaded.pages_by_temperature[Temperature.HOT] >= 1

    def test_loader_maps_external_region_untagged(self):
        binary = compiled_demo()
        loaded = ProgramLoader().load(binary)
        vpn = binary.image.external_base // 4096
        entry = loaded.page_table.lookup(vpn)
        assert entry is not None
        assert entry.temperature is Temperature.NONE

    def test_overlap_disable_policy_leaves_mixed_pages_untagged(self):
        binary = compiled_demo()
        majority = ProgramLoader(
            LoaderConfig(overlap_policy=OverlapPolicy.MAJORITY)
        ).load(binary)
        disabled = ProgramLoader(
            LoaderConfig(overlap_policy=OverlapPolicy.DISABLE)
        ).load(binary)
        assert disabled.tagged_pages <= majority.tagged_pages
        assert disabled.mixed_temperature_pages == majority.mixed_temperature_pages

    def test_first_policy_prefers_hotter_section(self):
        binary = compiled_demo()
        loaded = ProgramLoader(
            LoaderConfig(overlap_policy=OverlapPolicy.FIRST)
        ).load(binary)
        assert loaded.pages_by_temperature[Temperature.HOT] >= 1

    def test_padded_sections_have_no_mixed_pages(self):
        binary = compiled_demo(pad_sections=True)
        loaded = ProgramLoader().load(binary)
        assert loaded.mixed_temperature_pages == 0

    def test_temperature_propagation_can_be_disabled(self):
        binary = compiled_demo()
        loaded = ProgramLoader(LoaderConfig(propagate_temperature=False)).load(binary)
        assert loaded.tagged_pages == 0


class TestMMU:
    def test_instruction_translation_carries_temperature(self):
        binary = compiled_demo()
        loaded = ProgramLoader().load(binary)
        mmu = MMU(loaded.page_table)
        hot_vaddr = binary.image.section(".text.hot").vaddr
        paddr, temperature = mmu.translate_instruction(hot_vaddr)
        assert temperature is Temperature.HOT
        assert paddr % 4096 == hot_vaddr % 4096  # page offset preserved

    def test_data_translations_are_never_tagged(self):
        binary = compiled_demo()
        loaded = ProgramLoader().load(binary)
        mmu = MMU(loaded.page_table)
        hot_vaddr = binary.image.section(".text.hot").vaddr
        _, temperature = mmu.translate_data(hot_vaddr)
        assert temperature is Temperature.NONE

    def test_demand_paging_maps_unmapped_addresses(self):
        mmu = MMU(PageTable())
        paddr, temperature = mmu.translate_data(0x9000_0000)
        assert temperature is Temperature.NONE
        assert mmu.stats.demand_mappings == 1
        # Same page again: no new mapping.
        mmu.translate_data(0x9000_0008)
        assert mmu.stats.demand_mappings == 1

    def test_strict_mmu_raises_on_unmapped(self):
        mmu = MMU(PageTable(), demand_paging=False)
        with pytest.raises(SimulationError):
            mmu.translate_instruction(0x1234_0000)

    def test_translation_is_consistent_within_a_page(self):
        mmu = MMU(PageTable())
        paddr_a, _ = mmu.translate_data(0x5000)
        paddr_b, _ = mmu.translate_data(0x5FFF)
        assert paddr_b - paddr_a == 0xFFF
