"""End-to-end integration tests exercising the headline claims of the paper.

These tests run the full co-design pipeline (compiler -> OS -> MMU -> caches)
on a purpose-built workload whose hot working set slightly exceeds what SRRIP
can retain, and check the *direction* of the paper's results: TRRIP reduces L2
instruction misses and execution cycles relative to SRRIP, and the temperature
information actually flows through the PTE/MMU interface rather than being
read from the compiler directly.
"""

import pytest

from repro.core.pipeline import CoDesignPipeline, PipelineOptions
from repro.experiments.runner import BenchmarkRunner
from repro.sim.config import SimulatorConfig
from repro.workloads.spec import WorkloadSpec


@pytest.fixture(scope="module")
def marginal_spec() -> WorkloadSpec:
    """A workload tuned so hot code marginally overflows the scaled L2."""
    return WorkloadSpec(
        name="marginal",
        category="proxy",
        description="integration workload with marginal hot working set",
        hot_functions=28,
        warm_functions=12,
        cold_functions=32,
        blocks_per_hot_function=10,
        internal_cold_blocks=6,
        data_access_rate=0.24,
        data_stream_kb=48,
        data_reuse_kb=8,
        data_stream_fraction=0.30,
        eval_instructions=60_000,
        warmup_instructions=20_000,
        seed=77,
    )


@pytest.fixture(scope="module")
def sweep(marginal_spec):
    runner = BenchmarkRunner(config=SimulatorConfig.scaled())
    return runner.run_policies(
        marginal_spec, ["trrip-1", "trrip-2", "clip", "lru"]
    )


class TestHeadlineClaims:
    def test_trrip_reduces_instruction_misses_vs_srrip(self, sweep):
        baseline = sweep["srrip"]
        trrip = sweep["trrip-1"]
        assert trrip.l2_inst_misses < baseline.l2_inst_misses

    def test_trrip_improves_performance_vs_srrip(self, sweep):
        assert sweep["trrip-1"].speedup_over(sweep["srrip"]) > 0

    def test_trrip2_also_reduces_instruction_misses(self, sweep):
        assert sweep["trrip-2"].l2_inst_misses <= sweep["srrip"].l2_inst_misses

    def test_data_mpki_cost_is_bounded(self, sweep):
        """The instruction-for-data trade must stay small (paper: a few %)."""
        baseline = sweep["srrip"]
        trrip = sweep["trrip-1"]
        _, data_reduction = trrip.mpki_reduction_over(baseline)
        assert data_reduction > -30.0

    def test_selective_trrip_beats_blind_clip_on_instructions(self, sweep):
        """Section 4.7: prioritising selectively (TRRIP) beats prioritising
        every instruction line (CLIP) — allow a small tolerance."""
        trrip_inst = sweep["trrip-1"].l2_inst_misses
        clip_inst = sweep["clip"].l2_inst_misses
        assert trrip_inst <= clip_inst * 1.10

    def test_srrip_baseline_outperforms_lru(self, sweep):
        """Section 4.4: RRIP-based baselines beat LRU on these workloads."""
        assert sweep["lru"].cycles >= sweep["srrip"].cycles


class TestInterfaceFlow:
    def test_temperature_must_flow_through_the_pte_interface(self, marginal_spec):
        """If the loader drops the PTE bits, TRRIP degrades to SRRIP exactly."""
        runner = BenchmarkRunner(config=SimulatorConfig.scaled())
        untagged_options = PipelineOptions(propagate_temperature=False)
        srrip = runner.run(marginal_spec, "srrip", options=untagged_options).result
        trrip_untagged = runner.run(
            marginal_spec, "trrip-1", options=untagged_options
        ).result
        assert trrip_untagged.l2_inst_misses == srrip.l2_inst_misses
        assert trrip_untagged.cycles == pytest.approx(srrip.cycles)

    def test_pgo_layout_reduces_frontend_stalls(self, marginal_spec):
        """Figure 2: PGO improves the retire fraction of the same workload."""
        runner = BenchmarkRunner(config=SimulatorConfig.scaled())
        no_pgo = runner.run(
            marginal_spec, "srrip", options=PipelineOptions(apply_pgo=False)
        ).result
        pgo = runner.run(
            marginal_spec, "srrip", options=PipelineOptions(apply_pgo=True)
        ).result
        assert pgo.topdown.fraction("retire") > no_pgo.topdown.fraction("retire")
        assert pgo.cycles < no_pgo.cycles

    def test_hot_pages_exist_after_loading(self, marginal_spec):
        prepared = CoDesignPipeline().prepare(marginal_spec)
        assert prepared.loaded.pages_by_temperature
        from repro.common.temperature import Temperature

        assert prepared.loaded.pages_by_temperature[Temperature.HOT] >= 2
