"""Tests for the declarative Scenario/Session API and PolicySpec."""

from __future__ import annotations

import pytest

from repro.api import PolicySpec, Scenario, Session
from repro.api.scenario import build_plan
from repro.common.errors import ConfigurationError
from repro.core.pipeline import PipelineOptions
from repro.sim.config import SimulatorConfig
from repro.testing import make_session
from repro.workloads.spec import tiny_spec


# ------------------------------------------------------------------ PolicySpec
class TestPolicySpec:
    def test_parse_round_trips_through_canonical(self):
        spec = PolicySpec.parse("ship:shct_bits=3,instruction_only=false")
        assert spec.name == "ship"
        assert spec.kwargs == {"shct_bits": 3, "instruction_only": False}
        assert PolicySpec.parse(spec.canonical()) == spec

    def test_parameterless_canonical_is_the_bare_name(self):
        assert PolicySpec.of("srrip").canonical() == "srrip"

    def test_params_are_order_insensitive_and_hashable(self):
        a = PolicySpec.parse("drrip:psel_bits=8,leader_sets=16")
        b = PolicySpec.parse("drrip:leader_sets=16,psel_bits=8")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_aliases_normalise_to_canonical_names(self):
        assert PolicySpec.of("trrip").name == "trrip-1"
        assert PolicySpec.of("TRRIP2").name == "trrip-2"

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="belady-on-a-budget"):
            PolicySpec.of("belady-on-a-budget")
        with pytest.raises(ConfigurationError, match="trrip-1"):
            PolicySpec.of("belady-on-a-budget")

    def test_unknown_parameter_raises_with_valid_parameters(self):
        with pytest.raises(ConfigurationError, match="no parameter 'bogus'"):
            PolicySpec.parse("ship:bogus=1")
        with pytest.raises(ConfigurationError, match="shct_bits"):
            PolicySpec.parse("ship:bogus=1")

    def test_badly_typed_parameter_raises(self):
        with pytest.raises(ConfigurationError, match="expects int"):
            PolicySpec.parse("srrip:rrpv_bits=fast")

    def test_malformed_token_raises(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            PolicySpec.parse("ship:shct_bits")

    def test_build_instantiates_with_parameters(self):
        policy = PolicySpec.parse("ship:shct_bits=3").build(16, 4)
        assert policy.shct_bits == 3

    def test_content_hash_covers_policy_parameters(self):
        base = SimulatorConfig.scaled()
        plain = base.with_l2_policy("ship")
        via_spec = base.with_l2_policy(PolicySpec.of("ship"))
        tuned = base.with_l2_policy(PolicySpec.parse("ship:shct_bits=3"))
        tuned_kwargs = base.with_l2_policy("ship", shct_bits=3)
        assert plain.content_hash() == via_spec.content_hash()
        assert tuned.content_hash() == tuned_kwargs.content_hash()
        assert tuned.content_hash() != plain.content_hash()

    def test_with_l2_policy_validates_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown replacement"):
            SimulatorConfig.scaled().with_l2_policy("nosuch")


# -------------------------------------------------------------------- Scenario
class TestScenarioExpansion:
    def test_grid_expansion_counts(self):
        scenario = Scenario(
            benchmarks=(tiny_spec(), tiny_spec("tinybench2")),
            policies=("srrip", "lru", "trrip-1"),
        )
        requests = scenario.expand()
        assert scenario.size == len(requests) == 6
        # Benchmark-major, policy-minor order.
        assert [r.benchmark for r in requests] == ["tinybench"] * 3 + [
            "tinybench2"
        ] * 3
        assert [r.policy.canonical() for r in requests[:3]] == [
            "srrip",
            "lru",
            "trrip-1",
        ]

    def test_scalars_accepted_for_benchmarks_and_policies(self):
        scenario = Scenario(benchmarks="sqlite", policies="trrip")
        assert scenario.benchmarks == ("sqlite",)
        assert scenario.policies[0].name == "trrip-1"

    def test_empty_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="workload axis"):
            Scenario(benchmarks=(), policies="srrip")
        with pytest.raises(ConfigurationError, match="at least one policy"):
            Scenario(benchmarks="sqlite", policies=())

    def test_zero_scenarios_cannot_build_a_plan(self):
        """A 0-run plan is never what a caller meant: raise, don't no-op."""
        with pytest.raises(ConfigurationError, match="scenario axis is empty"):
            build_plan([])
        with pytest.raises(ConfigurationError, match="scenario axis is empty"):
            make_session().plan()
        with pytest.raises(ConfigurationError, match="scenario axis is empty"):
            make_session().run()

    def test_phase_overrides_rescale_the_resolved_spec(self):
        scenario = Scenario(
            benchmarks=tiny_spec(),
            warmup_instructions=500,
            measure_instructions=1500,
        )
        [request] = scenario.expand()
        assert request.spec.warmup_instructions == 500
        assert request.spec.eval_instructions == 1500

    def test_config_scaling_applied_exactly_once(self):
        import dataclasses

        config = dataclasses.replace(
            SimulatorConfig.scaled(), name="halfscale", workload_scale=0.5
        )
        [request] = Scenario(benchmarks=tiny_spec(), config=config).expand()
        assert request.spec == tiny_spec().scaled(0.5)

    def test_plan_dedups_identical_points_across_scenarios(self):
        spec = tiny_spec()
        sweep_a = Scenario(benchmarks=spec, policies=("srrip", "trrip-1"))
        sweep_b = Scenario(benchmarks=spec, policies=("srrip", "clip"))
        plan = build_plan([sweep_a, sweep_b])
        assert plan.total_runs == 4
        assert plan.unique_runs == 3  # shared srrip baseline collapses
        assert plan.deduplicated == 1
        # The duplicated request still appears at its position.
        assert [r.policy.canonical() for r in plan.requests] == [
            "srrip",
            "trrip-1",
            "srrip",
            "clip",
        ]

    def test_differing_options_or_reuse_do_not_dedup(self):
        spec = tiny_spec()
        plain = Scenario(benchmarks=spec)
        tracked = Scenario(benchmarks=spec, track_reuse=True)
        tuned = Scenario(
            benchmarks=spec, options=PipelineOptions(percentile_hot=0.5)
        )
        plan = build_plan([plain, tracked, tuned])
        assert plan.total_runs == plan.unique_runs == 3


# --------------------------------------------------------------------- Session
class TestSession:
    def test_execute_dedups_and_streams_in_plan_order(self):
        session = make_session()
        spec = tiny_spec()
        plan = session.plan(
            Scenario(benchmarks=spec, policies=("srrip", "trrip-1")),
            Scenario(benchmarks=spec, policies=("srrip", "lru")),
        )
        artifacts = session.execute(plan)
        assert len(artifacts) == plan.total_runs == 4
        assert session.simulations_run == plan.unique_runs == 3
        # Deduplicated points hand back the identical artifacts object.
        assert artifacts[0] is artifacts[2]
        # Streaming preserves (request, artifact) pairing and order.
        streamed = list(
            session.stream(Scenario(benchmarks=spec, policies=("srrip", "lru")))
        )
        assert [r.policy.canonical() for r, _ in streamed] == ["srrip", "lru"]

    def test_policy_spec_round_trips_through_the_result_store(self, tmp_path):
        policy = PolicySpec.parse("ship:shct_bits=3")
        scenario = Scenario(benchmarks=tiny_spec(), policies=policy)

        first = make_session(store_root=tmp_path)
        [a] = first.run(scenario)
        assert first.simulations_run == 1
        assert first.store.writes == 1

        second = make_session(store_root=tmp_path)
        [b] = second.run(scenario)
        assert second.simulations_run == 0, "store key missed for PolicySpec"
        assert b.result.to_dict() == a.result.to_dict()
        # A different parameterisation is a different key.
        third = make_session(store_root=tmp_path)
        third.run(Scenario(benchmarks=tiny_spec(), policies="ship"))
        assert third.simulations_run == 1

    def test_cached_replay_of_a_whole_plan_runs_zero_sims(self, tmp_path):
        scenarios = (
            Scenario(benchmarks=tiny_spec(), policies=("srrip", "trrip-1")),
            Scenario(
                benchmarks=tiny_spec(),
                policies="trrip-1",
                options=PipelineOptions(percentile_hot=0.5),
            ),
        )
        first = make_session(store_root=tmp_path)
        first.run(*scenarios)
        assert first.simulations_run == 3

        second = make_session(store_root=tmp_path)
        replayed = second.run(*scenarios)
        assert second.simulations_run == 0
        assert [a.result.to_dict() for a in replayed] == [
            a.result.to_dict() for a in first.run(*scenarios)
        ]

    def test_parallel_execution_matches_serial(self):
        spec = tiny_spec()
        scenario = Scenario(benchmarks=spec, policies=("srrip", "lru", "trrip-1"))
        serial = make_session().run(scenario)
        parallel = make_session().run(scenario, jobs=2)
        assert [a.result.to_dict() for a in serial] == [
            a.result.to_dict() for a in parallel
        ]

    def test_session_sweep_matches_run_policy_sweep(self):
        from repro.experiments.sweep import run_policy_sweep

        spec = tiny_spec()
        via_session = make_session().sweep(
            benchmarks=[spec], policies=["trrip-1"]
        )
        via_wrapper = run_policy_sweep(benchmarks=[spec], policies=["trrip-1"])
        assert via_session.benchmarks == via_wrapper.benchmarks
        assert via_session.policies == via_wrapper.policies
        for benchmark in via_session.benchmarks:
            for policy in ("srrip", "trrip-1"):
                assert (
                    via_session.result(benchmark, policy).to_dict()
                    == via_wrapper.result(benchmark, policy).to_dict()
                )

    def test_run_one_resolves_names_and_specs(self):
        session = make_session()
        by_spec = session.run_one(tiny_spec(), "trrip")
        assert by_spec.result.benchmark == "tinybench"
        assert by_spec.result.policy == "trrip-1"
