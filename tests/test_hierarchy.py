"""Unit tests for the cache hierarchy (L1s, L2, SLC, DRAM)."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, CacheLevelConfig, HierarchyConfig
from repro.common.errors import ConfigurationError
from repro.common.request import HitLevel
from tests.conftest import data_load, instruction


def tiny_hierarchy(l2_policy: str = "srrip", slc_exclusive: bool = True) -> CacheHierarchy:
    config = HierarchyConfig(
        l1i=CacheLevelConfig(size_bytes=512, associativity=2, latency=3, policy="lru"),
        l1d=CacheLevelConfig(size_bytes=512, associativity=2, latency=3, policy="lru"),
        l2=CacheLevelConfig(size_bytes=2048, associativity=4, latency=12, policy=l2_policy),
        slc=CacheLevelConfig(size_bytes=4096, associativity=4, latency=30, policy="lru"),
        dram_latency=400,
        slc_exclusive=slc_exclusive,
    )
    return CacheHierarchy(config)


class TestAccessPath:
    def test_cold_miss_goes_to_dram(self):
        hierarchy = tiny_hierarchy()
        result = hierarchy.access_instruction(instruction(0x1000))
        assert result.hit_level is HitLevel.DRAM
        assert result.latency == 3 + 12 + 30 + 400

    def test_second_access_hits_l1(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_instruction(instruction(0x1000))
        result = hierarchy.access_instruction(instruction(0x1000))
        assert result.hit_level is HitLevel.L1
        assert result.latency == 3

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_instruction(instruction(0x1000))
        # Evict 0x1000 from the tiny L1I by filling its set (same L1I set).
        l1_stride = hierarchy.l1i.num_sets * 64
        hierarchy.access_instruction(instruction(0x1000 + l1_stride))
        hierarchy.access_instruction(instruction(0x1000 + 2 * l1_stride))
        result = hierarchy.access_instruction(instruction(0x1000))
        assert result.hit_level is HitLevel.L2

    def test_data_and_instruction_paths_use_separate_l1s(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_instruction(instruction(0x1000))
        result = hierarchy.access_data(data_load(0x1000))
        assert result.hit_level is not HitLevel.L1  # not in the L1D
        assert hierarchy.l1d.contains(0x1000)

    def test_wrong_path_type_rejected(self):
        hierarchy = tiny_hierarchy()
        with pytest.raises(ValueError):
            hierarchy.access_instruction(data_load(0x0))
        with pytest.raises(ValueError):
            hierarchy.access_data(instruction(0x0))


class TestInclusionAndExclusion:
    def test_l2_eviction_back_invalidates_l1(self):
        hierarchy = tiny_hierarchy()
        target = 0x1000
        hierarchy.access_instruction(instruction(target))
        assert hierarchy.l1i.contains(target)
        # Thrash the L2 set containing target with data lines until evicted.
        l2_stride = hierarchy.l2.num_sets * 64
        addr = target + l2_stride
        while hierarchy.l2.contains(target):
            hierarchy.access_data(data_load(addr))
            addr += l2_stride
        assert not hierarchy.l1i.contains(target)

    def test_l2_victims_are_installed_in_exclusive_slc(self):
        hierarchy = tiny_hierarchy()
        target = 0x1000
        hierarchy.access_instruction(instruction(target))
        l2_stride = hierarchy.l2.num_sets * 64
        addr = target + l2_stride
        while hierarchy.l2.contains(target):
            hierarchy.access_data(data_load(addr))
            addr += l2_stride
        assert hierarchy.slc.contains(target)

    def test_slc_hit_promotes_back_to_l2_and_invalidates_slc_copy(self):
        hierarchy = tiny_hierarchy()
        target = 0x1000
        hierarchy.access_instruction(instruction(target))
        l2_stride = hierarchy.l2.num_sets * 64
        addr = target + l2_stride
        while hierarchy.l2.contains(target):
            hierarchy.access_data(data_load(addr))
            addr += l2_stride
        result = hierarchy.access_instruction(instruction(target))
        assert result.hit_level is HitLevel.SLC
        assert hierarchy.l2.contains(target)
        assert not hierarchy.slc.contains(target)

    def test_non_exclusive_slc_fills_on_dram_access(self):
        hierarchy = tiny_hierarchy(slc_exclusive=False)
        hierarchy.access_instruction(instruction(0x1000))
        assert hierarchy.slc.contains(0x1000)


class TestStatsAndObserver:
    def test_l2_miss_accounting_by_stream(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_instruction(instruction(0x1000))
        hierarchy.access_data(data_load(0x8000))
        assert hierarchy.stats.l2_inst_misses == 1
        assert hierarchy.stats.l2_data_misses == 1
        assert hierarchy.stats.dram_accesses == 2

    def test_mpki_helpers(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_instruction(instruction(0x1000))
        assert hierarchy.stats.l2_inst_mpki(1000) == pytest.approx(1.0)
        assert hierarchy.stats.l2_data_mpki(1000) == 0.0

    def test_observer_sees_demand_l2_accesses(self):
        hierarchy = tiny_hierarchy()
        seen = []
        hierarchy.l2_access_observer = lambda request, hit: seen.append(
            (request.address, hit)
        )
        hierarchy.access_instruction(instruction(0x1000))  # L1 miss -> L2 access
        hierarchy.access_instruction(instruction(0x1000))  # L1 hit -> no L2 access
        assert len(seen) == 1
        assert seen[0] == (0x1000, False)

    def test_reset_stats_keeps_contents(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_instruction(instruction(0x1000))
        hierarchy.reset_stats()
        assert hierarchy.stats.instruction_fetches == 0
        assert hierarchy.l2.contains(0x1000)

    def test_full_reset_clears_contents(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_instruction(instruction(0x1000))
        hierarchy.reset()
        assert not hierarchy.l2.contains(0x1000)


class TestValidation:
    def test_invalid_level_config_rejected(self):
        config = HierarchyConfig(
            l1i=CacheLevelConfig(size_bytes=0, associativity=2, latency=3),
            l1d=CacheLevelConfig(size_bytes=512, associativity=2, latency=3),
            l2=CacheLevelConfig(size_bytes=2048, associativity=4, latency=12),
            slc=CacheLevelConfig(size_bytes=4096, associativity=4, latency=30),
        )
        with pytest.raises(ConfigurationError):
            CacheHierarchy(config)
