"""Tests for the central experiment registry (catalog + cached replays)."""

from __future__ import annotations

import pytest

from repro.api.session import Session
from repro.experiments.registry import (
    REGISTRY,
    ExperimentContext,
    experiment_names,
    get_experiment,
)
from repro.sim.config import SimulatorConfig
from repro.testing import make_store
from repro.workloads.spec import tiny_spec

#: Every artifact of the paper the repository reproduces must be registered.
EXPECTED_NAMES = {
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure1",
    "figure2",
    "figure3",
    "figure6",
    "figure7",
    "figure8",
    "figure9a",
    "figure9b",
    "ablation-page-size",
    "ablation-kill-switch",
    "interference",
}

SIMULATING = sorted(name for name, e in REGISTRY.items() if e.simulates)
STATIC = sorted(name for name, e in REGISTRY.items() if not e.simulates)


def make_context(store_root=None, refresh=False) -> ExperimentContext:
    config = SimulatorConfig.scaled()
    session = Session(config=config, store=make_store(store_root, refresh=refresh))
    return ExperimentContext(
        config=config,
        session=session,
        benchmarks=[tiny_spec()],
    )


class TestCatalog:
    def test_catalog_is_complete(self):
        assert set(experiment_names()) == EXPECTED_NAMES

    def test_get_experiment_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="figure3"):
            get_experiment("figure33")

    def test_entries_have_artifacts_and_descriptions(self):
        for experiment in REGISTRY.values():
            assert experiment.artifact
            assert experiment.description
            assert callable(experiment.run)
            assert callable(experiment.format)


class TestStaticExperiments:
    @pytest.mark.parametrize("name", STATIC)
    def test_runs_and_formats(self, name):
        experiment = get_experiment(name)
        result = experiment.run(make_context())
        text = experiment.format(result)
        assert text.strip()


class TestSimulatedExperiments:
    """Acceptance: every experiment runs, and an identical second invocation
    is served entirely from the result store (zero new simulations)."""

    @pytest.mark.parametrize("name", SIMULATING)
    def test_runs_then_replays_from_store(self, name, tmp_path):
        experiment = get_experiment(name)

        first = make_context(tmp_path)
        text_first = experiment.format(experiment.run(first))
        assert text_first.strip()
        assert first.store.misses > 0  # something was actually simulated
        assert first.store.writes == first.store.misses

        second = make_context(tmp_path)
        text_second = experiment.format(experiment.run(second))
        assert second.store.misses == 0, f"{name} re-simulated on cached path"
        assert second.session.simulations_run == 0
        assert text_second == text_first
