"""Unit tests for the set-associative cache model."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.basic import LRUPolicy
from repro.common.errors import ConfigurationError
from repro.common.temperature import Temperature
from tests.conftest import data_store, instruction


class TestGeometry:
    def test_sets_derived_from_size(self, small_lru_cache):
        assert small_lru_cache.num_sets == 4
        assert small_lru_cache.associativity == 2

    def test_rejects_mismatched_policy_geometry(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache("bad", 1024, 4, LRUPolicy(2, 2))

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache("bad", 3 * 64 * 2, 2, LRUPolicy(3, 2))

    def test_set_index_and_tag_are_consistent(self, small_lru_cache):
        cache = small_lru_cache
        address = 0x12345
        index = cache.set_index_of(address)
        tag = cache.tag_of(address)
        assert 0 <= index < cache.num_sets
        reconstructed_line = (tag * cache.num_sets + index) * cache.line_size
        assert reconstructed_line == address - (address % cache.line_size)


class TestAccessAndFill:
    def test_miss_then_fill_then_hit(self, small_lru_cache):
        cache = small_lru_cache
        request = instruction(0x1000)
        assert not cache.access(request)
        cache.fill(request)
        assert cache.access(request)

    def test_access_does_not_allocate(self, small_lru_cache):
        cache = small_lru_cache
        cache.access(instruction(0x1000))
        assert not cache.contains(0x1000)

    def test_fill_evicts_when_set_full(self, small_lru_cache):
        cache = small_lru_cache
        base = 0x0
        stride = cache.num_sets * cache.line_size  # same set every time
        victims = []
        for i in range(3):
            victim = cache.fill(instruction(base + i * stride))
            victims.append(victim)
        assert victims[0] is None and victims[1] is None
        assert victims[2] is not None
        assert victims[2].address == base

    def test_refilling_resident_line_does_not_evict(self, small_lru_cache):
        cache = small_lru_cache
        cache.fill(instruction(0x1000))
        assert cache.fill(instruction(0x1000)) is None
        assert cache.stats.evictions == 0

    def test_fill_records_block_metadata(self, small_lru_cache):
        cache = small_lru_cache
        cache.fill(instruction(0x2000, Temperature.HOT, pc=0x2000))
        way = cache.probe(0x2000)
        block = cache.blocks_in_set(cache.set_index_of(0x2000))[way]
        assert block.is_instruction
        assert block.temperature is Temperature.HOT

    def test_store_hit_marks_dirty_and_writeback_counted(self, small_lru_cache):
        cache = small_lru_cache
        cache.fill(data_store(0x3000))
        stride = cache.num_sets * cache.line_size
        cache.fill(data_store(0x3000 + stride))
        cache.fill(data_store(0x3000 + 2 * stride))  # evicts the dirty line
        assert cache.stats.writebacks >= 1

    def test_invalidate_removes_line(self, small_lru_cache):
        cache = small_lru_cache
        cache.fill(instruction(0x1000))
        assert cache.invalidate(0x1000)
        assert not cache.contains(0x1000)
        assert not cache.invalidate(0x1000)

    def test_reset_clears_contents_and_stats(self, small_lru_cache):
        cache = small_lru_cache
        cache.fill(instruction(0x1000))
        cache.access(instruction(0x1000))
        cache.reset()
        assert not cache.contains(0x1000)
        assert cache.stats.demand_accesses == 0


class TestStats:
    def test_demand_and_prefetch_streams_counted_separately(self, small_lru_cache):
        cache = small_lru_cache
        cache.access(instruction(0x1000))
        cache.access(instruction(0x1000, is_prefetch=True))
        assert cache.stats.demand_accesses == 1
        assert cache.stats.prefetch_accesses == 1

    def test_instruction_and_data_misses_split(self, small_srrip_cache):
        cache = small_srrip_cache
        cache.access(instruction(0x1000))
        cache.access(data_store(0x2000))
        assert cache.stats.inst_misses == 1
        assert cache.stats.data_misses == 1
        assert cache.stats.demand_misses == 2

    def test_hit_rate_and_mpki(self, small_srrip_cache):
        cache = small_srrip_cache
        cache.fill(instruction(0x1000))
        cache.access(instruction(0x1000))
        cache.access(instruction(0x9000))
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.miss_rate == pytest.approx(0.5)
        assert cache.stats.mpki(1000) == pytest.approx(1.0)
        assert cache.stats.mpki(0) == 0.0
