"""Benchmark regenerating Figure 8 (sensitivity to the compiler hot threshold)."""

from repro.common.temperature import Temperature
from repro.experiments import format_figure8, run_figure8


def test_bench_figure8_hot_threshold_sensitivity(
    benchmark, bench_workloads_small, bench_session
):
    thresholds = (0.10, 0.99, 1.0)
    points = benchmark.pedantic(
        run_figure8,
        kwargs={
            "benchmarks": bench_workloads_small,
            "thresholds": thresholds,
            "session": bench_session,
        },
        rounds=1,
        iterations=1,
    )
    print("\n[Figure 8] Hot-threshold sensitivity (text split and speedup)\n")
    print(format_figure8(points))
    assert len(points) == len(bench_workloads_small) * len(thresholds)
    # Figure 8a shape: the hot text fraction grows monotonically with the
    # threshold for every benchmark.
    by_benchmark: dict[str, list] = {}
    for point in points:
        by_benchmark.setdefault(point.benchmark, []).append(point)
    for series in by_benchmark.values():
        series.sort(key=lambda p: p.percentile_hot)
        hot_fractions = [p.text_fractions[Temperature.HOT] for p in series]
        assert hot_fractions == sorted(hot_fractions)
