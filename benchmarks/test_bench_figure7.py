"""Benchmark regenerating Figure 7 (coverage of costly instruction misses)."""

from repro.experiments import format_figure7, run_figure7


def test_bench_figure7_costly_miss_coverage(benchmark, bench_workloads, bench_session):
    rows = benchmark.pedantic(
        run_figure7,
        kwargs={"benchmarks": bench_workloads, "session": bench_session},
        rounds=1,
        iterations=1,
    )
    print("\n[Figure 7] Coverage of costly instruction misses\n")
    print(format_figure7(rows))
    assert len(rows) == len(bench_workloads)
    for row in rows:
        for percentile, value in row.excluding_external.coverage_percent.items():
            # Figure 7b: once external code is excluded, coverage never drops
            # below the including-external view.
            assert value >= row.including_external.coverage_percent[percentile] - 1e-9
