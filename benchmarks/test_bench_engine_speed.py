"""Engine throughput benchmark: fast packed-trace engine vs the seed loop.

Measures simulated instructions per second for the production engine
(column-oriented :class:`PackedTrace` replayed through ``CoreModel.run_packed``
with O(1) tag-index caches) against the *seed-equivalent baseline loop*
vendored in :mod:`seed_engine` (record-at-a-time replay over linear-probe
caches, result objects at every level — the engine this repository started
with).

Four trace shapes are measured:

* ``hot_loop``   — an L1-resident dispatch-bound inner loop; memory system
  mostly quiet, so the measurement isolates the *engine* overhead per
  instruction (the thing the fast engine rebuilds).  This is the headline
  number and carries the ≥5× assertion.
* ``resident``   — L1-resident code and data with a realistic memory-operand
  mix.
* ``mixed``      — working set straddling the L2.
* ``streaming``  — data streaming through the whole hierarchy (model-bound;
  both engines spend their time in fills and replacement policies).

Both engines are driven interleaved, best-of-N, in this one process, so the
reported ratios are robust against machine noise.  Results are written to
``BENCH_engine.json`` at the repository root so future PRs can track the
performance trajectory.

As a sanity check the two engines must also produce bit-identical simulation
results for every shape — the baseline replica models exactly the same
hardware.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.common.trace import (
    FLAG_BRANCH,
    FLAG_MEM,
    FLAG_STORE,
    FLAG_TAKEN,
    PackedTrace,
    TraceRecord,
)
from repro.sim.config import SimulatorConfig
from repro.sim.simulator import SystemSimulator

from seed_engine import build_seed_core

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_engine.json"

INSTRUCTIONS = 120_000
ROUNDS = 3
REQUIRED_SPEEDUP = 5.0

#: (code lines, memory-operand rate, branch every N instructions)
SHAPES = {
    "hot_loop": (32, 0.0, 32),
    "resident": (64, 0.2, 16),
    "mixed": (512, 0.3, 16),
    "streaming": (4096, 0.35, 16),
}


def build_traces(shape: str) -> tuple[list[TraceRecord], PackedTrace]:
    """A synthetic trace in both representations (identical instructions)."""
    code_lines, mem_rate, branch_every = SHAPES[shape]
    rng = random.Random(42)
    records: list[TraceRecord] = []
    packed = PackedTrace()
    code_base, data_base = 0x10000, 0x800000
    total_slots = code_lines * 16
    data_lines = 48 if shape in ("hot_loop", "resident") else code_lines * 4
    for i in range(INSTRUCTIONS):
        slot = i % total_slots
        pc = code_base + slot * 4
        is_branch = (slot % branch_every) == branch_every - 1
        taken = is_branch and (slot == total_slots - 1 or rng.random() < 0.1)
        target = code_base if slot == total_slots - 1 else pc + 8
        has_mem = mem_rate > 0 and rng.random() < mem_rate
        if shape == "streaming":
            mem = data_base + ((i * 64) % (data_lines * 64)) if has_mem else 0
        else:
            mem = data_base + rng.randrange(data_lines) * 64 if has_mem else 0
        store = has_mem and rng.random() < 0.3
        flags = (
            (FLAG_BRANCH if is_branch else 0)
            | (FLAG_TAKEN if taken else 0)
            | (FLAG_MEM if has_mem else 0)
            | (FLAG_STORE if store else 0)
        )
        packed.append_raw(pc, 4, flags, target if is_branch else 0, mem, 0, 0)
        records.append(
            TraceRecord(
                pc=pc,
                is_branch=is_branch,
                branch_taken=taken,
                branch_target=target if is_branch else 0,
                mem_address=mem if has_mem else None,
                is_store=store,
            )
        )
    return records, packed


def measure_shape(shape: str) -> dict:
    """Interleaved best-of-N measurement of both engines on one shape."""
    records, packed = build_traces(shape)
    config = SimulatorConfig.scaled()
    best_seed = best_fast = float("inf")
    seed_result = fast_result = None
    for _ in range(ROUNDS):
        core = build_seed_core(config)
        core.run(records)  # warm-up window
        core.hierarchy.reset_stats()
        start = time.perf_counter()
        seed_result = core.run(records)
        best_seed = min(best_seed, time.perf_counter() - start)

        simulator = SystemSimulator(config, benchmark=shape)
        simulator.warm_up(packed)
        start = time.perf_counter()
        fast_result = simulator.run(packed)
        best_fast = min(best_fast, time.perf_counter() - start)

    # The baseline replica models the same hardware: identical results.
    assert seed_result.cycles == fast_result.cycles
    assert seed_result.topdown == fast_result.topdown

    seed_ips = INSTRUCTIONS / best_seed
    fast_ips = INSTRUCTIONS / best_fast
    return {
        "instructions": INSTRUCTIONS,
        "seed_ips": round(seed_ips),
        "fast_ips": round(fast_ips),
        "speedup": round(best_seed / best_fast, 2),
    }


def test_bench_engine_speed(benchmark):
    results = benchmark.pedantic(
        lambda: {shape: measure_shape(shape) for shape in SHAPES},
        rounds=1,
        iterations=1,
    )

    print("\n[Engine speed] simulated instructions per second, seed vs fast\n")
    print(f"{'shape':<12} {'seed ips':>12} {'fast ips':>12} {'speedup':>9}")
    for shape, row in results.items():
        print(
            f"{shape:<12} {row['seed_ips']:>12,} {row['fast_ips']:>12,} "
            f"{row['speedup']:>8.2f}x"
        )

    artifact = {
        "unit": "simulated instructions per second",
        "baseline": "seed-equivalent record loop (benchmarks/seed_engine.py)",
        "engine": "PackedTrace + CoreModel.run_packed",
        "shapes": results,
        "peak_speedup": max(row["speedup"] for row in results.values()),
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    peak = artifact["peak_speedup"]
    assert peak >= REQUIRED_SPEEDUP, (
        f"engine-bound peak speedup {peak:.2f}x fell below the required "
        f"{REQUIRED_SPEEDUP:.1f}x (see BENCH_engine.json for the full table)"
    )
