"""Engine throughput benchmark: fast packed-trace engine vs the seed loop.

The measurement logic lives in :mod:`repro.experiments.bench` (shared with
the ``repro bench`` CLI subcommand); this harness runs the full-size shapes,
prints the table, writes the ``BENCH_engine.json`` artifact (never committed
— see ``BENCH_baseline.json`` for the pinned floors) and asserts the floors.

Four trace shapes are measured:

* ``hot_loop``   — an L1-resident dispatch-bound inner loop; memory system
  mostly quiet, so the measurement isolates the *engine* overhead per
  instruction.
* ``resident``   — L1-resident code and data with a realistic memory-operand
  mix.
* ``mixed``      — working set straddling the L2.
* ``streaming``  — data streaming through the whole hierarchy (model-bound;
  both engines spend their time in fills and replacement policies).

Plus the lockstep figure-sweep shape: one catalog workload replayed under
four L2 policies, lockstep vs N independent runs.

Both engines are driven interleaved, best-of-N, in this one process, so the
reported ratios are robust against machine noise; as a sanity check the two
engines must produce bit-identical simulation results for every shape (the
baseline replica models exactly the same hardware), which the shared
measurement code asserts.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.bench import (
    check_floors,
    format_report,
    load_floors,
    run_engine_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_engine.json"


def test_bench_engine_speed(benchmark):
    results = benchmark.pedantic(run_engine_bench, rounds=1, iterations=1)

    print()
    print(format_report(results))
    ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")

    violations = check_floors(results, load_floors())
    assert not violations, "; ".join(violations) + (
        " (see BENCH_engine.json for the full table, BENCH_baseline.json "
        "for the pinned floors)"
    )
