"""Benchmarks regenerating Figures 1 and 2 (Top-Down breakdowns)."""

from repro.experiments import format_topdown_rows, run_figure1, run_figure2


def test_bench_figure1_system_components_topdown(benchmark, bench_session):
    rows = benchmark.pedantic(
        run_figure1, kwargs={"session": bench_session}, rounds=1, iterations=1
    )
    print("\n[Figure 1] Top-Down of mobile system components (PGO)\n")
    print(format_topdown_rows(rows))
    assert len(rows) == 5
    # The motivation: system components stay frontend-bound even with PGO.
    assert all(row.frontend_bound > 0.15 for row in rows)


def test_bench_figure2_proxy_topdown_pgo_vs_nonpgo(
    benchmark, bench_workloads_small, bench_session
):
    rows = benchmark.pedantic(
        run_figure2,
        kwargs={"benchmarks": bench_workloads_small, "session": bench_session},
        rounds=1,
        iterations=1,
    )
    print("\n[Figure 2] Top-Down of proxies, non-PGO vs PGO (*)\n")
    print(format_topdown_rows(rows))
    assert len(rows) == 2 * len(bench_workloads_small)
    # PGO should raise the retire fraction for at least some benchmarks
    # (occasional degradations are expected and discussed in Section 2.3).
    improved = 0
    for i in range(0, len(rows), 2):
        no_pgo, pgo = rows[i], rows[i + 1]
        improved += pgo.fractions["retire"] >= no_pgo.fractions["retire"]
    assert improved >= 1
