"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
*scaled* simulator configuration.  To keep a full ``pytest benchmarks/
--benchmark-only`` run in the minutes range, the simulation-heavy figures use
a representative subset of the ten proxy benchmarks by default; pass
``--bench-all-workloads`` to sweep all of them (as `EXPERIMENTS.md` documents).

Store/config/session construction is shared with ``tests/conftest.py``
through :mod:`repro.testing`.
"""

from __future__ import annotations

import pytest

#: Representative subset used by the heavier sweeps.
DEFAULT_SUBSET = ("abseil", "clang", "omnetpp", "rapidjson", "sqlite")
SMALL_SUBSET = ("clang", "sqlite", "rapidjson")


def pytest_addoption(parser):
    parser.addoption(
        "--bench-all-workloads",
        action="store_true",
        default=False,
        help="Run the benchmark harness over all ten proxy benchmarks.",
    )
    parser.addoption(
        "--bench-store",
        metavar="DIR",
        default=None,
        help="Read/write simulation results through a persistent result "
        "store (see repro.experiments.store).  Off by default so reported "
        "timings always measure real simulations.",
    )


@pytest.fixture(scope="session")
def bench_workloads(request):
    """Benchmark names the heavy sweeps should cover."""
    from repro.workloads.spec import PROXY_BENCHMARK_NAMES

    if request.config.getoption("--bench-all-workloads"):
        return PROXY_BENCHMARK_NAMES
    return DEFAULT_SUBSET


@pytest.fixture(scope="session")
def bench_workloads_small(request):
    from repro.workloads.spec import PROXY_BENCHMARK_NAMES

    if request.config.getoption("--bench-all-workloads"):
        return PROXY_BENCHMARK_NAMES
    return SMALL_SUBSET


@pytest.fixture(scope="session")
def bench_store(request):
    """A shared ResultStore when --bench-store is given, else None."""
    from repro.testing import make_store

    return make_store(request.config.getoption("--bench-store"))


@pytest.fixture(scope="session")
def bench_session(bench_store):
    """A store-backed session shared by the figure benchmarks (or None).

    ``None`` keeps the default behaviour — every figure builds its own
    session and every timing measures real simulations.
    """
    if bench_store is None:
        return None
    from repro.api.session import Session
    from repro.sim.config import SimulatorConfig

    return Session(config=SimulatorConfig.scaled(), store=bench_store)
