"""Thin shim: the seed-equivalent baseline engine lives in the package now
(:mod:`repro.experiments.seed_engine`) so the ``repro bench`` CLI can measure
against it without the benchmarks directory on ``sys.path``; this module
keeps the historical ``import seed_engine`` working for the pytest harness.
"""

from repro.experiments.seed_engine import (  # noqa: F401
    SeedCache,
    SeedCacheStats,
    SeedHierarchy,
    SeedLRUPolicy,
    SeedStridePrefetcher,
    build_seed_core,
)
