"""Benchmark regenerating Figure 3 (reuse-distance distribution of hot lines)."""

from repro.experiments import format_figure3, run_figure3


def test_bench_figure3_hot_line_reuse_distance(benchmark, bench_workloads, bench_session):
    rows = benchmark.pedantic(
        run_figure3,
        kwargs={"benchmarks": bench_workloads, "session": bench_session},
        rounds=1,
        iterations=1,
    )
    print("\n[Figure 3] Reuse distance of hot lines in the L2 (base and ~)\n")
    print(format_figure3(rows))
    assert len(rows) == len(bench_workloads)
    for row in rows:
        if row.base_accesses == 0:
            continue
        # The hot-only (~) view never shows longer distances than the base
        # view: removing non-hot lines can only shorten reuse distances.
        assert (
            row.hot_only.get("16+", 0.0) <= row.base.get("16+", 0.0) + 1e-9
            or row.hot_only_accesses == 0
        )
