"""Benchmark trace replay against regeneration.

Trace capture exists to make the workload axis cheap: after the first run of
a spec, every later session replays the packed columns from disk instead of
re-walking the synthetic generator.  This benchmark times the two paths for
one full-size proxy workload (same prepared binary, same pipeline options)
and asserts replay actually wins — if a format change ever made replay
slower than regeneration, the archive would be pure overhead and this fails.
"""

from __future__ import annotations

import time

from repro.core.pipeline import CoDesignPipeline, PipelineOptions
from repro.workloads.capture import TraceArchive
from repro.workloads.spec import InputSet, get_spec

ROUNDS = 3


def _generate(prepared):
    generator = prepared.trace_generator(InputSet.EVALUATION)
    warmup = generator.take_packed(prepared.spec.warmup_instructions)
    measured = generator.take_packed(prepared.spec.eval_instructions)
    return warmup, measured


def _best_of(rounds, fn):
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_trace_replay_vs_regeneration(benchmark, tmp_path):
    spec = get_spec("sqlite")
    prepared = CoDesignPipeline(PipelineOptions()).prepare(spec)
    archive = TraceArchive(tmp_path)

    generate_s, (warmup, measured) = _best_of(
        ROUNDS, lambda: _generate(prepared)
    )
    archive.save(spec, PipelineOptions(), warmup, measured)

    def replay():
        pair = archive.load(spec, PipelineOptions())
        assert pair is not None
        return pair

    replayed_warmup, replayed_measured = benchmark.pedantic(
        replay, rounds=ROUNDS, iterations=1
    )
    replay_s, _ = _best_of(ROUNDS, replay)

    instructions = len(warmup) + len(measured)
    print(
        f"\n[trace capture] {spec.name}: {instructions} instructions, "
        f"generate {generate_s * 1e3:.1f} ms, replay {replay_s * 1e3:.1f} ms, "
        f"speedup {generate_s / replay_s:.1f}x"
    )

    # Replay must be bit-identical and faster than regeneration.
    assert replayed_measured.pc.tobytes() == measured.pc.tobytes()
    assert replayed_warmup.flags.tobytes() == warmup.flags.tobytes()
    assert replay_s < generate_s
