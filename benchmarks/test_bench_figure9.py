"""Benchmarks regenerating Figure 9 (cache size and associativity sensitivity)."""

from repro.experiments import (
    format_figure9a,
    format_figure9b,
    run_figure9a,
    run_figure9b,
)


def test_bench_figure9a_cache_size_sensitivity(
    benchmark, bench_workloads_small, bench_session
):
    points = benchmark.pedantic(
        run_figure9a,
        kwargs={
            "benchmarks": bench_workloads_small,
            "policies": ("trrip-1", "clip"),
            "session": bench_session,
        },
        rounds=1,
        iterations=1,
    )
    print("\n[Figure 9a] L2 size sensitivity (geomean speedup over SRRIP)\n")
    print(format_figure9a(points))
    trrip = sorted(
        (p for p in points if p.policy == "trrip-1"), key=lambda p: p.l2_size_bytes
    )
    # Larger caches leave less headroom for replacement optimisation: the gain
    # at the largest L2 must not exceed the gain at the smallest L2.
    assert trrip[-1].geomean_speedup <= trrip[0].geomean_speedup + 0.01


def test_bench_figure9b_associativity_sensitivity(
    benchmark, bench_workloads_small, bench_session
):
    points = benchmark.pedantic(
        run_figure9b,
        kwargs={"benchmarks": bench_workloads_small, "session": bench_session},
        rounds=1,
        iterations=1,
    )
    print("\n[Figure 9b] Associativity sensitivity of TRRIP-1\n")
    print(format_figure9b(points))
    assert {p.associativity for p in points} == {4, 8, 16}
