"""Benchmarks regenerating Tables 1, 2, 4 and 5 (configuration/static tables)."""

from repro.experiments import (
    format_table1,
    format_table2,
    format_table4,
    format_table5,
    run_table1,
    run_table2,
    run_table4,
    run_table5,
)


def test_bench_table1_simulator_configuration(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print("\n[Table 1] Simulator configuration\n" + format_table1(rows))
    assert len(rows) == 7


def test_bench_table2_benchmark_inputs(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    print("\n[Table 2] Benchmarks and inputs\n" + format_table2(rows))
    assert len(rows) == 10


def test_bench_table4_power_and_area(benchmark):
    reports = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    print("\n[Table 4] Static power and area overheads\n" + format_table4(reports))
    by_name = {r.mechanism: r for r in reports}
    assert by_name["ship"].area_percent > by_name["emissary"].area_percent
    assert by_name["trrip"].area_percent == 0.0


def test_bench_table5_pages_and_binary_size(benchmark):
    rows = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    print("\n[Table 5] Pages used (hot/warm) and binary size\n" + format_table5(rows))
    assert len(rows) == 10
    for row in rows:
        assert row.pages_4k[0] >= row.pages_16k[0] >= row.pages_2m[0] >= 1
