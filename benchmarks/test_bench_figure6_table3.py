"""Benchmarks regenerating Figure 6 (speedups) and Table 3 (MPKI reductions).

Both views come from the same (benchmark x policy) sweep; the sweep is run
once and shared between the two benchmark entries.
"""

from repro.experiments import format_figure6, format_table3, run_figure6

_CACHE: dict = {}


def _sweep(benchmarks, session=None):
    key = tuple(benchmarks)
    if key not in _CACHE:
        _CACHE[key] = run_figure6(benchmarks=benchmarks, session=session)
    return _CACHE[key]


def test_bench_figure6_speedups(benchmark, bench_workloads, bench_session):
    sweep = benchmark.pedantic(
        _sweep, args=(bench_workloads, bench_session), rounds=1, iterations=1
    )
    print("\n[Figure 6] Speedup (%) over SRRIP\n" + format_figure6(sweep))
    # Headline shape: TRRIP-1 delivers the best geomean speedup of the
    # evaluated mechanisms and it is positive.
    trrip_speedup = sweep.geomean_speedup("trrip-1")
    assert trrip_speedup > 0
    # Allow half a percentage point of tolerance on benchmark subsets.
    for policy in ("lru", "ship", "emissary", "clip", "drrip"):
        assert trrip_speedup >= sweep.geomean_speedup(policy) - 0.005


def test_bench_table3_mpki_reductions(benchmark, bench_workloads, bench_session):
    sweep = benchmark.pedantic(
        _sweep, args=(bench_workloads, bench_session), rounds=1, iterations=1
    )
    print("\n[Table 3] L2 MPKI and reductions vs SRRIP\n" + format_table3(sweep))
    # Headline shape: TRRIP reduces instruction MPKI the most among the
    # evaluated policies, with only a small data MPKI penalty.
    trrip_inst = sweep.geomean_inst_reduction("trrip-1")
    assert trrip_inst > 0
    for policy in ("lru", "brrip", "drrip", "ship", "emissary"):
        assert trrip_inst >= sweep.geomean_inst_reduction(policy)
    assert sweep.geomean_data_reduction("trrip-1") > -30.0
