"""Shared helpers for the test suite and the benchmark harness.

``tests/conftest.py`` and ``benchmarks/conftest.py`` used to duplicate the
request constructors and store/config/session builders; both now import
them from here.  Everything in this module is plain library code (no pytest
dependency), so examples and ad-hoc scripts can reuse it too.

This module is also the public face of the **fault-injection harness**: the
engine itself only depends on the import-light implementation in
:mod:`repro.common.faults` (the store cannot import this module without a
cycle), and the names tests care about — :class:`FaultPlan`,
:func:`fire_point`, :data:`REPRO_FAULTS_ENV`, :func:`corrupt_file` — are
re-exported here.

It also hosts the **differential-test fixtures** shared by the behavioural
equivalence suites: the policy × workload matrix
(:func:`equivalence_policy_names`, :func:`equivalence_matrix`) that both
``tests/test_flat_equivalence.py`` and the scalar-vs-vector harness
(``tests/test_vector_equivalence.py``) iterate, and the seeded fuzz-trace
generators (:func:`fuzz_trace`, :func:`aliasing_trace`) the property tests
replay through both replay engines.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Optional

from repro.api.session import Session
from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.basic import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.common.faults import (
    ENV_VAR as REPRO_FAULTS_ENV,
)
from repro.common.faults import (
    KILL_EXIT_CODE,
    FaultDirective,
    FaultPlan,
    active_plan,
    corrupt_file,
    fire_point,
    reset_fault_counters,
)
from repro.common.request import AccessType, MemoryRequest
from repro.common.temperature import Temperature
from repro.common.trace import (
    FLAG_BRANCH,
    FLAG_DEPEND,
    FLAG_ISSUE,
    FLAG_MEM,
    FLAG_STORE,
    FLAG_TAKEN,
    PackedTrace,
)
from repro.experiments.store import ResultStore
from repro.sim.config import SimulatorConfig

__all__ = [
    "AccessType",
    "FaultDirective",
    "FaultPlan",
    "KILL_EXIT_CODE",
    "MemoryRequest",
    "REPRO_FAULTS_ENV",
    "Temperature",
    "active_plan",
    "aliasing_trace",
    "corrupt_file",
    "damage_store_entry",
    "data_load",
    "data_store",
    "equivalence_matrix",
    "equivalence_policy_names",
    "family_trace_pair",
    "fire_point",
    "fuzz_trace",
    "instruction",
    "make_request",
    "make_session",
    "make_store",
    "read_quarantined_entry",
    "reset_fault_counters",
    "small_lru_cache",
    "small_srrip_cache",
    "wait_until",
    "workload_family_names",
]


# ------------------------------------------------------------------ requests
def make_request(
    address: int,
    access_type: AccessType = AccessType.INSTRUCTION_FETCH,
    temperature: Temperature = Temperature.NONE,
    pc: int = 0,
    starvation_hint: bool = False,
    is_prefetch: bool = False,
) -> MemoryRequest:
    """Convenience request constructor used across the suite."""
    return MemoryRequest(
        address=address,
        access_type=access_type,
        pc=pc or address,
        temperature=temperature,
        starvation_hint=starvation_hint,
        is_prefetch=is_prefetch,
    )


def instruction(address: int, temperature: Temperature = Temperature.NONE, **kw):
    return make_request(address, AccessType.INSTRUCTION_FETCH, temperature, **kw)


def data_load(address: int, **kw):
    return make_request(address, AccessType.DATA_LOAD, **kw)


def data_store(address: int, **kw):
    return make_request(address, AccessType.DATA_STORE, **kw)


# -------------------------------------------------------------------- caches
def small_lru_cache() -> SetAssociativeCache:
    """A 4-set, 2-way LRU cache (512 B) for unit tests."""
    policy = LRUPolicy(num_sets=4, num_ways=2)
    return SetAssociativeCache("test-l1", 512, 2, policy)


def small_srrip_cache() -> SetAssociativeCache:
    """A 4-set, 4-way SRRIP cache (1 kB) for unit tests."""
    policy = SRRIPPolicy(num_sets=4, num_ways=4)
    return SetAssociativeCache("test-l2", 1024, 4, policy)


# ----------------------------------------------------------- store / session
def make_store(
    root: Path | str | None,
    refresh: bool = False,
    backend: "str | None" = None,
) -> Optional[ResultStore]:
    """A :class:`ResultStore` rooted at ``root``, or ``None`` when no root
    is given (callers treat that as "store disabled")."""
    if not root:
        return None
    return ResultStore(root, refresh=refresh, backend=backend)


def damage_store_entry(
    store: ResultStore, key: str, space: str = "runs", text: str = "{torn"
) -> None:
    """Overwrite a stored payload with undecodable bytes, backend-agnostically.

    The corruption tests poke damage *behind* the store (a torn write, bit
    rot) and assert the quarantine behaviour; this is the one place that
    knows how to reach each backend's storage directly — a file write for
    ``dir``, an SQL ``UPDATE`` for ``sqlite`` — so the tests themselves stay
    layout-free and run against every backend unchanged.
    """
    from repro.experiments.backends import DirBackend, SQLiteBackend

    backend = store.backend
    if isinstance(backend, DirBackend):
        backend.path_for(space, key).write_text(text, encoding="utf-8")
    elif isinstance(backend, SQLiteBackend):
        with backend._connect() as connection:
            connection.execute(
                "UPDATE entries SET payload = ? WHERE space = ? AND key = ?",
                (text, space, key),
            )
    else:  # pragma: no cover - future backends must teach this helper
        raise NotImplementedError(f"cannot damage entries of {backend!r}")


def read_quarantined_entry(
    store: ResultStore, key: str, space: str = "runs"
) -> Optional[str]:
    """The quarantined raw payload for ``key``, or ``None`` if not present."""
    from repro.experiments.backends import DirBackend, SQLiteBackend

    backend = store.backend
    if isinstance(backend, DirBackend):
        path = backend.path_for(space, key).with_suffix(".corrupt")
        if not path.exists():
            return None
        return path.read_text(encoding="utf-8")
    if isinstance(backend, SQLiteBackend):
        with backend._connect() as connection:
            row = connection.execute(
                "SELECT payload FROM quarantine WHERE space = ? AND key = ?",
                (space, key),
            ).fetchone()
        return None if row is None else row[0]
    raise NotImplementedError(  # pragma: no cover
        f"cannot read quarantine of {backend!r}"
    )


def wait_until(
    predicate,
    timeout: float = 10.0,
    poll: float = 0.02,
    message: str = "condition not met",
):
    """Poll ``predicate`` until truthy; returns its value.

    The standard test-side rendezvous with asynchronous daemon state (a job
    entering ``running``, a ready-file appearing, a second replica catching
    up): bounded, cheap, and failing with ``message`` instead of hanging
    the suite.
    """
    import time

    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(f"{message} (after {timeout}s)")
        time.sleep(poll)


def make_session(
    config: Optional[SimulatorConfig] = None,
    store_root: Path | str | None = None,
    refresh: bool = False,
    trace_root: Path | str | None = None,
) -> Session:
    """A scaled-config :class:`~repro.api.session.Session`, optionally
    store-backed and/or trace-archived — the standard execution context in
    tests/benchmarks."""
    return Session(
        config=config or SimulatorConfig.scaled(),
        store=make_store(store_root, refresh=refresh),
        traces=str(trace_root) if trace_root else None,
    )


# ------------------------------------------------- differential-test fixtures
def equivalence_policy_names() -> tuple[str, ...]:
    """Every registered replacement policy, in deterministic order.

    The shared axis of the behavioural differential suites: the flat-array
    cache vs the object-per-block reference (``tests/test_flat_equivalence``)
    and the scalar vs vector replay engines
    (``tests/test_vector_equivalence``) both sweep exactly this list, so a
    newly registered policy is automatically pulled into every equivalence
    harness.
    """
    from repro.cache.replacement.spec import policy_names

    return tuple(sorted(policy_names()))


def workload_family_names() -> tuple[str, ...]:
    """Every registered workload family, in catalog order."""
    from repro.workloads.families import family_names

    return family_names()


def equivalence_matrix() -> tuple[tuple[str, str], ...]:
    """The full (policy, workload family) differential matrix.

    Policy-major, deterministic: one row per registered replacement policy
    crossed with every registered workload family.
    """
    return tuple(
        (policy, family)
        for policy in equivalence_policy_names()
        for family in workload_family_names()
    )


def family_trace_pair(
    family: str, instructions: int = 4000, warmup: int = 1000
) -> "tuple[PackedTrace, PackedTrace]":
    """Small deterministic (warm-up, measured) packed traces for a family.

    Synthesizes the family at a reduced instruction budget through the
    regular co-design pipeline, so differential tests replay the same
    instruction streams the experiment harness would — just shorter.  Equal
    arguments always return equal traces (the generators are seeded).
    """
    from repro.experiments.runner import BenchmarkRunner
    from repro.workloads.families import WorkloadFamilySpec

    spec = WorkloadFamilySpec.of(
        family, instructions=instructions, warmup=warmup
    ).synthesize()
    runner = BenchmarkRunner(config=SimulatorConfig.scaled())
    prepared = runner._prepare_resolved(spec)
    return runner.packed_traces(prepared)


def fuzz_trace(
    seed: int,
    instructions: int = 4000,
    mem_rate: float = 0.3,
    branch_every: int = 16,
    code_lines: int = 128,
    data_lines: int = 512,
    alias_sets: int = 0,
    alias_stride_lines: int = 64,
    alias_burst: int = 24,
    stall_rate: float = 0.05,
) -> PackedTrace:
    """A seeded adversarial packed trace for engine differential testing.

    Beyond a plain random instruction mix (branches, loads/stores over
    ``data_lines`` distinct lines, occasional depend/issue stall
    annotations), the generator periodically emits **same-set aliasing
    bursts**: ``alias_burst`` consecutive accesses to lines spaced exactly
    ``alias_stride_lines`` apart, which all map to the same cache set of any
    level whose set count divides that stride (64 covers the scaled L2/SLC).
    A burst overflows the set's associativity mid-window, forcing the vector
    kernel through its fill/eviction correction paths — windows straddling
    fills, evictions, back-invalidations and exclusive-SLC victim churn.

    ``alias_sets > 0`` enables the bursts and bounds how many distinct alias
    groups are used; ``mem_rate=0.0`` produces a zero-memory (fetch and
    branch only) trace.  Equal arguments always build equal traces.
    """
    rng = random.Random(seed)
    packed = PackedTrace()
    code_base, data_base = 0x10000, 0x800000
    line = 64
    total_slots = code_lines * 16
    burst_left = 0
    burst_line = 0
    for i in range(instructions):
        slot = i % total_slots
        pc = code_base + slot * 4
        is_branch = branch_every > 0 and (slot % branch_every) == branch_every - 1
        taken = is_branch and (slot == total_slots - 1 or rng.random() < 0.15)
        target = code_base if slot == total_slots - 1 else pc + 8
        mem = 0
        flags = (FLAG_BRANCH if is_branch else 0) | (FLAG_TAKEN if taken else 0)
        if mem_rate > 0 and rng.random() < mem_rate:
            if burst_left > 0:
                burst_left -= 1
                burst_line += alias_stride_lines
                mem_line = burst_line
            elif alias_sets > 0 and rng.random() < 0.08:
                # Start a same-set aliasing burst on one of the alias groups.
                burst_left = alias_burst
                burst_line = rng.randrange(alias_sets)
                mem_line = burst_line
            else:
                mem_line = rng.randrange(data_lines)
            mem = data_base + mem_line * line + rng.randrange(line)
            flags |= FLAG_MEM
            if rng.random() < 0.3:
                flags |= FLAG_STORE
        depend = issue = 0
        if stall_rate > 0 and rng.random() < stall_rate:
            if rng.random() < 0.5:
                depend = rng.randrange(1, 6)
                flags |= FLAG_DEPEND
            else:
                issue = rng.randrange(1, 6)
                flags |= FLAG_ISSUE
        packed.append_raw(
            pc, 4, flags, target if is_branch else 0, mem, depend, issue
        )
    return packed


def aliasing_trace(seed: int, instructions: int = 4000) -> PackedTrace:
    """A fuzz trace dominated by same-set aliasing bursts (see
    :func:`fuzz_trace`): the adversarial shape for the vector kernel's
    intra-window residency corrections."""
    return fuzz_trace(
        seed,
        instructions=instructions,
        mem_rate=0.45,
        data_lines=192,
        alias_sets=4,
        alias_stride_lines=64,
        alias_burst=40,
    )
