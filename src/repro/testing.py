"""Shared helpers for the test suite and the benchmark harness.

``tests/conftest.py`` and ``benchmarks/conftest.py`` used to duplicate the
request constructors and store/config/session builders; both now import
them from here.  Everything in this module is plain library code (no pytest
dependency), so examples and ad-hoc scripts can reuse it too.

This module is also the public face of the **fault-injection harness**: the
engine itself only depends on the import-light implementation in
:mod:`repro.common.faults` (the store cannot import this module without a
cycle), and the names tests care about — :class:`FaultPlan`,
:func:`fire_point`, :data:`REPRO_FAULTS_ENV`, :func:`corrupt_file` — are
re-exported here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.api.session import Session
from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.basic import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.common.faults import (
    ENV_VAR as REPRO_FAULTS_ENV,
)
from repro.common.faults import (
    KILL_EXIT_CODE,
    FaultDirective,
    FaultPlan,
    active_plan,
    corrupt_file,
    fire_point,
    reset_fault_counters,
)
from repro.common.request import AccessType, MemoryRequest
from repro.common.temperature import Temperature
from repro.experiments.store import ResultStore
from repro.sim.config import SimulatorConfig

__all__ = [
    "AccessType",
    "FaultDirective",
    "FaultPlan",
    "KILL_EXIT_CODE",
    "MemoryRequest",
    "REPRO_FAULTS_ENV",
    "Temperature",
    "active_plan",
    "corrupt_file",
    "data_load",
    "data_store",
    "fire_point",
    "instruction",
    "make_request",
    "make_session",
    "make_store",
    "reset_fault_counters",
    "small_lru_cache",
    "small_srrip_cache",
]


# ------------------------------------------------------------------ requests
def make_request(
    address: int,
    access_type: AccessType = AccessType.INSTRUCTION_FETCH,
    temperature: Temperature = Temperature.NONE,
    pc: int = 0,
    starvation_hint: bool = False,
    is_prefetch: bool = False,
) -> MemoryRequest:
    """Convenience request constructor used across the suite."""
    return MemoryRequest(
        address=address,
        access_type=access_type,
        pc=pc or address,
        temperature=temperature,
        starvation_hint=starvation_hint,
        is_prefetch=is_prefetch,
    )


def instruction(address: int, temperature: Temperature = Temperature.NONE, **kw):
    return make_request(address, AccessType.INSTRUCTION_FETCH, temperature, **kw)


def data_load(address: int, **kw):
    return make_request(address, AccessType.DATA_LOAD, **kw)


def data_store(address: int, **kw):
    return make_request(address, AccessType.DATA_STORE, **kw)


# -------------------------------------------------------------------- caches
def small_lru_cache() -> SetAssociativeCache:
    """A 4-set, 2-way LRU cache (512 B) for unit tests."""
    policy = LRUPolicy(num_sets=4, num_ways=2)
    return SetAssociativeCache("test-l1", 512, 2, policy)


def small_srrip_cache() -> SetAssociativeCache:
    """A 4-set, 4-way SRRIP cache (1 kB) for unit tests."""
    policy = SRRIPPolicy(num_sets=4, num_ways=4)
    return SetAssociativeCache("test-l2", 1024, 4, policy)


# ----------------------------------------------------------- store / session
def make_store(
    root: Path | str | None, refresh: bool = False
) -> Optional[ResultStore]:
    """A :class:`ResultStore` rooted at ``root``, or ``None`` when no root
    is given (callers treat that as "store disabled")."""
    if not root:
        return None
    return ResultStore(root, refresh=refresh)


def make_session(
    config: Optional[SimulatorConfig] = None,
    store_root: Path | str | None = None,
    refresh: bool = False,
    trace_root: Path | str | None = None,
) -> Session:
    """A scaled-config :class:`~repro.api.session.Session`, optionally
    store-backed and/or trace-archived — the standard execution context in
    tests/benchmarks."""
    return Session(
        config=config or SimulatorConfig.scaled(),
        store=make_store(store_root, refresh=refresh),
        traces=str(trace_root) if trace_root else None,
    )
