"""Interleaved multi-core simulation over one shared L2/SLC.

The multi-core mode models a multiprogrammed workload: N independent
per-core trace streams (any mix of workload families), each replayed by a
private core + L1s, advanced in a deterministic round-robin interleave
(:func:`repro.cpu.core.run_packed_interleaved`), all missing into *one*
shared L2/SLC instance (:class:`repro.cache.hierarchy.SharedCacheSystem`).
There is no timing feedback between cores — contention is modelled through
cache state (a co-runner's fills evict your lines), which is exactly the
interference channel the contention experiments measure.

Each core's trace keeps its own virtual address space; physical placement
offsets every core into a disjoint window (:class:`CoreAddressSpace`) so two
cores running the *same* workload family contend instead of silently sharing
lines.  Core 0 keeps its translator unwrapped — an N=1 multi-core run
performs byte-for-byte the single-core state transitions, which
``tests/test_multicore.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cache.hierarchy import CacheHierarchy, SharedCacheSystem
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.temperature import Temperature
from repro.common.trace import PackedTrace
from repro.common.translation import AddressTranslator, IdentityTranslator
from repro.cpu.core import CoreModel, CoreResult, run_packed_interleaved
from repro.sim.config import SimulatorConfig
from repro.sim.results import SimulationResult

#: Physical-address window shift per core: each core's translated addresses
#: land in a disjoint 16 TiB window, far above any workload's footprint.
CORE_WINDOW_BITS = 44


class CoreAddressSpace:
    """Offsets a per-workload translator into a disjoint per-core window."""

    def __init__(self, inner: AddressTranslator, core_id: int) -> None:
        self._inner = inner
        self._offset = core_id << CORE_WINDOW_BITS

    def translate_instruction(self, vaddr: int) -> tuple[int, Temperature]:
        paddr, temperature = self._inner.translate_instruction(vaddr)
        return paddr + self._offset, temperature

    def translate_data(self, vaddr: int) -> tuple[int, Temperature]:
        paddr, temperature = self._inner.translate_data(vaddr)
        return paddr + self._offset, temperature


def normalize_interleave(
    interleave: Optional[Sequence[int]], cores: int
) -> tuple[int, ...]:
    """Validate an interleave ratio against a core count.

    ``None`` or empty means plain round-robin (one instruction per core per
    turn).  Otherwise one positive integer quantum per core.
    """
    if not interleave:
        return (1,) * cores
    ratio = tuple(int(value) for value in interleave)
    if len(ratio) != cores:
        raise ConfigurationError(
            f"interleave ratio has {len(ratio)} entries for {cores} cores"
        )
    if any(value <= 0 for value in ratio):
        raise ConfigurationError("interleave quanta must be positive integers")
    return ratio


@dataclass
class MulticoreResult:
    """Outcome of one interleaved multi-core run."""

    #: Per-core results, index-aligned with the scenario's core list.
    cores: list[SimulationResult]
    #: Instructions interleaved per core per scheduler turn.
    interleave: tuple[int, ...]
    #: Resident shared-L2 lines per owning core at end of run.
    occupancy: dict[int, int]
    #: Core -> its lines evicted from the shared L2 by *other* cores.
    inter_core_evictions: dict[int, int]
    #: Core -> other cores' lines its own fills evicted.
    evictions_caused: dict[int, int]

    @property
    def total_inter_core_evictions(self) -> int:
        return sum(self.inter_core_evictions.values())

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """JSON-serialisable form; round-trips exactly via :meth:`from_dict`."""
        return {
            "cores": [result.to_dict() for result in self.cores],
            "interleave": list(self.interleave),
            "occupancy": {str(k): v for k, v in self.occupancy.items()},
            "inter_core_evictions": {
                str(k): v for k, v in self.inter_core_evictions.items()
            },
            "evictions_caused": {
                str(k): v for k, v in self.evictions_caused.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MulticoreResult":
        return cls(
            cores=[
                SimulationResult.from_dict(entry) for entry in payload["cores"]
            ],
            interleave=tuple(payload["interleave"]),
            occupancy={int(k): v for k, v in payload["occupancy"].items()},
            inter_core_evictions={
                int(k): v for k, v in payload["inter_core_evictions"].items()
            },
            evictions_caused={
                int(k): v for k, v in payload["evictions_caused"].items()
            },
        )


class MulticoreSimulator:
    """N cores with private L1s over one shared L2/SLC.

    ``translators`` and ``benchmarks`` are index-aligned per core.  The usual
    protocol mirrors :class:`~repro.sim.simulator.SystemSimulator`:
    :meth:`warm_up` with the per-core fast-forward traces, then :meth:`run`
    with the measured traces (statistics reset first, cache and predictor
    state kept).
    """

    def __init__(
        self,
        config: SimulatorConfig,
        translators: Sequence[Optional[AddressTranslator]],
        benchmarks: Sequence[str],
        interleave: Optional[Sequence[int]] = None,
    ) -> None:
        config.validate()
        if not translators:
            raise ConfigurationError("multi-core mode needs at least one core")
        if len(translators) != len(benchmarks):
            raise ConfigurationError(
                "one benchmark label per core translator is required"
            )
        self.config = config
        self.benchmarks = list(benchmarks)
        self.interleave = normalize_interleave(interleave, len(translators))
        self.shared = SharedCacheSystem(config.hierarchy)
        self.hierarchies: list[CacheHierarchy] = []
        self.cores: list[CoreModel] = []
        for core_id, translator in enumerate(translators):
            # Core 0 keeps its translator unwrapped: zero offset, and the
            # identity-translation fast paths stay engaged, so an N=1 run is
            # bit-identical to the single-core simulator.
            if core_id > 0:
                translator = CoreAddressSpace(
                    translator if translator is not None else _IDENTITY,
                    core_id,
                )
            hierarchy = CacheHierarchy(
                config.hierarchy, shared=self.shared, core_id=core_id
            )
            self.hierarchies.append(hierarchy)
            self.cores.append(
                CoreModel(
                    hierarchy,
                    translator=translator,
                    config=config.core,
                    line_size=config.hierarchy.line_size,
                    core=core_id,
                )
            )
        self._ran = False

    # ------------------------------------------------------------------- API
    def warm_up(self, traces: Sequence[PackedTrace]) -> list[CoreResult]:
        """Replay the warm-up window; results are normally discarded."""
        return run_packed_interleaved(self.cores, traces, self.interleave)

    def run(
        self,
        traces: Sequence[PackedTrace],
        reset_stats: bool = True,
    ) -> MulticoreResult:
        """Replay the measured window and package per-core + sharing stats."""
        if reset_stats:
            for hierarchy in self.hierarchies:
                hierarchy.reset_stats()
            self.shared.reset_sharing_stats()
        core_results = run_packed_interleaved(self.cores, traces, self.interleave)
        self._ran = True
        return self.package(core_results)

    def package(self, core_results: Sequence[CoreResult]) -> MulticoreResult:
        results = [
            self._package_core(core_id, core_result)
            for core_id, core_result in enumerate(core_results)
        ]
        return MulticoreResult(
            cores=results,
            interleave=self.interleave,
            occupancy=self.shared.occupancy(),
            inter_core_evictions=dict(
                sorted(self.shared.inter_core_evictions.items())
            ),
            evictions_caused=dict(sorted(self.shared.evictions_caused.items())),
        )

    def _package_core(
        self, core_id: int, core_result: CoreResult
    ) -> SimulationResult:
        # Mirrors SystemSimulator._package over this core's private counters.
        if core_result.instructions == 0:
            raise SimulationError(
                f"core {core_id}: measured trace window contained no instructions"
            )
        stats = self.hierarchies[core_id].stats
        instructions = core_result.instructions
        l1i_misses = stats.l1i_misses
        return SimulationResult(
            benchmark=self.benchmarks[core_id],
            policy=self.config.l2_policy,
            config_name=self.config.name,
            instructions=instructions,
            cycles=core_result.cycles,
            ipc=core_result.ipc,
            topdown=core_result.topdown,
            l2_inst_misses=stats.l2_inst_misses,
            l2_data_misses=stats.l2_data_misses,
            l2_inst_mpki=stats.l2_inst_mpki(instructions),
            l2_data_mpki=stats.l2_data_mpki(instructions),
            l1i_mpki=1000.0 * l1i_misses / instructions if instructions else 0.0,
            branch_mpki=core_result.branch_mpki,
            dram_accesses=stats.dram_accesses,
            line_stall_cycles=core_result.line_stall_cycles,
            line_miss_counts=core_result.line_miss_counts,
        )


_IDENTITY = IdentityTranslator()
