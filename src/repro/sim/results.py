"""Simulation result containers and aggregation helpers."""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cpu.topdown import TopDownBreakdown


@dataclass
class SimulationResult:
    """Outcome of simulating one benchmark under one configuration."""

    benchmark: str
    policy: str
    config_name: str
    instructions: int
    cycles: float
    ipc: float
    topdown: TopDownBreakdown
    l2_inst_misses: int
    l2_data_misses: int
    l2_inst_mpki: float
    l2_data_mpki: float
    l1i_mpki: float
    branch_mpki: float
    dram_accesses: int
    #: Demand ifetch stall cycles per virtual instruction line (Figure 7).
    line_stall_cycles: dict[int, float] = field(default_factory=dict)
    #: Demand ifetch L2-miss counts per virtual instruction line.
    line_miss_counts: dict[int, int] = field(default_factory=dict)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Relative speedup vs. a baseline run of the same benchmark.

        Speedup is the reduction in execution cycles for the same number of
        instructions (Section 4.4), expressed as a fraction (0.039 = +3.9%).
        """
        if self.benchmark != baseline.benchmark:
            raise ValueError(
                f"cannot compare {self.benchmark!r} against {baseline.benchmark!r}"
            )
        if self.cycles <= 0:
            return 0.0
        return baseline.cycles / self.cycles - 1.0

    def mpki_reduction_over(self, baseline: "SimulationResult") -> tuple[float, float]:
        """(instruction, data) L2 MPKI reduction vs. a baseline, in percent."""
        return (
            _reduction_percent(baseline.l2_inst_mpki, self.l2_inst_mpki),
            _reduction_percent(baseline.l2_data_mpki, self.l2_data_mpki),
        )

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """JSON-serialisable form; round-trips exactly via :meth:`from_dict`."""
        payload = dataclasses.asdict(self)
        # JSON object keys are strings; from_dict restores the int line keys.
        payload["line_stall_cycles"] = {
            str(k): v for k, v in self.line_stall_cycles.items()
        }
        payload["line_miss_counts"] = {
            str(k): v for k, v in self.line_miss_counts.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationResult":
        """Rebuild a result previously serialised with :meth:`to_dict`."""
        data = dict(payload)
        data["topdown"] = TopDownBreakdown(**data["topdown"])
        data["line_stall_cycles"] = {
            int(k): v for k, v in data.get("line_stall_cycles", {}).items()
        }
        data["line_miss_counts"] = {
            int(k): v for k, v in data.get("line_miss_counts", {}).items()
        }
        return cls(**data)


def _reduction_percent(baseline: float, value: float) -> float:
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - value) / baseline


def geometric_mean(values: Iterable[float]) -> float:
    """Plain geometric mean of positive values (0.0 for an empty input)."""
    values = list(values)
    if not values:
        return 0.0
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def geomean_speedup(speedups: Sequence[float]) -> float:
    """Geometric mean of relative speedups expressed as fractions.

    Speedups are ratios (1 + fraction); the result is returned as a fraction
    again, matching how the paper reports "geomean speedup of 3.9%".
    """
    if not speedups:
        return 0.0
    return geometric_mean(1.0 + s for s in speedups) - 1.0


def geomean_reduction(reductions: Sequence[float]) -> float:
    """Geometric-mean percentage reduction (computed on retention ratios).

    A reduction of 26.5% corresponds to a retention ratio of 0.735; averaging
    the ratios geometrically and converting back keeps the figure meaningful
    when some benchmarks have negative reductions (increases).
    """
    if not reductions:
        return 0.0
    ratios = [max(1.0 - r / 100.0, 1e-6) for r in reductions]
    return (1.0 - geometric_mean(ratios)) * 100.0
