"""Simulator configurations.

:func:`SimulatorConfig.paper` reproduces Table 1 of the paper; the
:func:`SimulatorConfig.scaled` configuration keeps the same structure,
latencies and policy logic but shrinks the caches (and therefore the workload
footprints needed to stress them) so that the pure-Python model can run every
experiment in seconds instead of hours.  All experiment entry points take a
configuration argument, so any experiment can be re-run at paper scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.cache.hierarchy import CacheLevelConfig, HierarchyConfig
from repro.cache.replacement.spec import PolicySpec
from repro.common.errors import ConfigurationError
from repro.common.hashing import canonical_payload, stable_hash
from repro.cpu.core import CoreConfig

KB = 1024
MB = 1024 * KB

#: Replacement policies evaluated in Figure 6 / Table 3, in paper order.
EVALUATED_POLICIES: tuple[str, ...] = (
    "lru",
    "brrip",
    "drrip",
    "ship",
    "clip",
    "emissary",
    "trrip-1",
    "trrip-2",
)

#: The baseline every result is normalised to.
BASELINE_POLICY = "srrip"


@dataclass
class SimulatorConfig:
    """Full system configuration: cache hierarchy + core + OS page size."""

    name: str
    hierarchy: HierarchyConfig
    core: CoreConfig = field(default_factory=CoreConfig)
    page_size: int = 4096
    #: Multiplier applied to workload footprints/trace lengths for this
    #: configuration (1.0 for the scaled config the specs are written for).
    workload_scale: float = 1.0

    def validate(self) -> None:
        if self.page_size <= 0:
            raise ConfigurationError("page_size must be positive")
        if self.workload_scale <= 0:
            raise ConfigurationError("workload_scale must be positive")
        self.hierarchy.validate()
        self.core.validate()

    # ----------------------------------------------------------- derivations
    @property
    def l2_policy(self) -> str:
        return self.hierarchy.l2.policy

    @property
    def l2_policy_spec(self) -> PolicySpec:
        """The L2 replacement policy as a structured spec (name + params)."""
        return PolicySpec(
            self.hierarchy.l2.policy, tuple(self.hierarchy.l2.policy_kwargs.items())
        )

    def with_l2_policy(
        self, policy: "str | PolicySpec", **policy_kwargs
    ) -> "SimulatorConfig":
        """Return a copy whose L2 uses a different replacement policy.

        ``policy`` may be a plain name (``"srrip"``), a parameterised token
        (``"ship:shct_bits=3"``) or a
        :class:`~repro.cache.replacement.spec.PolicySpec`; it is validated
        against the policy registry here, so an unknown name or parameter
        raises :class:`~repro.common.errors.ConfigurationError` before any
        workload preparation or simulation starts.
        """
        spec = PolicySpec.of(policy, **policy_kwargs)
        hierarchy = dataclasses.replace(
            self.hierarchy,
            l2=dataclasses.replace(
                self.hierarchy.l2, policy=spec.name, policy_kwargs=spec.kwargs
            ),
        )
        return dataclasses.replace(
            self, name=f"{self.name}/{spec.canonical()}", hierarchy=hierarchy
        )

    def with_l2_geometry(
        self, size_bytes: int | None = None, associativity: int | None = None
    ) -> "SimulatorConfig":
        """Return a copy with a different L2 size and/or associativity."""
        l2 = self.hierarchy.l2
        hierarchy = dataclasses.replace(
            self.hierarchy,
            l2=dataclasses.replace(
                l2,
                size_bytes=size_bytes if size_bytes is not None else l2.size_bytes,
                associativity=(
                    associativity if associativity is not None else l2.associativity
                ),
            ),
        )
        return dataclasses.replace(self, hierarchy=hierarchy)

    def with_page_size(self, page_size: int) -> "SimulatorConfig":
        return dataclasses.replace(self, page_size=page_size)

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """Canonical nested-dict form of the full configuration.

        Every field that influences simulation results is included (cache
        geometry and latencies, policy names and kwargs, core parameters,
        page size, workload scale), so two configs with equal dicts produce
        identical simulations.  Used by the result store to key cached runs.
        """
        return canonical_payload(self)

    def content_hash(self) -> str:
        """Stable hex digest of :meth:`to_dict` (process-independent)."""
        return stable_hash(self)

    # --------------------------------------------------------- constructions
    @classmethod
    def paper(cls, l2_policy: str = BASELINE_POLICY) -> "SimulatorConfig":
        """Table 1 configuration (64 kB L1s, 512 kB L2, 1 MB SLC)."""
        hierarchy = HierarchyConfig(
            l1i=CacheLevelConfig(
                size_bytes=64 * KB,
                associativity=4,
                latency=3,
                policy="lru",
                # Instruction prefetching is handled by the frontend's
                # pseudo-FDIP engine, which models prefetch timeliness.
                prefetcher="none",
            ),
            l1d=CacheLevelConfig(
                size_bytes=64 * KB,
                associativity=4,
                latency=3,
                policy="lru",
                prefetcher="stride",
            ),
            l2=CacheLevelConfig(
                size_bytes=512 * KB,
                associativity=8,
                latency=12,
                policy=l2_policy,
                prefetcher="stride",
            ),
            slc=CacheLevelConfig(
                size_bytes=1 * MB,
                associativity=16,
                latency=30,
                policy="lru",
            ),
            dram_latency=400,
        )
        return cls(
            name="paper",
            hierarchy=hierarchy,
            core=CoreConfig(),
            page_size=4096,
            workload_scale=12.0,
        )

    @classmethod
    def scaled(cls, l2_policy: str = BASELINE_POLICY) -> "SimulatorConfig":
        """Fast configuration: same structure, caches shrunk ~8-16x."""
        hierarchy = HierarchyConfig(
            l1i=CacheLevelConfig(
                size_bytes=4 * KB,
                associativity=4,
                latency=3,
                policy="lru",
                # Instruction prefetching is handled by the frontend's
                # pseudo-FDIP engine, which models prefetch timeliness.
                prefetcher="none",
            ),
            l1d=CacheLevelConfig(
                size_bytes=4 * KB,
                associativity=4,
                latency=3,
                policy="lru",
                prefetcher="stride",
            ),
            l2=CacheLevelConfig(
                size_bytes=32 * KB,
                associativity=8,
                latency=12,
                policy=l2_policy,
                prefetcher="stride",
            ),
            slc=CacheLevelConfig(
                size_bytes=64 * KB,
                associativity=16,
                latency=30,
                policy="lru",
            ),
            dram_latency=400,
        )
        return cls(
            name="scaled",
            hierarchy=hierarchy,
            core=CoreConfig(),
            page_size=4096,
            workload_scale=1.0,
        )

    @classmethod
    def default(cls) -> "SimulatorConfig":
        """The configuration experiments use unless told otherwise."""
        return cls.scaled()


#: Named configuration constructors shared by the CLI (``--config``) and the
#: ``repro serve`` submission protocol (the ``"config"`` field).
NAMED_CONFIGS = {
    "scaled": SimulatorConfig.scaled,
    "paper": SimulatorConfig.paper,
}


def named_config(name: str) -> SimulatorConfig:
    """Build the named configuration, failing eagerly on unknown names."""
    from repro.common.errors import ConfigurationError

    constructor = NAMED_CONFIGS.get(name)
    if constructor is None:
        raise ConfigurationError(
            f"unknown configuration {name!r}; expected one of "
            f"{', '.join(NAMED_CONFIGS)}"
        )
    return constructor()


def table1_rows(config: SimulatorConfig | None = None) -> list[tuple[str, str]]:
    """Human-readable (component, configuration) rows mirroring Table 1."""
    cfg = config or SimulatorConfig.paper()
    core = cfg.core
    h = cfg.hierarchy

    def cache_row(level: CacheLevelConfig) -> str:
        return (
            f"{level.size_bytes // KB}kB, {level.associativity}-way, "
            f"{level.policy.upper()} replacement, "
            f"{level.prefetcher or 'no'} prefetcher, {level.latency}-cycle latency"
        )

    return [
        (
            "Core",
            f"{core.dispatch_width}-wide dispatch, pseudo-FDIP prefetching, "
            f"{core.backend.rob_entries}-entry ROB, {core.frequency_ghz:g}GHz",
        ),
        (
            "Branch",
            f"{core.branch.btb_entries}-entry BTB, "
            f"{core.branch.indirect_btb_entries}-entry indirect-BTB, "
            f"{core.branch.loop_predictor_entries}-entry loop predictor, "
            f"{core.branch.global_predictor_entries}-entry global predictor, "
            f"{core.branch.mispredict_penalty}-cycle mispredict penalty",
        ),
        ("L1-D", cache_row(h.l1d)),
        ("L1-I", cache_row(h.l1i)),
        ("Unified Shared L2", cache_row(h.l2)),
        ("Unified Shared SLC", cache_row(h.slc)),
        ("DRAM", f"{h.dram_latency}-cycle latency"),
    ]
