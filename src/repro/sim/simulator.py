"""System simulator: ties MMU, core and cache hierarchy together."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import SimulationError
from repro.common.trace import TraceRecord
from repro.common.translation import AddressTranslator
from repro.cpu.core import CoreModel, CoreResult
from repro.sim.config import SimulatorConfig
from repro.sim.results import SimulationResult


class SystemSimulator:
    """One simulated core with its cache hierarchy and (optional) MMU.

    The simulator is trace-driven: callers provide iterables of
    :class:`~repro.common.trace.TraceRecord`, or — for fast replay — a
    :class:`~repro.common.trace.PackedTrace`, which the core routes through
    its column-oriented hot loop with bit-identical results.  The usual
    protocol is

    1. :meth:`warm_up` with the fast-forward window (Table 2),
    2. :meth:`run` with the measured window, which resets statistics first
       but keeps cache/predictor state, and returns a
       :class:`~repro.sim.results.SimulationResult`.
    """

    def __init__(
        self,
        config: SimulatorConfig,
        translator: Optional[AddressTranslator] = None,
        benchmark: str = "unknown",
    ) -> None:
        config.validate()
        self.config = config
        self.benchmark = benchmark
        self.hierarchy = CacheHierarchy(config.hierarchy)
        self.core = CoreModel(
            self.hierarchy,
            translator=translator,
            config=config.core,
            line_size=config.hierarchy.line_size,
        )
        self._ran = False

    # ------------------------------------------------------------------- API
    def warm_up(self, trace: Iterable[TraceRecord]) -> CoreResult:
        """Run a warm-up window; results are returned but normally discarded."""
        return self.core.run(trace)

    def run(
        self,
        trace: Iterable[TraceRecord],
        reset_stats: bool = True,
    ) -> SimulationResult:
        """Run the measured window and package the results."""
        if reset_stats:
            self.hierarchy.reset_stats()
        core_result = self.core.run(trace)
        if core_result.instructions == 0:
            raise SimulationError("measured trace window contained no instructions")
        self._ran = True
        return self._package(core_result)

    def reset(self) -> None:
        """Restore caches, predictors and statistics to the power-on state."""
        self.hierarchy.reset()
        self.core.reset()
        self._ran = False

    # -------------------------------------------------------------- internals
    def _package(self, core_result: CoreResult) -> SimulationResult:
        stats = self.hierarchy.stats
        instructions = core_result.instructions
        l1i_misses = stats.l1i_misses
        return SimulationResult(
            benchmark=self.benchmark,
            policy=self.config.l2_policy,
            config_name=self.config.name,
            instructions=instructions,
            cycles=core_result.cycles,
            ipc=core_result.ipc,
            topdown=core_result.topdown,
            l2_inst_misses=stats.l2_inst_misses,
            l2_data_misses=stats.l2_data_misses,
            l2_inst_mpki=stats.l2_inst_mpki(instructions),
            l2_data_mpki=stats.l2_data_mpki(instructions),
            l1i_mpki=1000.0 * l1i_misses / instructions if instructions else 0.0,
            branch_mpki=core_result.branch_mpki,
            dram_accesses=stats.dram_accesses,
            line_stall_cycles=core_result.line_stall_cycles,
            line_miss_counts=core_result.line_miss_counts,
        )
