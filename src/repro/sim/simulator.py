"""System simulator: ties MMU, core and cache hierarchy together."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.trace import PackedTrace, TraceRecord
from repro.common.translation import AddressTranslator
from repro.cpu.core import CoreModel, CoreResult, run_packed_lockstep
from repro.cpu.vector import run_packed_vector, unbatchable_reason
from repro.sim.config import SimulatorConfig
from repro.sim.results import SimulationResult

#: Valid values of the replay-engine knob.
ENGINES = ("scalar", "vector", "auto")


class SystemSimulator:
    """One simulated core with its cache hierarchy and (optional) MMU.

    The simulator is trace-driven: callers provide iterables of
    :class:`~repro.common.trace.TraceRecord`, or — for fast replay — a
    :class:`~repro.common.trace.PackedTrace`, which the core routes through
    its column-oriented hot loop with bit-identical results.  The usual
    protocol is

    1. :meth:`warm_up` with the fast-forward window (Table 2),
    2. :meth:`run` with the measured window, which resets statistics first
       but keeps cache/predictor state, and returns a
       :class:`~repro.sim.results.SimulationResult`.

    ``engine`` selects the packed-trace replay kernel: ``"scalar"`` is the
    event-at-a-time reference loop, ``"vector"`` forces the NumPy batch
    kernel (:mod:`repro.cpu.vector`; raises
    :class:`~repro.common.errors.ConfigurationError` when the configuration
    is not batchable), ``"auto"`` (the default) uses the vector kernel
    whenever the configuration qualifies and falls back to scalar otherwise.
    Both kernels produce bit-identical results
    (``tests/test_vector_equivalence.py``), so the knob never changes
    simulation output — only replay speed.
    """

    def __init__(
        self,
        config: SimulatorConfig,
        translator: Optional[AddressTranslator] = None,
        benchmark: str = "unknown",
        engine: str = "auto",
    ) -> None:
        config.validate()
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.config = config
        self.benchmark = benchmark
        self.engine = engine
        self.hierarchy = CacheHierarchy(config.hierarchy)
        self.core = CoreModel(
            self.hierarchy,
            translator=translator,
            config=config.core,
            line_size=config.hierarchy.line_size,
        )
        #: Static batchability verdict, computed once (the policy/prefetcher/
        #: translator wiring never changes after construction).  The dynamic
        #: condition — an attached ``l2_access_observer`` — is checked per run.
        self._static_unbatchable = (
            unbatchable_reason(self.core) if engine != "scalar" else "engine=scalar"
        )
        self._ran = False

    # ------------------------------------------------------------------- API
    def warm_up(self, trace: Iterable[TraceRecord]) -> CoreResult:
        """Run a warm-up window; results are returned but normally discarded."""
        return self._run_core(trace)

    def run(
        self,
        trace: Iterable[TraceRecord],
        reset_stats: bool = True,
    ) -> SimulationResult:
        """Run the measured window and package the results."""
        if reset_stats:
            self.hierarchy.reset_stats()
        core_result = self._run_core(trace)
        if core_result.instructions == 0:
            raise SimulationError("measured trace window contained no instructions")
        self._ran = True
        return self._package(core_result)

    def _run_core(self, trace: Iterable[TraceRecord]) -> CoreResult:
        """Replay ``trace`` through the engine the knob selects."""
        if self.engine == "scalar":
            return self.core.run(trace)
        reason = self._replay_unbatchable_reason(trace)
        if reason is None:
            return run_packed_vector(self.core, trace)
        if self.engine == "vector":
            raise ConfigurationError(
                f"engine='vector' cannot replay this configuration: {reason}"
            )
        return self.core.run(trace)

    def _replay_unbatchable_reason(self, trace) -> Optional[str]:
        """Why this replay cannot use the vector kernel, or ``None``."""
        if not isinstance(trace, PackedTrace):
            return "the trace is a record stream, not a PackedTrace"
        if self._static_unbatchable is not None:
            return self._static_unbatchable
        if self.hierarchy.l2_access_observer is not None:
            return "an l2_access_observer is attached"
        return None

    def reset(self) -> None:
        """Restore caches, predictors and statistics to the power-on state."""
        self.hierarchy.reset()
        self.core.reset()
        self._ran = False

    # -------------------------------------------------------------- internals
    def package(self, core_result: CoreResult) -> SimulationResult:
        """Package an externally produced core result (lockstep replay)."""
        if core_result.instructions == 0:
            raise SimulationError("measured trace window contained no instructions")
        self._ran = True
        return self._package(core_result)

    def _package(self, core_result: CoreResult) -> SimulationResult:
        stats = self.hierarchy.stats
        instructions = core_result.instructions
        l1i_misses = stats.l1i_misses
        return SimulationResult(
            benchmark=self.benchmark,
            policy=self.config.l2_policy,
            config_name=self.config.name,
            instructions=instructions,
            cycles=core_result.cycles,
            ipc=core_result.ipc,
            topdown=core_result.topdown,
            l2_inst_misses=stats.l2_inst_misses,
            l2_data_misses=stats.l2_data_misses,
            l2_inst_mpki=stats.l2_inst_mpki(instructions),
            l2_data_mpki=stats.l2_data_mpki(instructions),
            l1i_mpki=1000.0 * l1i_misses / instructions if instructions else 0.0,
            branch_mpki=core_result.branch_mpki,
            dram_accesses=stats.dram_accesses,
            line_stall_cycles=core_result.line_stall_cycles,
            line_miss_counts=core_result.line_miss_counts,
        )


def run_lockstep(
    simulators: Sequence[SystemSimulator],
    warmup: PackedTrace,
    measured: PackedTrace,
) -> list[SimulationResult]:
    """Run N simulators over the same trace pair in lockstep.

    The simulators must share core configuration and differ only in their
    memory systems (one per L2 replacement policy).  The warm-up window is
    replayed first and discarded, statistics are reset, then the measured
    window is replayed — exactly the protocol each solo
    :class:`SystemSimulator` run follows — with the front-of-pipe work
    (trace decode, fetch-boundary decisions, branch outcomes) computed once
    for the whole group (see
    :func:`repro.cpu.core.run_packed_lockstep`).  Results are bit-identical
    to N independent runs.
    """
    cores = [simulator.core for simulator in simulators]
    run_packed_lockstep(cores, warmup)  # warm-up window, discarded
    for simulator in simulators:
        simulator.hierarchy.reset_stats()
    core_results = run_packed_lockstep(cores, measured)
    return [
        simulator.package(core_result)
        for simulator, core_result in zip(simulators, core_results)
    ]
