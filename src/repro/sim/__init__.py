"""Simulation driver: configurations, the system simulator and results."""

from repro.sim.config import (
    BASELINE_POLICY,
    EVALUATED_POLICIES,
    SimulatorConfig,
    table1_rows,
)
from repro.sim.results import (
    SimulationResult,
    geomean_reduction,
    geomean_speedup,
    geometric_mean,
)
from repro.sim.multicore import MulticoreResult, MulticoreSimulator
from repro.sim.simulator import SystemSimulator

__all__ = [
    "MulticoreResult",
    "MulticoreSimulator",
    "SimulatorConfig",
    "table1_rows",
    "EVALUATED_POLICIES",
    "BASELINE_POLICY",
    "SystemSimulator",
    "SimulationResult",
    "geometric_mean",
    "geomean_speedup",
    "geomean_reduction",
]
