"""Allow ``python -m repro.cli`` as an uninstalled equivalent of ``repro``."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
