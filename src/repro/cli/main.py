"""Argument parsing and subcommand implementations for ``repro``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.api.scenario import Scenario, resolve_token
from repro.api.session import Session
from repro.cache.replacement.factory import available_policies
from repro.cache.replacement.spec import PolicySpec, describe_policies
from repro.cli.serialize import render_csv, to_jsonable
from repro.client import DEFAULT_PORT, URL_ENV_VAR
from repro.common.errors import ConfigurationError, WorkloadError
from repro.experiments.backends import backend_names
from repro.experiments.registry import (
    REGISTRY,
    ExperimentContext,
    experiment_names,
    get_experiment,
)
from repro.experiments.store import ResultStore
from repro.experiments.table3 import format_table3
from repro.experiments.figure6 import format_figure6
from repro.sim.config import BASELINE_POLICY, EVALUATED_POLICIES, NAMED_CONFIGS
from repro.workloads.capture import TraceArchive
from repro.workloads.families import describe_families
from repro.workloads.spec import (
    PROXY_BENCHMARKS,
    SYSTEM_COMPONENTS,
    tiny_spec,
)


# ------------------------------------------------------------------ arguments
def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("result store")
    group.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="result-store directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    group.add_argument(
        "--store-backend",
        choices=backend_names(),
        default=None,
        help="result-store storage backend (default: $REPRO_STORE_BACKEND "
        "or dir).  Both hold byte-identical entries under the same keys",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result store entirely (neither read nor write)",
    )
    group.add_argument(
        "--refresh",
        action="store_true",
        help="ignore cached results but write fresh ones",
    )
    group.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="capture generated traces into DIR and replay them on later "
        "runs instead of regenerating (see `repro workloads`)",
    )


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        choices=sorted(NAMED_CONFIGS),
        default="scaled",
        help="simulator configuration (default: scaled)",
    )
    workload_group = parser.add_mutually_exclusive_group()
    workload_group.add_argument(
        "--benchmarks",
        metavar="NAMES",
        default=None,
        help="deprecated alias for repeated --spec (comma-separated tokens)",
    )
    workload_group.add_argument(
        "--tiny",
        action="store_true",
        help="run on the miniature smoke-test workload instead of the paper "
        "benchmarks (seconds instead of minutes)",
    )
    parser.add_argument(
        "--spec",
        action="append",
        default=None,
        metavar="TOKEN",
        dest="spec",
        help="workload to run: a benchmark name (sqlite), a family token "
        "(zipf:alpha=1.2) or 'tiny'; repeatable, composes with --tiny.  "
        "One grammar for every workload axis — see `repro workloads`",
    )
    parser.add_argument(
        "--core",
        action="append",
        default=None,
        metavar="TOKEN",
        dest="core",
        help="multi-core experiments (interference): one workload per core "
        "(same tokens as --spec); repeat once per core",
    )
    parser.add_argument(
        "--interleave",
        metavar="N,M,...",
        default=None,
        help="round-robin quanta per core for --core runs, e.g. 2,1 "
        "(default: 1 per core)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for grid sweeps (0 = all cores; default: serial)",
    )
    parser.add_argument(
        "--engine",
        choices=("scalar", "vector", "auto"),
        default="auto",
        help="packed-trace replay engine: the event-at-a-time scalar loop, "
        "the NumPy batch kernel (fails on configurations it cannot replay), "
        "or auto-selection (default).  Results are bit-identical either way",
    )
    parser.add_argument(
        "--policy",
        action="append",
        default=None,
        metavar="NAME[:P=V,...]",
        dest="policy",
        help="replacement policy to evaluate, with optional parameters "
        "(e.g. trrip-1 or ship:shct_bits=3); repeatable.  See `repro "
        "policies` for the catalog.  Experiments with a fixed policy list "
        "(figure6, table3, sweep) use these instead",
    )
    parser.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="FAMILY[:P=V,...]",
        dest="workload",
        help="deprecated alias for --spec",
    )
    _add_cache_options(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's figures and tables from one "
        "entry point, with cached, deterministic simulation runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="show registered experiments, benchmarks and policies"
    )
    list_parser.add_argument(
        "what",
        nargs="?",
        choices=("experiments", "benchmarks", "policies", "all"),
        default="all",
        help="which catalog to print (default: all)",
    )

    sub.add_parser(
        "policies",
        help="describe every replacement policy and its typed parameters",
    )

    sub.add_parser(
        "workloads",
        help="describe every workload family and its typed parameters",
    )

    run_parser = sub.add_parser(
        "run", help="regenerate one figure/table/ablation by name"
    )
    run_parser.add_argument(
        "experiment",
        metavar="EXPERIMENT",
        help="an experiment name from `repro list` (e.g. figure3, table3)",
    )
    _add_run_options(run_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="run a (benchmark x policy) grid against the baseline"
    )
    sweep_parser.add_argument(
        "--policies",
        metavar="NAMES",
        default=None,
        help="comma-separated policy list (default: the paper's evaluated "
        "policies)",
    )
    _add_run_options(sweep_parser)
    fault_group = sweep_parser.add_argument_group(
        "fault tolerance",
        "sweeps are checkpointed: every finished unit is durable in the "
        "result store and journalled under <store>/journals/, so an "
        "interrupted sweep picks up where it left off with --resume",
    )
    fault_group.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep: re-plan the same grid and execute "
        "only the units missing from the result store",
    )
    fault_group.add_argument(
        "--max-retries",
        type=int,
        default=1,
        metavar="N",
        help="retries per unit after a worker error/crash/timeout "
        "(default: 1)",
    )
    fault_group.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per unit attempt; an overdue worker is "
        "killed and the unit retried (default: unlimited)",
    )
    fault_group.add_argument(
        "--retry-backoff",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="base delay before the first retry, doubling per attempt with "
        "deterministic jitter (default: 0.25)",
    )
    fault_group.add_argument(
        "--keep-going",
        action="store_true",
        help="after a unit exhausts its retries, finish the remaining units "
        "and report the partial failure (exit 1) instead of stopping",
    )

    bench_parser = sub.add_parser(
        "bench",
        help="measure engine speed (seed vs flat-array) and the lockstep "
        "multi-policy sweep, asserting the pinned BENCH_baseline.json floors",
    )
    bench_parser.add_argument(
        "--tiny",
        action="store_true",
        help="short shapes (seconds; used by the CI bench job)",
    )
    bench_parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        metavar="N",
        help="best-of-N interleaved measurement rounds (default: 3)",
    )
    bench_parser.add_argument(
        "--no-sweep",
        action="store_true",
        help="skip the lockstep multi-policy sweep measurement",
    )
    bench_parser.add_argument(
        "--no-floors",
        action="store_true",
        help="report only; do not assert the pinned speedup floors",
    )
    bench_parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the JSON report to FILE",
    )
    bench_parser.add_argument(
        "--engine",
        choices=("scalar", "vector", "auto"),
        default="auto",
        help="replay engine the fast side measures (default: auto); floors "
        "are asserted per engine (see BENCH_baseline.json)",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="run the simulation service: an HTTP daemon with a job queue, "
        "in-flight dedup by content hash, backpressure and graceful drain",
    )
    serve_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="address to bind (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        metavar="PORT",
        help=f"port to bind; 0 = ephemeral (default: {DEFAULT_PORT})",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker threads executing jobs (default: 2)",
    )
    serve_parser.add_argument(
        "--queue-size",
        type=int,
        default=16,
        metavar="N",
        help="job-queue capacity; a full queue answers 429 with Retry-After "
        "(default: 16)",
    )
    serve_parser.add_argument(
        "--config",
        choices=sorted(NAMED_CONFIGS),
        default="scaled",
        help="default configuration for submissions that name none "
        "(default: scaled)",
    )
    serve_parser.add_argument(
        "--engine",
        choices=("scalar", "vector", "auto"),
        default="auto",
        help="packed-trace replay engine (default: auto)",
    )
    serve_parser.add_argument(
        "--ready-file",
        metavar="FILE",
        default=None,
        help="write the bound URL to FILE once the service accepts requests "
        "(lets scripts/CI wait for startup without polling)",
    )
    serve_parser.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="submission journal path (default: "
        "<store>/serve/journal-<replica>.jsonl when a store is configured); "
        "accepted jobs are recorded before queueing and re-enqueued on "
        "restart",
    )
    serve_parser.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the submission journal (accepted jobs die with the "
        "process)",
    )
    serve_parser.add_argument(
        "--replica-id",
        metavar="ID",
        default="r0",
        help="identity of this daemon for journal naming and store claim "
        "markers; every replica sharing a store MUST use a distinct id "
        "(default: r0)",
    )
    serve_parser.add_argument(
        "--claim-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="heartbeat TTL of store claim markers; another replica adopts "
        "a job whose claim has lapsed this long (default: 30)",
    )
    serve_parser.add_argument(
        "--verbose",
        action="store_true",
        help="log each HTTP request to stderr",
    )
    _add_cache_options(serve_parser)

    def _add_client_options(client_parser: argparse.ArgumentParser) -> None:
        client_parser.add_argument(
            "--url",
            default=None,
            metavar="URL",
            help=f"service URL (default: ${URL_ENV_VAR} or "
            f"http://127.0.0.1:{DEFAULT_PORT})",
        )
        client_parser.add_argument(
            "--timeout",
            type=float,
            default=60.0,
            metavar="SECONDS",
            help="per-request HTTP timeout (default: 60)",
        )
        client_parser.add_argument(
            "--retries",
            type=int,
            default=2,
            metavar="N",
            help="transport retries with exponential backoff when the "
            "server is unreachable — rides out a daemon restart "
            "(default: 2; 0 fails fast)",
        )

    submit_parser = sub.add_parser(
        "submit", help="submit a scenario to a running `repro serve` daemon"
    )
    submit_parser.add_argument(
        "--benchmarks",
        metavar="NAMES",
        default=None,
        help="deprecated alias for repeated --spec (comma-separated tokens)",
    )
    submit_parser.add_argument(
        "--tiny",
        action="store_true",
        help="submit the miniature smoke-test workload",
    )
    submit_parser.add_argument(
        "--spec",
        action="append",
        default=None,
        metavar="TOKEN",
        dest="spec",
        help="workload to submit: a benchmark name, family token or 'tiny'; "
        "repeatable (same grammar as `repro run --spec`)",
    )
    submit_parser.add_argument(
        "--core",
        action="append",
        default=None,
        metavar="TOKEN",
        dest="core",
        help="multi-core submission: one workload per core; repeat once per "
        "core.  Mutually exclusive with --spec/--tiny/--benchmarks",
    )
    submit_parser.add_argument(
        "--interleave",
        metavar="N,M,...",
        default=None,
        help="round-robin quanta per core for --core submissions, e.g. 2,1",
    )
    submit_parser.add_argument(
        "--policies",
        metavar="NAMES",
        default=None,
        help="comma-separated policy tokens (default: server baseline)",
    )
    submit_parser.add_argument(
        "--config",
        choices=sorted(NAMED_CONFIGS),
        default=None,
        help="named configuration (default: the server's default)",
    )
    submit_parser.add_argument(
        "--track-reuse",
        action="store_true",
        help="collect reuse-distance histograms per point",
    )
    submit_parser.add_argument(
        "--label", default=None, help="free-form tag echoed in job status"
    )
    submit_parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="read the submission payload from a JSON file ('-' = stdin) "
        "instead of building it from flags",
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="block until the job finishes and print its results",
    )
    submit_parser.add_argument(
        "--busy-retries",
        type=int,
        default=0,
        metavar="N",
        help="on 429, sleep for the server's Retry-After and retry up to N "
        "times (default: fail immediately)",
    )
    _add_client_options(submit_parser)

    status_parser = sub.add_parser(
        "status",
        help="show a served job's status, or the service metrics with no "
        "job id",
    )
    status_parser.add_argument(
        "job",
        nargs="?",
        default=None,
        metavar="JOB",
        help="job id from `repro submit` (omit for /metrics)",
    )
    status_parser.add_argument(
        "--jobs",
        action="store_true",
        help="list every job the daemon knows (queued, running, finished) "
        "instead of metrics",
    )
    _add_client_options(status_parser)

    result_parser = sub.add_parser(
        "result", help="fetch the results of a finished served job"
    )
    result_parser.add_argument(
        "job", metavar="JOB", help="job id from `repro submit`"
    )
    _add_client_options(result_parser)

    report_parser = sub.add_parser(
        "report", help="render the cached output of a previous run"
    )
    report_parser.add_argument("experiment", metavar="EXPERIMENT")
    report_parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        help="output format (default: text)",
    )
    report_parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write to a file instead of stdout",
    )
    report_parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="result-store directory the run was saved to",
    )
    report_parser.add_argument(
        "--store-backend",
        choices=backend_names(),
        default=None,
        help="result-store storage backend the run was saved with "
        "(default: $REPRO_STORE_BACKEND or dir)",
    )
    return parser


# ------------------------------------------------------------------- helpers
#: Deprecated flags already warned about this process (warn once per flag).
_WARNED_FLAGS: set = set()


def _warn_deprecated(flag: str, replacement: str) -> None:
    if flag in _WARNED_FLAGS:
        return
    _WARNED_FLAGS.add(flag)
    print(
        f"repro: warning: {flag} is deprecated; use {replacement}",
        file=sys.stderr,
    )


def _parse_benchmarks(args) -> Optional[list]:
    """Workloads from ``--tiny`` / ``--spec`` (plus the deprecated aliases).

    Every token — benchmark name, family token, ``tiny`` — goes through
    :func:`repro.api.scenario.resolve_token`, the same resolution path
    scenario wire payloads use, so an unknown name or bad family parameter
    fails here, before any simulation, with the same message everywhere.
    ``--benchmarks`` (comma-separated) and ``--workload`` are deprecated
    aliases that feed the same list.
    """
    benchmarks: list = []
    if getattr(args, "tiny", False):
        benchmarks.append(tiny_spec())
    elif getattr(args, "benchmarks", None) is not None:
        _warn_deprecated("--benchmarks", "--spec TOKEN (repeatable)")
        names = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
        if not names:
            raise ConfigurationError(
                "--benchmarks named no workloads (the benchmark axis is empty)"
            )
        benchmarks.extend(resolve_token(name) for name in names)
    for token in getattr(args, "workload", None) or ():
        _warn_deprecated("--workload", "--spec TOKEN")
        benchmarks.append(resolve_token(token))
    for token in getattr(args, "spec", None) or ():
        benchmarks.append(resolve_token(token))
    return benchmarks or None


def _parse_cores(args) -> Optional[list]:
    """Per-core workloads from repeated ``--core`` (same tokens as --spec)."""
    tokens = getattr(args, "core", None)
    if not tokens:
        return None
    return [resolve_token(token) for token in tokens]


def _parse_interleave(args) -> Optional[list]:
    """Round-robin quanta from ``--interleave N,M,...`` (requires --core)."""
    raw = getattr(args, "interleave", None)
    if raw is None:
        return None
    if not getattr(args, "core", None):
        raise ConfigurationError(
            "--interleave only applies to multi-core runs (add --core)"
        )
    try:
        quanta = [int(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise ConfigurationError(
            f"--interleave must be comma-separated integers, got {raw!r}"
        )
    if not quanta:
        raise ConfigurationError("--interleave named no quanta")
    return quanta


def _parse_policies(args) -> Optional[list]:
    """Structured policies from ``--policies`` tokens and ``--policy`` flags.

    Validated eagerly against the policy registry: an unknown name or
    parameter fails here with the offending token and the valid choices,
    before any simulation starts.
    """
    tokens: list[str] = []
    if getattr(args, "policies", None):
        tokens.extend(p.strip() for p in args.policies.split(",") if p.strip())
    if getattr(args, "policy", None):
        tokens.extend(args.policy)
    if not tokens:
        return None
    return [PolicySpec.of(token) for token in tokens]


def _make_store(args) -> Optional[ResultStore]:
    if args.no_cache:
        return None
    return ResultStore(
        root=args.store,
        refresh=args.refresh,
        backend=getattr(args, "store_backend", None),
    )


def _make_traces(args) -> Optional[TraceArchive]:
    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir is None:
        return None
    return TraceArchive(trace_dir)


def _make_context(args) -> ExperimentContext:
    config = NAMED_CONFIGS[args.config]()
    session = Session(
        config=config,
        store=_make_store(args),
        traces=_make_traces(args),
        engine=getattr(args, "engine", "auto"),
    )
    return ExperimentContext(
        config=config,
        session=session,
        benchmarks=_parse_benchmarks(args),
        policies=_parse_policies(args),
        jobs=args.jobs,
        cores=_parse_cores(args),
        interleave=_parse_interleave(args),
    )


def _cache_summary(ctx: ExperimentContext) -> str:
    store = ctx.store
    if store is None:
        # Every simulation flows through the session, so the count is exact
        # even for experiments that sweep configurations (figure9).
        summary = (
            f"# {ctx.session.simulations_run} simulation(s) run, cache disabled"
        )
    else:
        summary = (
            f"# {store.misses} simulation(s) run, {store.hits} served from "
            f"cache ({store.root})"
        )
        if store.corrupt:
            summary += (
                f"\n# store: {store.corrupt} corrupt entr"
                f"{'y' if store.corrupt == 1 else 'ies'} quarantined to "
                "*.corrupt and re-simulated"
            )
    traces = ctx.session.traces
    if traces is not None:
        summary += (
            f"\n# traces: {traces.hits} replayed, {traces.writes} captured "
            f"({traces.root})"
        )
        if traces.corrupt:
            summary += (
                f"\n# traces: {traces.corrupt} corrupt capture(s) "
                "quarantined to *.corrupt and regenerated"
            )
    return summary


def _save_report(ctx: ExperimentContext, name: str, text: str, data) -> None:
    store = ctx.store
    if store is None:
        return
    benchmarks = None
    if ctx.benchmarks is not None:
        benchmarks = [getattr(b, "name", b) for b in ctx.benchmarks]
    store.save_report(
        name,
        {
            "experiment": name,
            "config": ctx.config.name,
            "config_hash": ctx.config.content_hash(),
            "benchmarks": benchmarks,
            "text": text,
            "data": to_jsonable(data),
        },
    )


# --------------------------------------------------------------- subcommands
def _cmd_list(args) -> int:
    what = args.what
    if what in ("experiments", "all"):
        print("experiments:")
        for name in experiment_names():
            exp = REGISTRY[name]
            kind = "simulated" if exp.simulates else "static"
            print(f"  {name:22s} {exp.artifact:18s} [{kind}] {exp.description}")
    if what in ("benchmarks", "all"):
        print("proxy benchmarks (Table 2):")
        for name, spec in PROXY_BENCHMARKS.items():
            print(f"  {name:22s} {spec.description}")
        print("system components (Figure 1):")
        for name, spec in SYSTEM_COMPONENTS.items():
            print(f"  {name:22s} {spec.description}")
    if what in ("policies", "all"):
        print("replacement policies (see `repro policies` for parameters):")
        evaluated = set(EVALUATED_POLICIES)
        for name in available_policies():
            marks = []
            if name == BASELINE_POLICY:
                marks.append("baseline")
            if name in evaluated:
                marks.append("evaluated")
            suffix = f" ({', '.join(marks)})" if marks else ""
            print(f"  {name}{suffix}")
    return 0


def _cmd_policies(args) -> int:
    """Describe every registered policy: description, aliases, parameters."""
    print("replacement policies (policy syntax: name[:param=value,...]):")
    evaluated = set(EVALUATED_POLICIES)
    for info, params in describe_policies():
        marks = []
        if info.name == BASELINE_POLICY:
            marks.append("baseline")
        if info.name in evaluated:
            marks.append("evaluated")
        suffix = f" [{', '.join(marks)}]" if marks else ""
        print(f"  {info.name:10s} {info.description}{suffix}")
        if info.aliases:
            print(f"  {'':10s} aliases: {', '.join(info.aliases)}")
        if params:
            print(f"  {'':10s} params:  {params}")
    return 0


def _cmd_workloads(args) -> int:
    """Describe every workload family: description, aliases, parameters."""
    print("workload families (workload syntax: family[:param=value,...]):")
    for info, params in describe_families():
        print(f"  {info.name:14s} {info.description}")
        if info.aliases:
            print(f"  {'':14s} aliases: {', '.join(info.aliases)}")
        if params:
            print(f"  {'':14s} params:  {params}")
    print(
        "\nuse with `repro run EXPERIMENT --spec FAMILY[:param=value,...]`"
        " (repeatable; --workload\nis a deprecated alias), or"
        " programmatically via"
        " repro.workloads.WorkloadFamilySpec.parse(...).synthesize().\n"
        "add `--trace-dir DIR` to capture generated traces once and replay"
        " them on every\nlater run (see EXPERIMENTS.md for the archive"
        " layout)."
    )
    return 0


def _cmd_run(args) -> int:
    try:
        experiment = get_experiment(args.experiment)
    except KeyError as error:
        print(f"repro run: {error.args[0]}", file=sys.stderr)
        return 1
    ctx = _make_context(args)
    if args.jobs and not experiment.supports_jobs:
        print(
            f"repro run: note: {experiment.name} does not parallelise; "
            "--jobs ignored",
            file=sys.stderr,
        )
    if ctx.policies and not experiment.supports_policies:
        print(
            f"repro run: note: {experiment.name} reproduces a fixed policy "
            "list; --policy ignored",
            file=sys.stderr,
        )
    if (
        experiment.single_benchmark
        and ctx.benchmarks is not None
        and len(ctx.benchmarks) > 1
    ):
        print(
            f"repro run: note: {experiment.name} sweeps a single workload; "
            f"using only {getattr(ctx.benchmarks[0], 'name', ctx.benchmarks[0])!r}",
            file=sys.stderr,
        )
    result = experiment.run(ctx)
    text = experiment.format(result)
    print(f"== {experiment.artifact}: {experiment.description}")
    print(text)
    if experiment.simulates:
        print(_cache_summary(ctx))
    _save_report(ctx, experiment.name, text, result)
    return 0


def _render_sweep(sweep) -> str:
    return (
        "== Speedup over SRRIP (Figure 6 view)\n"
        + format_figure6(sweep)
        + "\n\n== L2 MPKI (Table 3 view)\n"
        + format_table3(sweep)
    )


def _cmd_sweep(args) -> int:
    from repro.experiments.supervisor import SupervisionPolicy

    if args.resume and (args.no_cache or args.refresh):
        raise ConfigurationError(
            "--resume replays the result store; it cannot be combined with "
            "--no-cache or --refresh"
        )
    ctx = _make_context(args)
    if ctx.store is None:
        # --no-cache: nothing durable to checkpoint against, so run the
        # plain in-memory sweep (failures raise, nothing resumes).
        sweep = ctx.session.sweep(
            benchmarks=ctx.benchmarks,
            policies=ctx.policies,
            jobs=ctx.jobs,
        )
        print(_render_sweep(sweep))
        print(_cache_summary(ctx))
        return 0
    checkpointed = ctx.session.sweep_checkpointed(
        benchmarks=ctx.benchmarks,
        policies=ctx.policies,
        jobs=ctx.jobs,
        supervision=SupervisionPolicy(
            max_retries=args.max_retries,
            unit_timeout=args.unit_timeout,
            backoff_base=args.retry_backoff,
            keep_going=args.keep_going,
        ),
        resume=args.resume,
    )
    report = checkpointed.report
    if report.complete:
        text = _render_sweep(checkpointed.sweep)
        print(text)
        print(report.summary_line())
        print(_cache_summary(ctx))
        _save_report(ctx, "sweep", text, checkpointed.sweep)
        return 0
    # Partial failure/interruption: no figure views (they would KeyError on
    # the missing cells).  Everything goes to stderr — stdout carries only
    # machine-readable experiment output, and a failed sweep has none, so a
    # consumer piping `repro sweep` sees an empty stream plus exit 1 instead
    # of diagnostics masquerading as data.
    print(report.summary_line(), file=sys.stderr)
    print(_cache_summary(ctx), file=sys.stderr)
    for failure in report.failures:
        print(f"repro sweep: {failure.describe()}", file=sys.stderr)
    missing = report.total - report.cached - report.succeeded
    reason = "was interrupted" if report.interrupted else "has failed units"
    print(
        f"repro sweep: sweep {reason}: {missing} of {report.total} unit(s) "
        "missing; completed work is saved — rerun with --resume to finish "
        f"(journal: {checkpointed.journal_path})",
        file=sys.stderr,
    )
    return 1


def _cmd_bench(args) -> int:
    """Run the engine-speed shapes and the lockstep sweep; assert floors."""
    from repro.experiments.bench import (
        ROUNDS,
        check_floors,
        format_report,
        load_floors,
        run_engine_bench,
    )

    report = run_engine_bench(
        rounds=args.rounds or ROUNDS,
        tiny=args.tiny,
        sweep=not args.no_sweep,
        engine=args.engine,
    )
    print(format_report(report))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"# report written to {args.output}")
    if args.no_floors:
        return 0
    violations = check_floors(report, load_floors())
    if violations:
        for violation in violations:
            print(f"repro bench: FAIL: {violation}", file=sys.stderr)
        return 1
    print("# all pinned speedup floors hold (see BENCH_baseline.json)")
    return 0


def _cmd_serve(args) -> int:
    """Run the simulation service daemon in the foreground."""
    from repro.server import JobManager, ReproServer

    if args.workers < 1:
        raise ConfigurationError("repro serve needs at least one worker")
    config_name = args.config

    def session_factory() -> Session:
        # One private session per worker thread (sessions are not
        # thread-safe); each gets its own store/archive *instances* over the
        # shared on-disk roots, which both backends handle concurrently.
        return Session(
            config=NAMED_CONFIGS[config_name](),
            store=_make_store(args),
            traces=_make_traces(args),
            engine=args.engine,
        )

    # Durability wiring: the journal records accepted submissions for
    # restart recovery, and the claim markers (on the shared store's
    # backend) dedup across replicas.  Both need a store to anchor to; a
    # cacheless daemon (--no-cache) runs without them unless --journal
    # names an explicit path.
    from repro.server.journal import SubmissionJournal

    anchor_store = _make_store(args)
    journal = None
    claims = None
    if not args.no_journal:
        if args.journal is not None:
            journal = SubmissionJournal(args.journal)
        elif anchor_store is not None:
            journal = SubmissionJournal.for_store(
                anchor_store.root, args.replica_id
            )
    if anchor_store is not None:
        claims = anchor_store.backend

    manager = JobManager(
        session_factory=session_factory,
        workers=args.workers,
        queue_size=args.queue_size,
        journal=journal,
        claims=claims,
        replica_id=args.replica_id,
        claim_ttl=args.claim_ttl,
    )
    server = ReproServer(
        manager,
        host=args.host,
        port=args.port,
        default_config=config_name,
        verbose=args.verbose,
    )
    server.install_signal_handlers()
    durability = (
        f"journal {journal.path}" if journal is not None else "no journal"
    )
    print(
        f"repro serve: listening on {server.url} "
        f"({args.workers} worker(s), queue capacity {args.queue_size}, "
        f"config {config_name}, replica {args.replica_id}, {durability})",
        file=sys.stderr,
    )
    recovered = manager.recover()
    if recovered:
        print(
            f"repro serve: recovered {recovered} unfinished job(s) from "
            f"{journal.path}",
            file=sys.stderr,
        )
    if args.ready_file:
        with open(args.ready_file, "w", encoding="utf-8") as handle:
            handle.write(server.url + "\n")
    server.serve_forever()
    print("repro serve: drained and stopped", file=sys.stderr)
    return 0


def _build_submission(args) -> dict:
    """A submission payload from ``repro submit`` flags (or ``--json``).

    Flag-built payloads go through :meth:`Scenario.to_dict` — the same
    serializer the server's ``Scenario.from_dict`` consumes — so the CLI
    validates every token locally (unknown workloads/policies fail before
    any HTTP) and the wire form cannot drift from the scenario schema.
    """
    if args.json is not None:
        if args.json == "-":
            raw = sys.stdin.read()
        else:
            with open(args.json, "r", encoding="utf-8") as handle:
                raw = handle.read()
        try:
            payload = json.loads(raw)
        except ValueError as error:
            raise ConfigurationError(f"--json payload is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise ConfigurationError("--json payload must be a JSON object")
        return payload
    benchmarks: list[str] = []
    if args.tiny:
        benchmarks.append("tiny")
    if args.benchmarks:
        _warn_deprecated("--benchmarks", "--spec TOKEN (repeatable)")
        benchmarks.extend(
            name.strip() for name in args.benchmarks.split(",") if name.strip()
        )
    benchmarks.extend(args.spec or ())
    cores = list(args.core or ())
    if not benchmarks and not cores:
        raise ConfigurationError(
            "repro submit needs --tiny, --spec, --core or --json"
        )
    if benchmarks and cores:
        raise ConfigurationError(
            "--core (multi-core) and --spec/--tiny/--benchmarks (single-core) "
            "are mutually exclusive"
        )
    policies = None
    if args.policies:
        policies = [
            token.strip() for token in args.policies.split(",") if token.strip()
        ]
    scenario = Scenario(
        benchmarks=[resolve_token(t) for t in benchmarks],
        cores=[resolve_token(t) for t in cores],
        interleave=_parse_interleave(args) or (),
        policies=policies or ("lru",),
        track_reuse=args.track_reuse,
        label=args.label or "",
    )
    submission = scenario.to_dict()
    # Fields the user did not set stay off the wire so the server applies
    # its own defaults (notably --config: the daemon's default, not ours).
    submission["config"] = args.config  # to_dict: None when we set no config
    if policies is None:
        del submission["policies"]
    for field in (
        "benchmarks",
        "cores",
        "interleave",
        "config",
        "warmup_instructions",
        "measure_instructions",
        "label",
    ):
        if not submission.get(field):
            del submission[field]
    if not args.track_reuse:
        del submission["track_reuse"]
    return submission


def _client_call(args, call) -> int:
    """Run one client interaction with uniform connection/error reporting.

    Stdout stays machine-readable (JSON only); every diagnostic goes to
    stderr with exit 1.
    """
    from repro.client import (
        ConnectionFailed,
        JobFailed,
        MalformedResponse,
        ReproClient,
        ServiceError,
    )

    client = ReproClient(
        args.url, timeout=args.timeout, retry=getattr(args, "retries", 0)
    )
    try:
        print(json.dumps(call(client), indent=1))
        return 0
    except JobFailed as error:
        print(
            f"repro: job {error.job} failed: "
            f"{error.error.get('type')}: {error.error.get('message')}",
            file=sys.stderr,
        )
        return 1
    except (ServiceError, ConnectionFailed, MalformedResponse) as error:
        print(f"repro: {error}", file=sys.stderr)
        return 1
    except TimeoutError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 1


def _cmd_submit(args) -> int:
    submission = _build_submission(args)

    def call(client):
        accepted = client.submit(submission, busy_retries=args.busy_retries)
        if not args.wait:
            return accepted
        client.wait(accepted["job"])
        return client.result(accepted["job"])

    return _client_call(args, call)


def _cmd_status(args) -> int:
    if args.jobs:
        if args.job is not None:
            raise ConfigurationError(
                "repro status --jobs lists every job; drop the job id"
            )
        return _client_call(args, lambda client: client.jobs())
    if args.job is None:
        return _client_call(args, lambda client: client.metrics())
    return _client_call(args, lambda client: client.status(args.job))


def _cmd_result(args) -> int:
    return _client_call(args, lambda client: client.result(args.job))


def _cmd_report(args) -> int:
    store = ResultStore(root=args.store, backend=args.store_backend)
    payload = store.load_report(args.experiment)
    if payload is None:
        print(
            f"repro report: no cached report for {args.experiment!r} in "
            f"{store.root} — run `repro run {args.experiment}` first",
            file=sys.stderr,
        )
        return 1
    # Provenance on stderr so piped CSV/JSON stays clean: the report is
    # whatever the *last* `repro run` wrote, which may have been a --tiny
    # smoke run or a benchmark subset.
    benchmarks = payload.get("benchmarks")
    scope = ",".join(benchmarks) if benchmarks else "default benchmark list"
    print(
        f"# report from `repro run {args.experiment}` "
        f"(config={payload.get('config')}, benchmarks={scope})",
        file=sys.stderr,
    )
    stats = store.stats()
    print(
        f"# store: {store.backend.describe()}; "
        f"{len(store.backend.keys('runs'))} cached run(s), "
        f"{stats['hits']} hit(s), {stats['corrupt']} corrupt this lookup",
        file=sys.stderr,
    )
    from repro.server.journal import summarize_journals

    journal_line = summarize_journals(store.root)
    if journal_line is not None:
        print(f"# {journal_line}", file=sys.stderr)
    if args.format == "text":
        rendered = payload["text"]
    elif args.format == "json":
        rendered = json.dumps(payload["data"], indent=1)
    else:
        rendered = render_csv(payload["data"])
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered if rendered.endswith("\n") else rendered + "\n")
    else:
        print(rendered.rstrip("\n"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "policies":
            return _cmd_policies(args)
        if args.command == "workloads":
            return _cmd_workloads(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "result":
            return _cmd_result(args)
        if args.command == "report":
            return _cmd_report(args)
    except (ConfigurationError, WorkloadError) as error:
        print(f"repro: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into a consumer that exited early (e.g. `head`).
        sys.stderr.close()
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
