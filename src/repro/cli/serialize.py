"""Generic result-to-JSON/CSV conversion for ``repro run`` / ``repro report``.

Experiment results are plain dataclasses (rows, points, sweep containers),
so one structural walk covers all of them: dataclasses become dicts, enums
their values, tuples become lists, and non-string dict keys are stringified.
CSV output flattens nested structures into dotted column names — best-effort,
but stable, so downstream scripts can rely on the headers.
"""

from __future__ import annotations

import csv
import io
from typing import Any

from repro.common.hashing import canonical_payload


def to_jsonable(obj: Any) -> Any:
    """Reduce an experiment result to JSON-serialisable primitives.

    Same structural walk the result store hashes with, but lenient: unknown
    types render as ``str(obj)`` instead of failing.
    """
    return canonical_payload(obj, strict=False)


def _flatten(value: Any, prefix: str, row: dict[str, Any]) -> None:
    if isinstance(value, dict):
        for k, v in value.items():
            _flatten(v, f"{prefix}.{k}" if prefix else str(k), row)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _flatten(item, f"{prefix}.{index}" if prefix else str(index), row)
    else:
        row[prefix or "value"] = value


def csv_rows(data: Any) -> tuple[list[str], list[dict[str, Any]]]:
    """(headers, rows) for CSV output of a jsonable experiment result.

    A list becomes one CSV row per element; anything else becomes a single
    row.  Headers are the union of flattened keys in first-seen order.
    """
    items = data if isinstance(data, list) else [data]
    rows: list[dict[str, Any]] = []
    headers: list[str] = []
    for item in items:
        row: dict[str, Any] = {}
        _flatten(to_jsonable(item), "", row)
        rows.append(row)
        for key in row:
            if key not in headers:
                headers.append(key)
    return headers, rows


def render_csv(data: Any) -> str:
    headers, rows = csv_rows(data)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=headers, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()
