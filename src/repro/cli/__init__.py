"""Command-line front door for the reproduction (the ``repro`` command).

Installed as a ``console_scripts`` entry point by ``setup.py``; also runnable
without installation as ``python -m repro.cli``.  Subcommands:

* ``repro list`` — the experiment catalog, benchmarks and policies;
* ``repro run`` — regenerate any registered figure/table/ablation, serving
  repeated runs from the on-disk result store;
* ``repro sweep`` — arbitrary (benchmark × policy) grids with ``--jobs``
  process parallelism;
* ``repro report`` — re-render the cached output of a previous ``run`` as
  text, JSON or CSV without simulating anything.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
