"""MMU model: translation plus temperature tagging of memory requests.

Steps 10-11 of Figure 4: instruction fetches are translated from virtual to
physical addresses; the PTE's implementation-defined bits are read during the
walk and travel with the memory request to the caches, where TRRIP's
replacement policy consumes them.

Data pages and any unmapped region are demand-mapped without a temperature, so
data lines and untagged instruction lines fall back to default RRIP behaviour
exactly as the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SimulationError
from repro.common.temperature import Temperature
from repro.osmodel.page_table import PageTable


@dataclass
class MMUStats:
    """Counters kept by the MMU."""

    instruction_translations: int = 0
    data_translations: int = 0
    tagged_translations: int = 0
    demand_mappings: int = 0


class MMU:
    """Translates virtual addresses and attaches PTE temperature bits."""

    def __init__(
        self,
        page_table: PageTable,
        demand_paging: bool = True,
    ) -> None:
        self.page_table = page_table
        self.page_size = page_table.page_size
        self.demand_paging = demand_paging
        self.stats = MMUStats()
        #: ``vpn -> physical frame`` cache for data translations.  Mappings
        #: are never changed or revoked once established, so the cache stays
        #: coherent for the lifetime of the MMU; it turns the per-access page
        #: walk of the simulation hot loop into one dict lookup.
        self._data_frame_cache: dict[int, int] = {}

    # ------------------------------------------------------------ translation
    def _translate(self, vaddr: int, executable: bool) -> tuple[int, Temperature]:
        if vaddr < 0:
            raise SimulationError(f"negative virtual address {vaddr}")
        vpn = vaddr // self.page_size
        offset = vaddr % self.page_size
        entry = self.page_table.lookup(vpn)
        if entry is None:
            if not self.demand_paging:
                raise SimulationError(
                    f"access to unmapped virtual page {vpn:#x} (vaddr {vaddr:#x})"
                )
            entry = self.page_table.map_page(
                vpn,
                executable=executable,
                writable=not executable,
                temperature=Temperature.NONE,
            )
            self.stats.demand_mappings += 1
        paddr = entry.physical_frame * self.page_size + offset
        temperature = entry.temperature
        if temperature.is_tagged:
            self.stats.tagged_translations += 1
        return paddr, temperature

    def translate_instruction(self, vaddr: int) -> tuple[int, Temperature]:
        """Translate an instruction fetch; returns (paddr, temperature)."""
        self.stats.instruction_translations += 1
        return self._translate(vaddr, executable=True)

    def translate_data(self, vaddr: int) -> tuple[int, Temperature]:
        """Translate a data access; data pages carry no temperature.

        The current TRRIP implementation has no temperature hints for data
        lines (Section 3.4), so the attribute is always ``NONE`` even if the
        data page happens to alias a tagged code page.
        """
        return self.translate_data_addr(vaddr), Temperature.NONE

    def translate_data_addr(self, vaddr: int) -> int:
        """Physical address of a data access, without the temperature tuple.

        Fast-path variant of :meth:`translate_data` for callers that discard
        the (always ``NONE``) data temperature — skips the tuple allocation
        per access in the simulation hot loop.
        """
        self.stats.data_translations += 1
        page_size = self.page_size
        frame = self._data_frame_cache.get(vaddr // page_size)
        if frame is not None:
            return frame * page_size + vaddr % page_size
        paddr, _temperature = self._translate(vaddr, executable=False)
        self._data_frame_cache[vaddr // page_size] = paddr // page_size
        return paddr
