"""Operating-system substrate: pages, page tables, loader and MMU."""

from repro.osmodel.loader import LoadedProgram, LoaderConfig, OverlapPolicy, ProgramLoader
from repro.osmodel.mmu import MMU, MMUStats
from repro.osmodel.page_table import PageTable
from repro.osmodel.pages import (
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    PAGE_SIZE_16K,
    SUPPORTED_PAGE_SIZES,
    PageTableEntry,
    count_pages_by_temperature,
    pages_spanned,
)

__all__ = [
    "ProgramLoader",
    "LoaderConfig",
    "LoadedProgram",
    "OverlapPolicy",
    "MMU",
    "MMUStats",
    "PageTable",
    "PageTableEntry",
    "count_pages_by_temperature",
    "pages_spanned",
    "PAGE_SIZE_4K",
    "PAGE_SIZE_16K",
    "PAGE_SIZE_2M",
    "SUPPORTED_PAGE_SIZES",
]
