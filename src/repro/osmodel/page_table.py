"""Per-process page table with a simple physical frame allocator."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import LoaderError
from repro.common.temperature import Temperature
from repro.osmodel.pages import PageTableEntry


class PageTable:
    """Maps virtual page numbers to :class:`PageTableEntry` objects.

    Physical frames are handed out by a bump allocator with a deterministic
    randomised offset per mapping call disabled — frames are sequential, which
    keeps physical-address-indexed caches deterministic across runs.
    """

    def __init__(self, page_size: int = 4096) -> None:
        if page_size <= 0:
            raise LoaderError("page_size must be positive")
        self.page_size = page_size
        self._entries: dict[int, PageTableEntry] = {}
        self._next_frame = 1  # frame 0 reserved (null page)

    # ------------------------------------------------------------- mappings
    def map_page(
        self,
        virtual_page: int,
        executable: bool = False,
        writable: bool = True,
        temperature: Temperature = Temperature.NONE,
        physical_frame: Optional[int] = None,
    ) -> PageTableEntry:
        """Create (or overwrite attributes of) a mapping for ``virtual_page``."""
        if virtual_page < 0:
            raise LoaderError("virtual page numbers must be non-negative")
        existing = self._entries.get(virtual_page)
        if existing is not None:
            existing.executable = executable or existing.executable
            existing.writable = writable and existing.writable
            existing.set_temperature(temperature)
            return existing
        frame = physical_frame if physical_frame is not None else self._allocate_frame()
        entry = PageTableEntry(
            virtual_page=virtual_page,
            physical_frame=frame,
            executable=executable,
            writable=writable,
            attribute_bits=temperature.to_bits(),
        )
        self._entries[virtual_page] = entry
        return entry

    def _allocate_frame(self) -> int:
        frame = self._next_frame
        self._next_frame += 1
        return frame

    # -------------------------------------------------------------- lookups
    def lookup(self, virtual_page: int) -> Optional[PageTableEntry]:
        """Return the PTE for ``virtual_page`` or ``None`` if unmapped."""
        return self._entries.get(virtual_page)

    def is_mapped(self, virtual_page: int) -> bool:
        return virtual_page in self._entries

    def entry_count(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[PageTableEntry]:
        return iter(self._entries.values())

    def pages_with_temperature(self, temperature: Temperature) -> int:
        """How many mapped pages carry a given temperature attribute."""
        return sum(1 for e in self._entries.values() if e.temperature is temperature)

    def clear(self) -> None:
        self._entries.clear()
        self._next_frame = 1
