"""Pages and page table entries with PBHA-style attribute bits.

The OS interface of TRRIP (Section 3.3) stores code temperature in
implementation-defined PTE bits that commercial ARM cores already forward with
memory requests (PBHA).  A :class:`PageTableEntry` therefore carries, besides
the physical frame and permissions, a two-bit ``attribute`` field decoded as a
:class:`~repro.common.temperature.Temperature`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import LoaderError
from repro.common.temperature import Temperature
from repro.compiler.elf import ELFImage

#: Page sizes exercised by Table 5 of the paper.
PAGE_SIZE_4K = 4 * 1024
PAGE_SIZE_16K = 16 * 1024
PAGE_SIZE_2M = 2 * 1024 * 1024
SUPPORTED_PAGE_SIZES = (PAGE_SIZE_4K, PAGE_SIZE_16K, PAGE_SIZE_2M)


@dataclass
class PageTableEntry:
    """One PTE: translation, permissions and the PBHA temperature bits."""

    virtual_page: int
    physical_frame: int
    executable: bool = False
    writable: bool = True
    attribute_bits: int = 0

    def __post_init__(self) -> None:
        if self.virtual_page < 0 or self.physical_frame < 0:
            raise LoaderError("page numbers must be non-negative")
        if not 0 <= self.attribute_bits <= 3:
            raise LoaderError(
                f"attribute bits must fit in two bits, got {self.attribute_bits}"
            )

    @property
    def temperature(self) -> Temperature:
        """Decode the PBHA bits as a code temperature."""
        return Temperature.from_bits(self.attribute_bits)

    def set_temperature(self, temperature: Temperature) -> None:
        self.attribute_bits = temperature.to_bits()


def pages_spanned(start: int, size: int, page_size: int) -> int:
    """Number of pages touched by the byte range ``[start, start+size)``."""
    if size <= 0:
        return 0
    first = start // page_size
    last = (start + size - 1) // page_size
    return last - first + 1


def count_pages_by_temperature(
    image: ELFImage, page_size: int
) -> dict[Temperature, int]:
    """Pages needed per temperature section, rounded up (Table 5).

    Table 5 reports, per benchmark and page size, the number of pages used by
    the hot and warm text sections "rounded up to the nearest full page";
    each section is counted independently because sections of different
    temperature are never shared intentionally.
    """
    if page_size <= 0:
        raise LoaderError("page_size must be positive")
    counts: dict[Temperature, int] = {
        Temperature.HOT: 0,
        Temperature.WARM: 0,
        Temperature.COLD: 0,
        Temperature.NONE: 0,
    }
    for section in image.sections:
        if section.size_bytes == 0:
            continue
        full_pages = -(-section.size_bytes // page_size)  # ceil division
        counts[section.temperature] += max(full_pages, 1)
    return counts
