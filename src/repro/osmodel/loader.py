"""Program loader: map a compiled ELF image into pages and set PTE bits.

This models steps 6-8 of Figure 4: the loader reads the program headers of the
re-optimised ELF (which carry per-section temperature), calls into the OS to
allocate pages and PTEs, and populates the implementation-defined PTE bits
with each code page's temperature.

Section 4.9 of the paper discusses what happens when a page straddles two
sections of different temperature (increasingly likely with large pages).
:class:`OverlapPolicy` exposes the prevention mechanisms discussed there:

* ``MAJORITY`` — tag the page with the temperature covering most of its bytes
  (the paper's implicit default risk: a warm page may be treated as hot);
* ``DISABLE``  — leave straddling pages untagged (prevention mechanism 2);
* ``FIRST``    — tag with the lower-addressed section's temperature.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import LoaderError
from repro.common.temperature import Temperature
from repro.compiler.elf import ELFImage
from repro.compiler.pgo import CompiledBinary
from repro.osmodel.page_table import PageTable
from repro.osmodel.pages import pages_spanned


class OverlapPolicy(enum.Enum):
    """How to tag a page that overlaps sections of different temperature."""

    MAJORITY = "majority"
    DISABLE = "disable"
    FIRST = "first"


@dataclass
class LoaderConfig:
    """Loader behaviour knobs."""

    page_size: int = 4096
    overlap_policy: OverlapPolicy = OverlapPolicy.MAJORITY
    #: When False the loader ignores temperature entirely (baseline systems
    #: without TRRIP support: every page is untagged).
    propagate_temperature: bool = True

    def validate(self) -> None:
        if self.page_size <= 0:
            raise LoaderError("page_size must be positive")


@dataclass
class LoadedProgram:
    """Result of loading a binary: its page table plus accounting data."""

    binary: CompiledBinary
    page_table: PageTable
    page_size: int
    code_pages: int = 0
    tagged_pages: int = 0
    mixed_temperature_pages: int = 0
    pages_by_temperature: dict[Temperature, int] = field(default_factory=dict)


class ProgramLoader:
    """Maps ELF code sections (and the external region) into a page table."""

    def __init__(self, config: LoaderConfig | None = None) -> None:
        self.config = config or LoaderConfig()
        self.config.validate()

    def load(self, binary: CompiledBinary) -> LoadedProgram:
        """Allocate pages and PTEs for every code section of ``binary``."""
        page_size = self.config.page_size
        page_table = PageTable(page_size=page_size)
        image = binary.image

        page_temperatures = self._page_temperatures(image, page_size)
        mixed = sum(1 for temps in page_temperatures.values() if len(temps) > 1)

        pages_by_temperature: dict[Temperature, int] = {
            Temperature.HOT: 0,
            Temperature.WARM: 0,
            Temperature.COLD: 0,
            Temperature.NONE: 0,
        }
        tagged = 0
        for vpn, byte_counts in sorted(page_temperatures.items()):
            temperature = self._resolve_temperature(byte_counts)
            if not self.config.propagate_temperature:
                temperature = Temperature.NONE
            page_table.map_page(
                vpn, executable=True, writable=False, temperature=temperature
            )
            pages_by_temperature[temperature] += 1
            if temperature.is_tagged:
                tagged += 1

        self._map_external(image, page_table)

        return LoadedProgram(
            binary=binary,
            page_table=page_table,
            page_size=page_size,
            code_pages=len(page_temperatures),
            tagged_pages=tagged,
            mixed_temperature_pages=mixed,
            pages_by_temperature=pages_by_temperature,
        )

    # ------------------------------------------------------------- internals
    def _page_temperatures(
        self, image: ELFImage, page_size: int
    ) -> dict[int, dict[Temperature, int]]:
        """For every code page, how many bytes of each temperature it holds."""
        pages: dict[int, dict[Temperature, int]] = {}
        for section in image.sections:
            if section.size_bytes == 0:
                continue
            cursor = section.vaddr
            remaining = section.size_bytes
            while remaining > 0:
                vpn = cursor // page_size
                page_end = (vpn + 1) * page_size
                chunk = min(remaining, page_end - cursor)
                pages.setdefault(vpn, {})
                pages[vpn][section.temperature] = (
                    pages[vpn].get(section.temperature, 0) + chunk
                )
                cursor += chunk
                remaining -= chunk
        return pages

    def _resolve_temperature(self, byte_counts: dict[Temperature, int]) -> Temperature:
        tagged_counts = {
            temp: count for temp, count in byte_counts.items() if temp.is_tagged
        }
        if not tagged_counts:
            return Temperature.NONE
        if len(byte_counts) == 1:
            return next(iter(byte_counts))
        policy = self.config.overlap_policy
        if policy is OverlapPolicy.DISABLE:
            return Temperature.NONE
        if policy is OverlapPolicy.FIRST:
            # The lower-addressed section appears "first"; with the Figure 5
            # layout that is always the hotter of the overlapping sections.
            for temperature in Temperature.order():
                if temperature in byte_counts:
                    return temperature
            return Temperature.NONE
        # MAJORITY
        return max(byte_counts, key=lambda temp: (byte_counts[temp], -int(temp)))

    def _map_external(self, image: ELFImage, page_table: PageTable) -> None:
        """Map the external (non-compiled) code region without temperature."""
        if image.external_size <= 0:
            return
        page_size = self.config.page_size
        num_pages = pages_spanned(image.external_base, image.external_size, page_size)
        first = image.external_base // page_size
        for vpn in range(first, first + num_pages):
            page_table.map_page(
                vpn, executable=True, writable=False, temperature=Temperature.NONE
            )
