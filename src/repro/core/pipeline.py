"""End-to-end TRRIP co-design pipeline (Figure 4).

The pipeline wires every substrate together in the order the paper describes:

1. build the synthetic program for a workload spec (source code stand-in);
2. compile it without a profile (ELF1) — implicitly, the instrumented binary;
3. run the training input to collect the instrumentation profile;
4. re-compile with the profile (ELF2): temperature classification (Eq. 1/2)
   and temperature-separated code layout;
5. load ELF2: allocate pages, populate PTEs with PBHA temperature bits;
6. hand back everything a simulator needs: the MMU (translation + tagging)
   and an evaluation-input trace generator.

Setting ``apply_pgo=False`` produces the non-PGO baseline of Figure 2;
``propagate_temperature=False`` models running a TRRIP-compiled binary on a
system whose loader ignores the temperature attributes (hardware-only
baselines like SRRIP/CLIP/Emissary do not need the bits, and TRRIP degrades
gracefully to SRRIP behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.compiler.classify import ClassifierConfig
from repro.compiler.layout import LayoutConfig
from repro.compiler.pgo import CompiledBinary, PGOCompiler
from repro.compiler.profile import InstrumentationProfile
from repro.osmodel.loader import LoadedProgram, LoaderConfig, OverlapPolicy, ProgramLoader
from repro.osmodel.mmu import MMU
from repro.workloads.builder import SyntheticProgramBuilder, SyntheticWorkload
from repro.workloads.profiling import collect_profile
from repro.workloads.spec import InputSet, WorkloadSpec
from repro.workloads.tracegen import TraceGenerator


@dataclass
class PipelineOptions:
    """Knobs of the co-design flow."""

    apply_pgo: bool = True
    propagate_temperature: bool = True
    percentile_hot: float = 0.99
    percentile_cold: float = 0.9999
    page_size: int = 4096
    overlap_policy: OverlapPolicy = OverlapPolicy.MAJORITY
    pad_sections_to_page: bool = False

    def cache_key(self) -> tuple:
        """Hashable identity of these options (runner caches, plan dedup)."""
        return (
            self.apply_pgo,
            self.propagate_temperature,
            self.percentile_hot,
            self.percentile_cold,
            self.page_size,
            self.overlap_policy,
            self.pad_sections_to_page,
        )

    def classifier_config(self) -> ClassifierConfig:
        return ClassifierConfig(
            percentile_hot=self.percentile_hot,
            percentile_cold=max(self.percentile_cold, self.percentile_hot),
        )

    def layout_config(self) -> LayoutConfig:
        return LayoutConfig(
            pad_sections_to_page=self.pad_sections_to_page,
            page_size=self.page_size,
        )

    def loader_config(self) -> LoaderConfig:
        return LoaderConfig(
            page_size=self.page_size,
            overlap_policy=self.overlap_policy,
            propagate_temperature=self.propagate_temperature,
        )


@dataclass
class PreparedWorkload:
    """Everything needed to simulate one benchmark."""

    spec: WorkloadSpec
    workload: SyntheticWorkload
    binary: CompiledBinary
    loaded: LoadedProgram
    profile: Optional[InstrumentationProfile] = None
    options: PipelineOptions = field(default_factory=PipelineOptions)

    def mmu(self) -> MMU:
        """A fresh MMU over the loaded program's page table."""
        return MMU(self.loaded.page_table)

    def trace_generator(
        self, input_set: InputSet = InputSet.EVALUATION
    ) -> TraceGenerator:
        """A fresh trace generator over the compiled binary."""
        return TraceGenerator(self.workload, self.binary, input_set)

    @property
    def pgo_applied(self) -> bool:
        return self.binary.pgo_applied


class CoDesignPipeline:
    """Compiler → OS → hardware preparation flow for one workload."""

    def __init__(self, options: PipelineOptions | None = None) -> None:
        self.options = options or PipelineOptions()
        self._builder = SyntheticProgramBuilder()

    def prepare(self, spec: WorkloadSpec) -> PreparedWorkload:
        """Run the full software-side flow for ``spec``."""
        options = self.options
        workload = self._builder.build(spec)
        compiler = PGOCompiler(
            classifier_config=options.classifier_config(),
            layout_config=options.layout_config(),
        )

        profile: Optional[InstrumentationProfile] = None
        if options.apply_pgo:
            profile = collect_profile(workload)
            binary = compiler.compile_with_pgo(workload.program, profile)
        else:
            binary = compiler.compile_without_pgo(workload.program)

        loader = ProgramLoader(options.loader_config())
        loaded = loader.load(binary)
        return PreparedWorkload(
            spec=spec,
            workload=workload,
            binary=binary,
            loaded=loaded,
            profile=profile,
            options=options,
        )
