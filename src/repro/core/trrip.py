"""TRRIP: Temperature-based Re-Reference Interval Prediction (Algorithm 1).

This is the paper's hardware contribution: a small extension of RRIP insertion
and hit-promotion driven by the code-temperature attribute that arrives with
each instruction memory request (from the MMU / PTE bits).  The eviction
mechanism is untouched RRIP aging.

Behaviour per Algorithm 1 (2-bit RRPVs):

=====================  ==========================  ==========================
event                  TRRIP-1                      TRRIP-2
=====================  ==========================  ==========================
hit, hot line          RRPV = Immediate (0)         RRPV = Immediate (0)
hit, warm/cold line    default (Immediate)          RRPV = max(RRPV - 1, 0)
hit, untagged/data     default (Immediate)          default (Immediate)
miss fill, hot line    insert at Immediate (0)      insert at Immediate (0)
miss fill, warm line   default (Intermediate, 2)    insert at Near (1)
miss fill, cold line   default (Intermediate, 2)    default (Intermediate, 2)
miss fill, untagged    default (Intermediate, 2)    default (Intermediate, 2)
=====================  ==========================  ==========================

The policy only reacts to *instruction* requests carrying a valid temperature;
data lines and untagged instruction lines obey baseline SRRIP, exactly as
Section 3.4 specifies ("TRRIP's replacement policy features only trigger on
instruction memory requests containing valid temperature information").
"""

from __future__ import annotations

from repro.cache.replacement.rrip import RRIPBase
from repro.common.request import MemoryRequest
from repro.common.temperature import Temperature


class TRRIPPolicy(RRIPBase):
    """Temperature-based RRIP replacement (paper's Algorithm 1).

    Parameters
    ----------
    variant:
        ``1`` — only *hot* instruction lines are treated specially (insert and
        promote at Immediate re-reference).
        ``2`` — additionally, *warm* lines are inserted at Near re-reference
        and warm/cold hits are conservatively decremented instead of being
        promoted straight to Immediate.
    """

    name = "trrip"

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        rrpv_bits: int = 2,
        variant: int = 1,
    ) -> None:
        super().__init__(num_sets, num_ways, rrpv_bits)
        if variant not in (1, 2):
            raise ValueError(f"TRRIP variant must be 1 or 2, got {variant}")
        self.variant = variant
        self.name = f"trrip-{variant}"

    # ------------------------------------------------------------------ hits
    def on_hit(self, set_index: int, way: int, request: MemoryRequest) -> None:
        temperature = self._effective_temperature(request)
        if temperature is Temperature.HOT:
            # TRRIP variant 1 & 2: hot lines predicted immediate re-reference.
            self.set_rrpv(set_index, way, self.rrpv_immediate)
            return
        if self.variant == 2 and temperature in (Temperature.WARM, Temperature.COLD):
            # TRRIP variant 2 only: conservative decrement so hot lines keep
            # exclusive claim to the Immediate position.
            current = self.rrpv(set_index, way)
            self.set_rrpv(set_index, way, max(current - 1, self.rrpv_immediate))
            return
        # Default RRIP behaviour (data lines, untagged lines, and warm/cold in
        # variant 1).
        self.set_rrpv(set_index, way, self.rrpv_immediate)

    # ------------------------------------------------------------------ fills
    def insertion_rrpv(self, set_index: int, request: MemoryRequest) -> int:
        temperature = self._effective_temperature(request)
        if temperature is Temperature.HOT:
            # TRRIP variant 1 & 2: prevent premature eviction of hot code.
            return self.rrpv_immediate
        if self.variant == 2 and temperature is Temperature.WARM:
            # TRRIP variant 2 only: warm code above data, below hot code.
            return self.rrpv_near
        # Default behaviour (SRRIP insertion).
        return self.rrpv_intermediate

    # ------------------------------------------------------------------ util
    @staticmethod
    def _effective_temperature(request: MemoryRequest) -> Temperature:
        """Temperature the policy is allowed to react to.

        Only instruction requests with valid temperature bits trigger TRRIP
        behaviour; everything else is treated as untagged.
        """
        if request.is_instruction and request.temperature.is_tagged:
            return request.temperature
        return Temperature.NONE
