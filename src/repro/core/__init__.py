"""The paper's contribution: the TRRIP policy and the co-design pipeline."""

from repro.core.pipeline import (
    CoDesignPipeline,
    PipelineOptions,
    PreparedWorkload,
)
from repro.core.trrip import TRRIPPolicy

__all__ = [
    "TRRIPPolicy",
    "CoDesignPipeline",
    "PipelineOptions",
    "PreparedWorkload",
]
