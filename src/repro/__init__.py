"""TRRIP reproduction library.

A full-system, pure-Python reproduction of "A TRRIP Down Memory Lane:
Temperature-Based Re-Reference Interval Prediction For Instruction Caching"
(MICRO 2025): the TRRIP replacement policy and its compiler / OS / hardware
co-design pipeline, together with every substrate the evaluation needs
(cache hierarchy, replacement-policy zoo, mechanistic CPU model, synthetic
PGO compiler, OS loader/MMU, workload generators) and an experiment harness
that regenerates every table and figure of the paper.

Quick start::

    from repro import CoDesignPipeline, SimulatorConfig, SystemSimulator
    from repro.workloads import get_spec, InputSet

    pipeline = CoDesignPipeline()
    prepared = pipeline.prepare(get_spec("sqlite"))
    config = SimulatorConfig.scaled().with_l2_policy("trrip-1")
    simulator = SystemSimulator(config, translator=prepared.mmu(),
                                benchmark="sqlite")
    generator = prepared.trace_generator(InputSet.EVALUATION)
    simulator.warm_up(generator.records(prepared.spec.warmup_instructions))
    result = simulator.run(generator.records(prepared.spec.eval_instructions))
    print(result.l2_inst_mpki, result.ipc)
"""

from repro.common import MemoryRequest, Temperature
from repro.core import CoDesignPipeline, PipelineOptions, PreparedWorkload, TRRIPPolicy
from repro.sim import (
    BASELINE_POLICY,
    EVALUATED_POLICIES,
    SimulationResult,
    SimulatorConfig,
    SystemSimulator,
)

__version__ = "1.0.0"

__all__ = [
    "Temperature",
    "MemoryRequest",
    "TRRIPPolicy",
    "CoDesignPipeline",
    "PipelineOptions",
    "PreparedWorkload",
    "SimulatorConfig",
    "SystemSimulator",
    "SimulationResult",
    "EVALUATED_POLICIES",
    "BASELINE_POLICY",
    "__version__",
]
