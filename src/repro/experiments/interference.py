"""Multi-core contention: co-run vs solo slowdown per replacement policy.

For each policy, every core workload is simulated twice: *solo* (the whole
hierarchy to itself — the legacy single-core path, so these points share
store entries with every other experiment) and *co-run* (all cores
interleaved over one shared L2/SLC).  The ratio ``solo_ipc / corun_ipc`` is
the interference slowdown of that core under that policy (1.0 = no
interference), reported next to the shared-cache pressure counters
(inter-core evictions, final occupancy share).

The interesting comparison is a conventional policy (``lru``) against the
way-partitioned variant (``partition:base=lru``): partitioning confines each
core's fills to its own ways, trading some solo capacity for isolation —
inter-core evictions drop to (near) zero and the slowdown of the
cache-sensitive core shrinks.

CLI: ``repro run interference --core zipf:alpha=1.2 --core streaming``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.api.scenario import Scenario
from repro.api.session import Session
from repro.cache.replacement.spec import PolicySpec
from repro.common.errors import ConfigurationError
from repro.sim.multicore import MulticoreResult

#: Default co-run pair: a cache-sensitive skewed-reuse stream next to a
#: streaming scan — the classic victim/aggressor contention shape.
DEFAULT_CORES = ("zipf:alpha=1.2", "streaming")

#: Default policy axis: shared LRU vs its way-partitioned (QoS) variant.
DEFAULT_POLICIES = ("lru", "partition:base=lru")


def run_interference(
    cores: Optional[Sequence] = None,
    policies: Optional[Sequence] = None,
    interleave: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence] = None,
    session: Optional[Session] = None,
    jobs: Optional[int] = None,
) -> dict:
    """Run the (policy x {solo, co-run}) grid and fold it into a matrix.

    ``cores`` defaults to :data:`DEFAULT_CORES`; when only ``benchmarks``
    is given (the CLI's ``--tiny``/``--spec``), the first benchmark co-runs
    against itself — self-contention on two private streams.
    """
    session = Session.ensure(session=session)
    if cores is None:
        if benchmarks:
            cores = (benchmarks[0], benchmarks[0])
        else:
            cores = DEFAULT_CORES
    cores = tuple(cores)
    if len(cores) < 2:
        raise ConfigurationError(
            "interference needs at least two cores (use --core twice); a "
            "single core has nothing to contend with"
        )
    policy_specs = tuple(
        PolicySpec.of(p) for p in (policies or DEFAULT_POLICIES)
    )
    solo = Scenario(benchmarks=cores, policies=policy_specs)
    coruns = tuple(
        Scenario(cores=cores, interleave=tuple(interleave or ()), policies=(p,))
        for p in policy_specs
    )
    plan = session.plan(solo, *coruns)
    results = session.execute(plan, jobs=jobs)

    solo_ipc: dict[tuple[str, str], float] = {}
    corun: dict[str, MulticoreResult] = {}
    core_names: list[str] = []
    for request, artifacts in zip(plan.requests, results):
        policy = request.policy.canonical()
        if request.is_multicore:
            corun[policy] = artifacts.result
            if not core_names:
                core_names = [spec.name for spec in request.cores]
        else:
            solo_ipc[(policy, request.spec.name)] = artifacts.result.ipc

    matrix: dict[str, dict] = {}
    for policy in (p.canonical() for p in policy_specs):
        result = corun[policy]
        per_core = []
        for core_id, core_result in enumerate(result.cores):
            name = core_names[core_id]
            alone = solo_ipc[(policy, name)]
            together = core_result.ipc
            per_core.append(
                {
                    "core": core_id,
                    "workload": name,
                    "solo_ipc": alone,
                    "corun_ipc": together,
                    "slowdown": alone / together if together else float("inf"),
                }
            )
        matrix[policy] = {
            "cores": per_core,
            "inter_core_evictions": dict(result.inter_core_evictions),
            "total_inter_core_evictions": result.total_inter_core_evictions,
            "occupancy": dict(result.occupancy),
        }
    return {
        "cores": core_names,
        "interleave": list(corun[next(iter(corun))].interleave),
        "policies": [p.canonical() for p in policy_specs],
        "matrix": matrix,
    }


def format_interference(report: dict) -> str:
    """Slowdown matrix (rows = policies, columns = cores) plus pressure."""
    names = report["cores"]
    lines = [
        "co-run slowdown vs solo (1.00 = no interference); "
        f"interleave {':'.join(map(str, report['interleave']))}",
        f"{'policy':28s} "
        + " ".join(f"{name[:12]:>14s}" for name in names)
        + f" {'xcore-evict':>12s}",
    ]
    for policy in report["policies"]:
        cell = report["matrix"][policy]
        row = f"{policy:28s} "
        row += " ".join(
            f"{core['slowdown']:>13.3f}x" for core in cell["cores"]
        )
        row += f" {cell['total_inter_core_evictions']:>12d}"
        lines.append(row)
    return "\n".join(lines)


__all__ = [
    "DEFAULT_CORES",
    "DEFAULT_POLICIES",
    "format_interference",
    "run_interference",
]
