"""Central catalog of every reproducible figure/table/ablation.

Each experiment module registers one entry here, keyed by the name the CLI
uses (``repro run figure3``), so the CLI, the benchmark harness and the
tests all enumerate the same catalog instead of hard-coding module lists.
An entry bundles the paper artifact it reproduces, an adapter that runs it
from a shared :class:`ExperimentContext` (config + runner + optional
benchmark subset), and the formatter that renders its result as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.api.session import Session
from repro.cache.replacement.spec import PolicySpec
from repro.experiments import ablations, figure3, figure6, figure7, figure8
from repro.experiments import figure9, interference, table3, tables, topdown_figures
from repro.experiments.runner import BenchmarkRunner
from repro.experiments.store import ResultStore
from repro.sim.config import SimulatorConfig
from repro.workloads.families import (
    WorkloadFamilySpec,
    is_family_token,
    resolve_workload,
)
from repro.workloads.spec import WorkloadSpec


@dataclass
class ExperimentContext:
    """Everything an experiment adapter needs to run.

    ``benchmarks`` is ``None`` to use the experiment's paper-default
    benchmark list; entries may be benchmark names or full
    :class:`~repro.workloads.spec.WorkloadSpec` objects.  ``policies`` is
    ``None`` to use the experiment's paper policy list; entries are
    normalised to :class:`~repro.cache.replacement.spec.PolicySpec`.  All
    execution flows through one :class:`~repro.api.session.Session` —
    adapters hand it to the experiment modules, so every simulation shares
    the session's engines and result store.
    """

    config: SimulatorConfig = field(default_factory=SimulatorConfig.default)
    session: Optional[Session] = None
    runner: Optional[BenchmarkRunner] = None  #: legacy handle; adopted if given
    benchmarks: Optional[Sequence[str | WorkloadSpec]] = None
    policies: Optional[Sequence[str | PolicySpec]] = None
    jobs: Optional[int] = None
    #: Multi-core experiments (``repro run interference --core ...``): one
    #: workload token/spec per core, plus the optional interleave quanta.
    #: ``None`` lets the experiment pick its default co-run pair.
    cores: Optional[Sequence[str | WorkloadSpec]] = None
    interleave: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if self.session is None:
            self.session = Session.ensure(runner=self.runner, config=self.config)
        if self.runner is None:
            self.runner = self.session.runner
        if self.policies is not None:
            self.policies = tuple(PolicySpec.of(p) for p in self.policies)
        if self.benchmarks is not None:
            # Family tokens/specs synthesize to concrete workload specs here,
            # eagerly, so a bad family parameter fails before any simulation
            # and every experiment module sees plain names/specs.
            self.benchmarks = tuple(
                resolve_workload(b)
                if isinstance(b, WorkloadFamilySpec)
                or (isinstance(b, str) and is_family_token(b))
                else b
                for b in self.benchmarks
            )

    @property
    def store(self) -> Optional[ResultStore]:
        return self.session.store

    def first_benchmark(self, default: str) -> str | WorkloadSpec:
        """The single benchmark for experiments that sweep one workload."""
        if self.benchmarks:
            return self.benchmarks[0]
        return default


@dataclass(frozen=True)
class Experiment:
    """One registered figure/table/ablation."""

    name: str
    artifact: str  #: which paper artifact this reproduces ("Figure 3", ...)
    description: str
    run: Callable[[ExperimentContext], Any]
    format: Callable[[Any], str]
    #: Whether the experiment performs timing simulations (and therefore
    #: benefits from the result store).  Static tables do not.
    simulates: bool = True
    #: Whether the adapter forwards ``ctx.jobs`` into a parallel sweep.
    supports_jobs: bool = False
    #: Whether the adapter forwards ``ctx.policies`` (CLI ``--policy``) into
    #: the experiment; fixed-policy artifacts ignore the flag and warn.
    supports_policies: bool = False
    #: Whether the experiment sweeps a single workload (ablations) and
    #: therefore uses only the first entry of ``ctx.benchmarks``.
    single_benchmark: bool = False


REGISTRY: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    if experiment.name in REGISTRY:
        raise ValueError(f"duplicate experiment name {experiment.name!r}")
    REGISTRY[experiment.name] = experiment
    return experiment


def get_experiment(name: str) -> Experiment:
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None


def experiment_names() -> tuple[str, ...]:
    """Registered names, in catalog (paper) order."""
    return tuple(REGISTRY)


# --------------------------------------------------------------------- catalog
register(
    Experiment(
        name="table1",
        artifact="Table 1",
        description="simulator configuration (paper-scale hierarchy and core)",
        run=lambda ctx: tables.run_table1(),
        format=tables.format_table1,
        simulates=False,
    )
)
register(
    Experiment(
        name="table2",
        artifact="Table 2",
        description="benchmarks, input sets and instruction windows",
        run=lambda ctx: tables.run_table2(benchmarks=ctx.benchmarks),
        format=tables.format_table2,
        simulates=False,
    )
)
register(
    Experiment(
        name="figure1",
        artifact="Figure 1",
        description="Top-Down breakdown of the PGO'd mobile system components",
        run=lambda ctx: topdown_figures.run_figure1(
            components=ctx.benchmarks, session=ctx.session
        ),
        format=topdown_figures.format_topdown_rows,
    )
)
register(
    Experiment(
        name="figure2",
        artifact="Figure 2",
        description="Top-Down breakdown of the proxies, non-PGO vs. PGO",
        run=lambda ctx: topdown_figures.run_figure2(
            benchmarks=ctx.benchmarks, session=ctx.session
        ),
        format=topdown_figures.format_topdown_rows,
    )
)
register(
    Experiment(
        name="figure3",
        artifact="Figure 3",
        description="reuse-distance distribution of hot instruction lines",
        run=lambda ctx: figure3.run_figure3(
            benchmarks=ctx.benchmarks, session=ctx.session
        ),
        format=figure3.format_figure3,
    )
)
register(
    Experiment(
        name="figure6",
        artifact="Figure 6",
        description="speedup of every evaluated policy over SRRIP",
        run=lambda ctx: figure6.run_figure6(
            benchmarks=ctx.benchmarks,
            policies=ctx.policies,
            session=ctx.session,
            jobs=ctx.jobs,
        ),
        format=figure6.format_figure6,
        supports_jobs=True,
        supports_policies=True,
    )
)
register(
    Experiment(
        name="table3",
        artifact="Table 3",
        description="raw SRRIP L2 MPKI and per-policy MPKI reductions",
        run=lambda ctx: table3.run_table3(
            benchmarks=ctx.benchmarks,
            policies=ctx.policies,
            session=ctx.session,
            jobs=ctx.jobs,
        ),
        format=table3.format_table3,
        supports_jobs=True,
        supports_policies=True,
    )
)
register(
    Experiment(
        name="table4",
        artifact="Table 4",
        description="static power and area overheads of the mechanisms",
        run=lambda ctx: tables.run_table4(),
        format=tables.format_table4,
        simulates=False,
    )
)
register(
    Experiment(
        name="figure7",
        artifact="Figure 7",
        description="coverage of costly instruction misses by the hot section",
        run=lambda ctx: figure7.run_figure7(
            benchmarks=ctx.benchmarks, session=ctx.session, jobs=ctx.jobs
        ),
        format=figure7.format_figure7,
        supports_jobs=True,
    )
)
register(
    Experiment(
        name="figure8",
        artifact="Figure 8",
        description="sensitivity to the compiler hot threshold",
        run=lambda ctx: figure8.run_figure8(
            benchmarks=ctx.benchmarks, session=ctx.session
        ),
        format=figure8.format_figure8,
    )
)
register(
    Experiment(
        name="figure9a",
        artifact="Figure 9a",
        description="L2 size sensitivity of TRRIP-1, CLIP and Emissary",
        run=lambda ctx: figure9.run_figure9a(
            benchmarks=ctx.benchmarks, session=ctx.session
        ),
        format=figure9.format_figure9a,
    )
)
register(
    Experiment(
        name="figure9b",
        artifact="Figure 9b",
        description="L2 associativity sensitivity of TRRIP-1",
        run=lambda ctx: figure9.run_figure9b(
            benchmarks=ctx.benchmarks, session=ctx.session
        ),
        format=figure9.format_figure9b,
    )
)
register(
    Experiment(
        name="interference",
        artifact="Contention",
        description="co-run vs solo slowdown per core over one shared L2/SLC",
        run=lambda ctx: interference.run_interference(
            cores=ctx.cores,
            policies=ctx.policies,
            interleave=ctx.interleave,
            benchmarks=ctx.benchmarks,
            session=ctx.session,
            jobs=ctx.jobs,
        ),
        format=interference.format_interference,
        supports_jobs=True,
        supports_policies=True,
    )
)
register(
    Experiment(
        name="table5",
        artifact="Table 5",
        description="hot/warm page counts per page size and binary sizes",
        run=lambda ctx: tables.run_table5(benchmarks=ctx.benchmarks),
        format=tables.format_table5,
        simulates=False,
    )
)
register(
    Experiment(
        name="ablation-page-size",
        artifact="Section 4.9",
        description="page-size / overlap-handling ablation for TRRIP-1",
        run=lambda ctx: ablations.run_page_size_ablation(
            benchmark=ctx.first_benchmark("sqlite"), session=ctx.session
        ),
        format=ablations.format_page_size_ablation,
        single_benchmark=True,
    )
)
register(
    Experiment(
        name="ablation-kill-switch",
        artifact="adoption argument",
        description="TRRIP with temperature bits disabled degrades to SRRIP",
        run=lambda ctx: ablations.run_kill_switch_ablation(
            benchmark=ctx.first_benchmark("sqlite"), session=ctx.session
        ),
        format=ablations.format_kill_switch,
        single_benchmark=True,
    )
)
