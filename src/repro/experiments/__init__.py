"""Experiment harness: one module per table/figure of the paper.

Every module is registered in :mod:`repro.experiments.registry` under the
name the ``repro`` CLI uses (``repro run figure3``), and every simulation
can be cached in the on-disk :mod:`repro.experiments.store`.

===========  =====================================================
Experiment    Entry point
===========  =====================================================
Table 1       :func:`repro.experiments.tables.run_table1`
Table 2       :func:`repro.experiments.tables.run_table2`
Figure 1      :func:`repro.experiments.topdown_figures.run_figure1`
Figure 2      :func:`repro.experiments.topdown_figures.run_figure2`
Figure 3      :func:`repro.experiments.figure3.run_figure3`
Figure 6      :func:`repro.experiments.figure6.run_figure6`
Table 3       :func:`repro.experiments.table3.run_table3`
Table 4       :func:`repro.experiments.tables.run_table4`
Figure 7      :func:`repro.experiments.figure7.run_figure7`
Figure 8      :func:`repro.experiments.figure8.run_figure8`
Figure 9      :func:`repro.experiments.figure9.run_figure9a` / ``run_figure9b``
Table 5       :func:`repro.experiments.tables.run_table5`
===========  =====================================================
"""

from repro.experiments.ablations import (
    KillSwitchResult,
    PageSizeAblationPoint,
    format_kill_switch,
    format_page_size_ablation,
    run_kill_switch_ablation,
    run_page_size_ablation,
)
from repro.experiments.figure3 import ReuseRow, format_figure3, run_figure3
from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.figure7 import CoverageRow, format_figure7, run_figure7
from repro.experiments.figure8 import ThresholdPoint, format_figure8, run_figure8
from repro.experiments.figure9 import (
    AssociativityPoint,
    SizeSweepPoint,
    format_figure9a,
    format_figure9b,
    run_figure9a,
    run_figure9b,
)
from repro.experiments.runner import BenchmarkRunner, RunArtifacts
from repro.experiments.sweep import PolicySweepResult, run_policy_sweep
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.tables import (
    Table2Row,
    Table5Row,
    format_table1,
    format_table2,
    format_table4,
    format_table5,
    run_table1,
    run_table2,
    run_table4,
    run_table5,
)
from repro.experiments.topdown_figures import (
    TopDownRow,
    format_topdown_rows,
    run_figure1,
    run_figure2,
)

# The registry imports the experiment modules above, so it must come last.
from repro.experiments.registry import (
    REGISTRY,
    Experiment,
    ExperimentContext,
    experiment_names,
    get_experiment,
)
from repro.experiments.store import ResultStore, StoredRun, default_store_root, run_key

__all__ = [
    "BenchmarkRunner",
    "RunArtifacts",
    "REGISTRY",
    "Experiment",
    "ExperimentContext",
    "experiment_names",
    "get_experiment",
    "ResultStore",
    "StoredRun",
    "default_store_root",
    "run_key",
    "format_kill_switch",
    "run_page_size_ablation",
    "run_kill_switch_ablation",
    "format_page_size_ablation",
    "PageSizeAblationPoint",
    "KillSwitchResult",
    "PolicySweepResult",
    "run_policy_sweep",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9a",
    "run_figure9b",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_table5",
    "format_topdown_rows",
    "format_figure3",
    "format_figure6",
    "format_figure7",
    "format_figure8",
    "format_figure9a",
    "format_figure9b",
    "TopDownRow",
    "ReuseRow",
    "CoverageRow",
    "ThresholdPoint",
    "SizeSweepPoint",
    "AssociativityPoint",
    "Table2Row",
    "Table5Row",
]
