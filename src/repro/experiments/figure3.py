"""Figure 3: reuse-distance distribution of hot instruction lines in the L2.

Reproduces: **Figure 3** of the paper — for each proxy benchmark, the
fraction of hot-line L2 accesses per set-level reuse-distance bucket
(0-4 / 5-8 / 9-16 / 16+), both against all lines ("base") and against hot
lines only ("~").  CLI: ``repro run figure3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.reuse import REUSE_BUCKETS, ReuseHistogram
from repro.api.scenario import Scenario
from repro.api.session import Session
from repro.experiments.runner import BenchmarkRunner
from repro.sim.config import BASELINE_POLICY, SimulatorConfig
from repro.workloads.spec import PROXY_BENCHMARK_NAMES


@dataclass(frozen=True)
class ReuseRow:
    """Reuse-distance fractions for one benchmark (base and hot-only)."""

    benchmark: str
    base: dict[str, float]
    hot_only: dict[str, float]
    base_accesses: int
    hot_only_accesses: int


def run_figure3(
    benchmarks: Sequence[str] | None = None,
    config: SimulatorConfig | None = None,
    runner: BenchmarkRunner | None = None,
    session: Session | None = None,
) -> list[ReuseRow]:
    """Measure per-set reuse distances of hot lines under the SRRIP baseline."""
    session = Session.ensure(session, runner=runner, config=config)
    scenario = Scenario(
        benchmarks=tuple(benchmarks or PROXY_BENCHMARK_NAMES),
        policies=BASELINE_POLICY,
        track_reuse=True,
        label="figure3",
    )
    rows: list[ReuseRow] = []
    for request, artifacts in session.stream(scenario):
        base, hot_only = artifacts.reuse.histograms()
        rows.append(
            ReuseRow(
                benchmark=request.benchmark,
                base=base.fractions(),
                hot_only=hot_only.fractions(),
                base_accesses=base.total,
                hot_only_accesses=hot_only.total,
            )
        )
    return rows


def format_figure3(rows: Sequence[ReuseRow]) -> str:
    header = f"{'benchmark':12s} " + " ".join(f"{b:>7s}" for b in REUSE_BUCKETS)
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.benchmark:12s} "
            + " ".join(f"{row.base.get(b, 0.0):7.3f}" for b in REUSE_BUCKETS)
        )
        lines.append(
            f"{row.benchmark + '~':12s} "
            + " ".join(f"{row.hot_only.get(b, 0.0):7.3f}" for b in REUSE_BUCKETS)
        )
    return "\n".join(lines)
