"""Figure 6: speedup of every evaluated mechanism, normalised to SRRIP.

Reproduces: **Figure 6** of the paper — per-benchmark and geomean speedup of
LRU/BRRIP/DRRIP/SHiP/CLIP/Emissary/TRRIP-1/TRRIP-2 over the SRRIP baseline,
derived from the same (benchmark × policy) sweep as Table 3.
CLI: ``repro run figure6``.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.session import Session
from repro.experiments.runner import BenchmarkRunner
from repro.experiments.sweep import PolicySweepResult, run_policy_sweep
from repro.sim.config import EVALUATED_POLICIES, SimulatorConfig


def run_figure6(
    benchmarks: Sequence[str] | None = None,
    policies: Sequence[str] | None = None,
    config: SimulatorConfig | None = None,
    runner: BenchmarkRunner | None = None,
    jobs: int | None = None,
    session: Session | None = None,
) -> PolicySweepResult:
    """Run the full policy sweep Figure 6 (and Table 3) are derived from."""
    return run_policy_sweep(
        benchmarks=benchmarks,
        policies=policies or EVALUATED_POLICIES,
        config=config,
        runner=runner,
        jobs=jobs,
        session=session,
    )


def format_figure6(sweep: PolicySweepResult) -> str:
    """Speedup (%) per benchmark and policy, plus the geomean row."""
    header = f"{'benchmark':12s} " + " ".join(f"{p:>9s}" for p in sweep.policies)
    lines = [header]
    for benchmark in sweep.benchmarks:
        lines.append(
            f"{benchmark:12s} "
            + " ".join(
                f"{sweep.speedup(benchmark, policy) * 100:+9.2f}"
                for policy in sweep.policies
            )
        )
    lines.append(
        f"{'geomean':12s} "
        + " ".join(
            f"{sweep.geomean_speedup(policy) * 100:+9.2f}" for policy in sweep.policies
        )
    )
    return "\n".join(lines)
