"""Figures 1 and 2: Top-Down breakdowns.

Reproduces: **Figure 1** and **Figure 2** of the paper.  Figure 1 profiles
the five mobile system-software components (PGO-compiled) and shows they
remain frontend-bound.  Figure 2 profiles the ten proxy benchmarks twice —
compiled without PGO and with PGO — and shows PGO improves the retire
fraction but leaves a large ifetch component.  CLI: ``repro run figure1`` /
``repro run figure2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api.session import Session
from repro.core.pipeline import PipelineOptions
from repro.cpu.topdown import TopDownBreakdown
from repro.experiments.runner import BenchmarkRunner
from repro.sim.config import BASELINE_POLICY, SimulatorConfig
from repro.workloads.spec import PROXY_BENCHMARK_NAMES, SYSTEM_COMPONENT_NAMES


@dataclass(frozen=True)
class TopDownRow:
    """Top-Down fractions for one benchmark variant."""

    benchmark: str
    pgo_applied: bool
    fractions: dict[str, float]

    @property
    def label(self) -> str:
        return f"{self.benchmark}*" if self.pgo_applied else self.benchmark

    @property
    def frontend_bound(self) -> float:
        return self.fractions.get("ifetch", 0.0) + self.fractions.get("mispred", 0.0)


def _topdown_row(
    session: Session, benchmark, apply_pgo: bool, policy: str
) -> TopDownRow:
    options = PipelineOptions(apply_pgo=apply_pgo, propagate_temperature=False)
    artifacts = session.run_one(benchmark, policy, options=options)
    return TopDownRow(
        benchmark=artifacts.prepared.spec.name,
        pgo_applied=apply_pgo,
        fractions=artifacts.result.topdown.fractions(),
    )


def run_figure1(
    components: Sequence[str] | None = None,
    config: SimulatorConfig | None = None,
    runner: BenchmarkRunner | None = None,
    session: Session | None = None,
) -> list[TopDownRow]:
    """Top-Down breakdown of the PGO'd mobile system components (Figure 1)."""
    session = Session.ensure(session, runner=runner, config=config)
    return [
        _topdown_row(session, component, apply_pgo=True, policy=BASELINE_POLICY)
        for component in (components or SYSTEM_COMPONENT_NAMES)
    ]


def run_figure2(
    benchmarks: Sequence[str] | None = None,
    config: SimulatorConfig | None = None,
    runner: BenchmarkRunner | None = None,
    session: Session | None = None,
) -> list[TopDownRow]:
    """Top-Down breakdown of proxies, non-PGO and PGO (Figure 2)."""
    session = Session.ensure(session, runner=runner, config=config)
    rows: list[TopDownRow] = []
    for benchmark in benchmarks or PROXY_BENCHMARK_NAMES:
        rows.append(_topdown_row(session, benchmark, apply_pgo=False, policy=BASELINE_POLICY))
        rows.append(_topdown_row(session, benchmark, apply_pgo=True, policy=BASELINE_POLICY))
    return rows


def format_topdown_rows(rows: Sequence[TopDownRow]) -> str:
    categories = TopDownBreakdown.CATEGORIES
    header = f"{'benchmark':14s} " + " ".join(f"{c:>8s}" for c in categories)
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.label:14s} "
            + " ".join(f"{row.fractions.get(c, 0.0):8.3f}" for c in categories)
        )
    return "\n".join(lines)
