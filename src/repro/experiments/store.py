"""On-disk result store for cached simulation runs.

Every simulation the experiment harness performs is fully determined by four
inputs: the *resolved* (config-scaled) :class:`~repro.workloads.spec.WorkloadSpec`,
the L2 replacement policy, the :class:`~repro.sim.config.SimulatorConfig`
actually simulated, and the compile/load-time
:class:`~repro.core.pipeline.PipelineOptions`.  The store keys each run by a
SHA-256 content hash of those inputs (see :mod:`repro.common.hashing`), so
regenerating a figure a second time — from the same process, a new process,
or a pool worker — is a cache hit instead of a re-simulation.

Physical storage is delegated to a pluggable
:class:`~repro.experiments.backends.StoreBackend` (selected via the
``backend=`` argument, the ``REPRO_STORE_BACKEND`` environment variable or
the CLI's ``--store-backend``).  The default ``dir`` backend keeps the
historical layout under the store root (default ``~/.cache/repro``,
overridable with the ``REPRO_CACHE_DIR`` environment variable or the CLI's
``--store``):

* ``runs/<k0k1>/<key>.json`` — one cached :class:`~repro.sim.results.SimulationResult`
  (plus reuse-distance histograms when the run tracked them), with the key
  inputs echoed for debuggability;
* ``reports/<experiment>.json`` — the rendered output of the most recent
  ``repro run <experiment>``, consumed by ``repro report``.

The ``sqlite`` backend stores the same namespaces as rows of a single
``store.sqlite3`` database under the same root.  Entries never expire on
their own; the key embeds a schema version, so a format change simply stops
matching old entries.  ``refresh=True`` makes every lookup miss while still
writing fresh entries (the CLI's ``--refresh``), and deleting the root
directory invalidates everything.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.analysis.reuse import REUSE_BUCKETS, ReuseDistanceTracker
from repro.cache.replacement.spec import PolicySpec
from repro.experiments.backends import CorruptEntry, StoreBackend, open_backend
from repro.common.faults import fire_point
from repro.common.hashing import canonical_payload, stable_hash
from repro.core.pipeline import PipelineOptions
from repro.sim.config import SimulatorConfig
from repro.sim.multicore import MulticoreResult
from repro.sim.results import SimulationResult
from repro.workloads.spec import WorkloadSpec

#: Bump when the cached-entry format (or anything about what a key covers)
#: changes; old entries then simply stop matching.
SCHEMA_VERSION = 1


def default_store_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def run_key(
    spec: WorkloadSpec,
    policy: "str | PolicySpec",
    config: SimulatorConfig,
    options: PipelineOptions,
) -> str:
    """Content hash identifying one simulation run.

    ``policy`` is hashed in canonical string form (see
    :meth:`~repro.cache.replacement.spec.PolicySpec.canonical`), so a
    parameterless :class:`PolicySpec` and the bare policy name produce the
    same key — entries written before specs existed keep matching.
    """
    return stable_hash(
        {
            "schema": SCHEMA_VERSION,
            "spec": canonical_payload(spec),
            "policy": PolicySpec.of(policy).canonical(),
            "config": canonical_payload(config),
            "options": canonical_payload(options),
        }
    )


def multicore_run_key(
    specs: "list[WorkloadSpec] | tuple[WorkloadSpec, ...]",
    policy: "str | PolicySpec",
    config: SimulatorConfig,
    options: PipelineOptions,
    interleave: "tuple[int, ...]",
) -> str:
    """Content hash identifying one interleaved multi-core run.

    The payload carries an explicit ``kind`` discriminator absent from
    :func:`run_key` payloads, so multi-core keys can never collide with —
    or invalidate — legacy single-core entries.  Core order matters (core 0
    of ``a,b`` is not core 0 of ``b,a``), so specs hash as an ordered list.
    """
    return stable_hash(
        {
            "schema": SCHEMA_VERSION,
            "kind": "multicore",
            "specs": [canonical_payload(spec) for spec in specs],
            "policy": PolicySpec.of(policy).canonical(),
            "config": canonical_payload(config),
            "options": canonical_payload(options),
            "interleave": list(interleave),
        }
    )


@dataclass
class StoredRun:
    """A cached simulation result plus optional reuse-distance side products."""

    result: SimulationResult
    reuse_num_sets: Optional[int] = None
    reuse_base: Optional[dict[str, int]] = None
    reuse_hot_only: Optional[dict[str, int]] = None

    @property
    def has_reuse(self) -> bool:
        return self.reuse_num_sets is not None

    def reuse_tracker(self) -> Optional[ReuseDistanceTracker]:
        """Rebuild a tracker exposing the cached histograms (Figure 3)."""
        if not self.has_reuse:
            return None
        tracker = ReuseDistanceTracker(self.reuse_num_sets)
        tracker.base.counts = {
            bucket: int(self.reuse_base.get(bucket, 0)) for bucket in REUSE_BUCKETS
        }
        tracker.hot_only.counts = {
            bucket: int(self.reuse_hot_only.get(bucket, 0))
            for bucket in REUSE_BUCKETS
        }
        return tracker

    @classmethod
    def from_tracker(
        cls, result: SimulationResult, tracker: Optional[ReuseDistanceTracker]
    ) -> "StoredRun":
        if tracker is None:
            return cls(result=result)
        return cls(
            result=result,
            reuse_num_sets=tracker.num_sets,
            reuse_base=dict(tracker.base.counts),
            reuse_hot_only=dict(tracker.hot_only.counts),
        )


class ResultStore:
    """Content-addressed store of simulation runs and experiment reports.

    The store is safe to share between pool workers: both shipped backends
    write atomically, and two workers racing on the same key write
    byte-identical content (simulations are deterministic).  Hit/miss/write
    counters are per-instance — the CLI reports them after each command and
    the ``repro serve`` daemon aggregates them into ``/metrics``
    (:meth:`stats`).
    """

    def __init__(
        self,
        root: Path | str | None = None,
        refresh: bool = False,
        backend: "str | StoreBackend | None" = None,
    ):
        self.root = Path(root) if root is not None else default_store_root()
        #: Physical storage engine (``dir`` files or a ``sqlite`` database);
        #: see :mod:`repro.experiments.backends` for selection rules.
        self.backend = open_backend(backend, self.root)
        #: When set, every lookup misses but fresh results are still written.
        self.refresh = refresh
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Corrupted/truncated entries quarantined during lookups.
        self.corrupt = 0

    def stats(self) -> dict[str, int]:
        """Counter snapshot: ``{"hits", "misses", "writes", "corrupt"}``.

        ``corrupt`` counts entries this instance quarantined mid-lookup —
        surfaced in CLI cache summaries, ``repro report`` provenance and the
        server's ``/metrics``.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }

    # -------------------------------------------------------------- run cache
    def load_run(
        self, key: str, need_reuse: bool = False, record: bool = True
    ) -> Optional[StoredRun]:
        """The cached run for ``key``, or ``None`` on a miss.

        ``need_reuse=True`` also requires the entry to carry reuse-distance
        histograms; an entry without them counts as a miss (the re-run will
        overwrite it with the histograms included).  ``record=False``
        suppresses the hit/miss counters — planning reads by the sweep
        scheduler use it so units later executed by a worker are not
        double-counted.
        """
        entry = None
        if not self.refresh:
            entry = self._read_entry("runs", key)
        if entry is not None and entry.get("schema") == SCHEMA_VERSION:
            reuse = entry.get("reuse")
            if not need_reuse or reuse is not None:
                if record:
                    self.hits += 1
                return StoredRun(
                    result=SimulationResult.from_dict(entry["result"]),
                    reuse_num_sets=reuse["num_sets"] if reuse else None,
                    reuse_base=reuse["base"] if reuse else None,
                    reuse_hot_only=reuse["hot_only"] if reuse else None,
                )
        if record:
            self.misses += 1
        return None

    def save_run(
        self,
        key: str,
        run: StoredRun,
        spec: WorkloadSpec,
        policy: "str | PolicySpec",
        config: SimulatorConfig,
        options: PipelineOptions,
    ) -> None:
        """Persist a finished run under ``key`` (atomic overwrite)."""
        entry = {
            "schema": SCHEMA_VERSION,
            # The key inputs, echoed so entries are debuggable with jq/less.
            "benchmark": spec.name,
            "policy": PolicySpec.of(policy).canonical(),
            "config_name": config.name,
            "config_hash": config.content_hash(),
            "options": canonical_payload(options),
            "result": run.result.to_dict(),
            "reuse": (
                {
                    "num_sets": run.reuse_num_sets,
                    "base": run.reuse_base,
                    "hot_only": run.reuse_hot_only,
                }
                if run.has_reuse
                else None
            ),
        }
        self._write_entry("runs", key, entry)
        self.writes += 1

    # --------------------------------------------------------- multicore runs
    def load_multicore(
        self, key: str, record: bool = True
    ) -> Optional[MulticoreResult]:
        """The cached multi-core run for ``key``, or ``None`` on a miss."""
        entry = None
        if not self.refresh:
            entry = self._read_entry("runs", key)
        if (
            entry is not None
            and entry.get("schema") == SCHEMA_VERSION
            and entry.get("kind") == "multicore"
        ):
            if record:
                self.hits += 1
            return MulticoreResult.from_dict(entry["result"])
        if record:
            self.misses += 1
        return None

    def save_multicore(
        self,
        key: str,
        result: MulticoreResult,
        specs: "list[WorkloadSpec] | tuple[WorkloadSpec, ...]",
        policy: "str | PolicySpec",
        config: SimulatorConfig,
        options: PipelineOptions,
    ) -> None:
        """Persist a finished multi-core run under ``key`` (atomic overwrite)."""
        entry = {
            "schema": SCHEMA_VERSION,
            "kind": "multicore",
            "benchmarks": [spec.name for spec in specs],
            "policy": PolicySpec.of(policy).canonical(),
            "config_name": config.name,
            "config_hash": config.content_hash(),
            "options": canonical_payload(options),
            "interleave": list(result.interleave),
            "result": result.to_dict(),
        }
        self._write_entry("runs", key, entry)
        self.writes += 1

    # ---------------------------------------------------------------- reports
    def save_report(self, experiment: str, payload: dict) -> None:
        """Persist the rendered output of ``repro run <experiment>``."""
        self._write_entry(
            "reports", experiment, {"schema": SCHEMA_VERSION, **payload}
        )

    def load_report(self, experiment: str) -> Optional[dict]:
        """The most recent report for ``experiment``, or ``None``."""
        entry = self._read_entry("reports", experiment)
        if entry is not None and entry.get("schema") == SCHEMA_VERSION:
            return entry
        return None

    # -------------------------------------------------------------- internals
    def _read_entry(self, space: str, key: str) -> Optional[dict]:
        try:
            return self.backend.load(space, key)
        except CorruptEntry:
            # Damaged bytes (torn write, disk corruption) are a miss; the
            # backend already quarantined them out of the way so the
            # re-run's atomic rewrite lands in a clean slot and the damage
            # stays inspectable.
            self.corrupt += 1
            return None

    def _write_entry(self, space: str, key: str, payload: dict) -> None:
        fire_point("store.write")
        self.backend.save(space, key, payload)
