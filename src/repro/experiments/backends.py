"""Pluggable storage backends for the result store.

The :class:`~repro.experiments.store.ResultStore` used to be welded to one
layout — JSON files under ``runs/<k0k1>/<key>.json``.  Everything above it
(the runner, the session, the sweep scheduler, the ``repro serve`` daemon)
only ever needs four operations, so those four are the whole backend
interface:

* :meth:`StoreBackend.load` — the JSON payload stored under a key, ``None``
  on a miss; damaged bytes are **quarantined** (moved aside, never silently
  deleted) and reported by raising :class:`CorruptEntry`;
* :meth:`StoreBackend.save` — atomically overwrite a key with a payload;
* :meth:`StoreBackend.keys` / :meth:`StoreBackend.quarantined` — enumerate
  live and quarantined entries of a namespace (ops introspection, tests,
  ``/metrics``).

On top of storage, every backend also implements **cross-process claim
markers** — the coordination primitive that lets N ``repro serve`` replicas
share one store without executing a job twice:

* :meth:`StoreBackend.acquire_claim` — atomically claim a key for an owner
  with a heartbeat TTL.  Returns ``"acquired"`` (free or already ours),
  ``"adopted"`` (another owner's claim had *expired* — its replica crashed
  or wedged, and we took the work over), or ``"held"`` (another owner's
  claim is still live);
* :meth:`StoreBackend.renew_claim` — the heartbeat: extend our claim's
  expiry; returns ``False`` when the claim is no longer ours (someone
  adopted it after we missed heartbeats);
* :meth:`StoreBackend.release_claim` — drop our claim (idempotent, never
  touches a claim we do not own);
* :meth:`StoreBackend.claims` — enumerate live markers (ops introspection).

Claims are advisory leases, not locks: expiry is wall-clock (``time.time``)
so a claim survives exactly as long as its owner keeps heartbeating, and a
SIGKILLed owner's claim simply times out.  The ``dir`` backend serializes
claim mutations with an ``flock`` on ``claims/.lock``; the ``sqlite``
backend uses an immediate transaction.  Both are exercised by the
multi-replica tests in ``tests/test_server_durability.py``.

Namespaces (``"runs"``, ``"reports"``) keep one backend instance shared by
the run cache and the report cache.  Two backends ship:

``dir``
    The historical one-file-per-entry layout, byte-identical to what every
    previous release wrote: atomic ``os.replace`` renames, corrupt entries
    moved to ``<key>.corrupt``.
``sqlite``
    A single ``store.sqlite3`` database under the same root (stdlib
    :mod:`sqlite3`; no new dependencies), one row per entry plus a
    ``quarantine`` table.  Every call opens a short-lived connection, so a
    backend instance is safe to share across threads, fork into pool
    workers, and pickle.

Both are proven interchangeable by running the store test suite against
each (``tests/test_store.py`` parametrises every store-backed test over
both names).  Selection: the ``backend=`` argument, else the
``REPRO_STORE_BACKEND`` environment variable, else ``dir``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Optional

from repro.common.errors import ConfigurationError

try:  # POSIX only; claims degrade to best-effort without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Environment variable naming the default backend (CLI: ``--store-backend``).
ENV_VAR = "REPRO_STORE_BACKEND"

#: Namespaces that shard entries into ``<k0k1>/`` fan-out directories (their
#: keys are content hashes; report names stay flat and human-readable).
SHARDED_SPACES = ("runs",)


class CorruptEntry(Exception):
    """A stored payload failed to decode.

    Raised by :meth:`StoreBackend.load` *after* the damaged bytes have been
    quarantined, so the caller's retry (a re-simulation plus
    :meth:`StoreBackend.save`) lands in a clean slot while the damage stays
    inspectable.
    """


class StoreBackend(ABC):
    """Storage engine behind a :class:`~repro.experiments.store.ResultStore`."""

    #: Registry name (``"dir"``, ``"sqlite"``); set by subclasses.
    name: str

    def __init__(self, root: Path | str):
        self.root = Path(root)

    @abstractmethod
    def load(self, space: str, key: str) -> Optional[dict]:
        """The payload stored under ``(space, key)``, or ``None`` on a miss.

        Damaged entries are quarantined and reported as :class:`CorruptEntry`.
        """

    @abstractmethod
    def save(self, space: str, key: str, payload: dict) -> None:
        """Atomically overwrite ``(space, key)`` with ``payload``."""

    @abstractmethod
    def keys(self, space: str) -> list[str]:
        """Every live key in ``space``, sorted."""

    @abstractmethod
    def quarantined(self, space: str) -> list[str]:
        """Every quarantined key in ``space``, sorted."""

    # ---------------------------------------------------------------- claims
    @abstractmethod
    def acquire_claim(
        self, key: str, owner: str, ttl: float, now: "float | None" = None
    ) -> str:
        """Atomically claim ``key`` for ``owner`` until ``now + ttl``.

        Returns ``"acquired"`` (the key was free, or already ours — the call
        is re-entrant and doubles as a renew), ``"adopted"`` (another
        owner's claim had expired and we took it over), or ``"held"``
        (another owner's claim is still live; nothing was written).
        """

    @abstractmethod
    def renew_claim(
        self, key: str, owner: str, ttl: float, now: "float | None" = None
    ) -> bool:
        """Heartbeat: extend our claim on ``key``; ``False`` if not ours."""

    @abstractmethod
    def release_claim(self, key: str, owner: str) -> None:
        """Drop our claim on ``key`` (idempotent; never touches others')."""

    @abstractmethod
    def claims(self) -> dict[str, dict]:
        """Live claim markers: ``{key: {"owner", "expires"}}``."""

    @staticmethod
    def _claim_decision(
        current: "dict | None", owner: str, now: float
    ) -> "str | None":
        """Shared lease arbitration for :meth:`acquire_claim`.

        ``"acquired"``/``"adopted"`` mean *write the new marker*;
        ``None`` means the claim is held by a live other owner (report
        ``"held"``, write nothing).
        """
        if current is None or current.get("owner") == owner:
            return "acquired"
        try:
            expires = float(current.get("expires", 0.0))
        except (TypeError, ValueError):
            expires = 0.0  # a damaged marker is treated as expired
        if expires <= now:
            return "adopted"
        return None

    def describe(self) -> str:
        """One-line human-readable identity for CLI summaries."""
        return f"{self.root} [{self.name}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({str(self.root)!r})"


class DirBackend(StoreBackend):
    """One JSON file per entry — the historical on-disk layout, unchanged.

    Safe to share between processes: entries are written to a temporary file
    and atomically renamed into place, and racing writers for one key write
    byte-identical content (simulations are deterministic).
    """

    name = "dir"

    def path_for(self, space: str, key: str) -> Path:
        if space in SHARDED_SPACES:
            return self.root / space / key[:2] / f"{key}.json"
        return self.root / space / f"{key}.json"

    def load(self, space: str, key: str) -> Optional[dict]:
        path = self.path_for(space, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except OSError:
            # Missing or unreadable entries are plain misses.
            return None
        except ValueError as error:
            # Damaged JSON (torn write, disk corruption): quarantine out of
            # the way so the re-run's atomic rewrite lands in a clean slot.
            try:
                os.replace(path, path.with_suffix(".corrupt"))
            except OSError:  # racing workers quarantined it already
                return None
            raise CorruptEntry(f"{space}/{key}: {error}") from error

    def save(self, space: str, key: str, payload: dict) -> None:
        path = self.path_for(space, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def keys(self, space: str) -> list[str]:
        pattern = "*/*.json" if space in SHARDED_SPACES else "*.json"
        return sorted(path.stem for path in (self.root / space).glob(pattern))

    def quarantined(self, space: str) -> list[str]:
        pattern = "*/*.corrupt" if space in SHARDED_SPACES else "*.corrupt"
        return sorted(path.stem for path in (self.root / space).glob(pattern))

    # ---------------------------------------------------------------- claims
    #
    # One ``claims/<key>.claim`` JSON marker per claimed key.  All mutations
    # run under an ``flock`` on ``claims/.lock`` so a read-modify-write
    # (check the current lease, then replace it) is atomic across processes
    # on one host; the marker file itself is written with the same tmp +
    # ``os.replace`` discipline as entries, so readers never see torn JSON.

    def _claims_dir(self) -> Path:
        return self.root / "claims"

    def _claim_path(self, key: str) -> Path:
        return self._claims_dir() / f"{key}.claim"

    def _claim_lock(self):
        """Context manager holding the cross-process claims mutex."""
        directory = self._claims_dir()
        directory.mkdir(parents=True, exist_ok=True)
        handle = open(directory / ".lock", "a+")
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        return handle

    def _read_claim(self, key: str) -> Optional[dict]:
        try:
            with open(self._claim_path(key), "r", encoding="utf-8") as handle:
                marker = json.load(handle)
        except (OSError, ValueError):
            return None
        return marker if isinstance(marker, dict) else None

    def _write_claim(self, key: str, marker: dict) -> None:
        path = self._claim_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(marker, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def acquire_claim(
        self, key: str, owner: str, ttl: float, now: "float | None" = None
    ) -> str:
        now = time.time() if now is None else now
        with self._claim_lock():
            decision = self._claim_decision(self._read_claim(key), owner, now)
            if decision is None:
                return "held"
            self._write_claim(
                key, {"owner": owner, "expires": now + ttl, "claimed": now}
            )
            return decision

    def renew_claim(
        self, key: str, owner: str, ttl: float, now: "float | None" = None
    ) -> bool:
        now = time.time() if now is None else now
        with self._claim_lock():
            current = self._read_claim(key)
            if current is None or current.get("owner") != owner:
                return False
            current["expires"] = now + ttl
            self._write_claim(key, current)
            return True

    def release_claim(self, key: str, owner: str) -> None:
        with self._claim_lock():
            current = self._read_claim(key)
            if current is None or current.get("owner") != owner:
                return
            try:
                os.unlink(self._claim_path(key))
            except OSError:
                pass

    def claims(self) -> dict[str, dict]:
        markers: dict[str, dict] = {}
        directory = self._claims_dir()
        if not directory.is_dir():
            return markers
        for path in sorted(directory.glob("*.claim")):
            try:
                marker = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(marker, dict):
                markers[path.name[: -len(".claim")]] = marker
        return markers


class SQLiteBackend(StoreBackend):
    """Every entry in one ``store.sqlite3`` database under the root.

    Writes run in their own transaction (an ``INSERT OR REPLACE`` is the
    atomic-overwrite equivalent of the dir backend's rename), and each call
    opens a short-lived connection, so one backend instance can be shared
    across threads and forked into pool workers.  Corrupt payloads move to
    the ``quarantine`` table, mirroring the ``*.corrupt`` convention.
    """

    name = "sqlite"

    #: Database filename under the store root.
    FILENAME = "store.sqlite3"

    @property
    def database_path(self) -> Path:
        return self.root / self.FILENAME

    def _connect(self) -> sqlite3.Connection:
        self.root.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self.database_path, timeout=30.0)
        connection.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " space TEXT NOT NULL, key TEXT NOT NULL, payload TEXT NOT NULL,"
            " PRIMARY KEY (space, key))"
        )
        connection.execute(
            "CREATE TABLE IF NOT EXISTS quarantine ("
            " space TEXT NOT NULL, key TEXT NOT NULL, payload TEXT NOT NULL,"
            " PRIMARY KEY (space, key))"
        )
        connection.execute(
            "CREATE TABLE IF NOT EXISTS claims ("
            " key TEXT PRIMARY KEY, owner TEXT NOT NULL,"
            " expires REAL NOT NULL, claimed REAL NOT NULL)"
        )
        return connection

    def load(self, space: str, key: str) -> Optional[dict]:
        try:
            with self._connect() as connection:
                row = connection.execute(
                    "SELECT payload FROM entries WHERE space = ? AND key = ?",
                    (space, key),
                ).fetchone()
        except sqlite3.Error:
            # An unreadable/locked-out database is a plain miss, exactly like
            # an unreadable file in the dir backend.
            return None
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except ValueError as error:
            with self._connect() as connection:
                connection.execute(
                    "INSERT OR REPLACE INTO quarantine (space, key, payload)"
                    " VALUES (?, ?, ?)",
                    (space, key, row[0]),
                )
                connection.execute(
                    "DELETE FROM entries WHERE space = ? AND key = ?",
                    (space, key),
                )
            raise CorruptEntry(f"{space}/{key}: {error}") from error

    def save(self, space: str, key: str, payload: dict) -> None:
        text = json.dumps(payload, indent=1)
        with self._connect() as connection:
            connection.execute(
                "INSERT OR REPLACE INTO entries (space, key, payload)"
                " VALUES (?, ?, ?)",
                (space, key, text),
            )

    def keys(self, space: str) -> list[str]:
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT key FROM entries WHERE space = ? ORDER BY key", (space,)
            ).fetchall()
        return [row[0] for row in rows]

    def quarantined(self, space: str) -> list[str]:
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT key FROM quarantine WHERE space = ? ORDER BY key",
                (space,),
            ).fetchall()
        return [row[0] for row in rows]

    # ---------------------------------------------------------------- claims
    #
    # One row per claimed key.  ``BEGIN IMMEDIATE`` takes the database write
    # lock up front so the read-modify-write (inspect the lease, then
    # replace it) is atomic across replicas sharing the file.

    def acquire_claim(
        self, key: str, owner: str, ttl: float, now: "float | None" = None
    ) -> str:
        now = time.time() if now is None else now
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            row = connection.execute(
                "SELECT owner, expires FROM claims WHERE key = ?", (key,)
            ).fetchone()
            current = (
                None if row is None else {"owner": row[0], "expires": row[1]}
            )
            decision = self._claim_decision(current, owner, now)
            if decision is None:
                return "held"
            connection.execute(
                "INSERT OR REPLACE INTO claims (key, owner, expires, claimed)"
                " VALUES (?, ?, ?, ?)",
                (key, owner, now + ttl, now),
            )
            return decision

    def renew_claim(
        self, key: str, owner: str, ttl: float, now: "float | None" = None
    ) -> bool:
        now = time.time() if now is None else now
        with self._connect() as connection:
            cursor = connection.execute(
                "UPDATE claims SET expires = ? WHERE key = ? AND owner = ?",
                (now + ttl, key, owner),
            )
            return cursor.rowcount > 0

    def release_claim(self, key: str, owner: str) -> None:
        with self._connect() as connection:
            connection.execute(
                "DELETE FROM claims WHERE key = ? AND owner = ?", (key, owner)
            )

    def claims(self) -> dict[str, dict]:
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT key, owner, expires, claimed FROM claims ORDER BY key"
            ).fetchall()
        return {
            row[0]: {"owner": row[1], "expires": row[2], "claimed": row[3]}
            for row in rows
        }

    def describe(self) -> str:
        return f"{self.database_path} [{self.name}]"


#: Registered backends by name, in catalog order.
BACKENDS: dict[str, type[StoreBackend]] = {
    DirBackend.name: DirBackend,
    SQLiteBackend.name: SQLiteBackend,
}


def backend_names() -> tuple[str, ...]:
    return tuple(BACKENDS)


def default_backend_name() -> str:
    """``$REPRO_STORE_BACKEND`` if set, else ``dir``."""
    return os.environ.get(ENV_VAR) or DirBackend.name


def open_backend(
    name: "str | StoreBackend | None", root: Path | str
) -> StoreBackend:
    """Resolve a backend selection into an instance rooted at ``root``.

    ``name`` may be a backend name, an already-built instance (adopted
    as-is), or ``None`` for the environment/default selection.  Unknown
    names fail eagerly with the valid choices.
    """
    if isinstance(name, StoreBackend):
        return name
    wanted = name or default_backend_name()
    backend_type = BACKENDS.get(wanted)
    if backend_type is None:
        raise ConfigurationError(
            f"unknown store backend {wanted!r}; expected one of "
            f"{', '.join(backend_names())}"
        )
    return backend_type(root)
