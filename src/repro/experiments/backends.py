"""Pluggable storage backends for the result store.

The :class:`~repro.experiments.store.ResultStore` used to be welded to one
layout — JSON files under ``runs/<k0k1>/<key>.json``.  Everything above it
(the runner, the session, the sweep scheduler, the ``repro serve`` daemon)
only ever needs four operations, so those four are the whole backend
interface:

* :meth:`StoreBackend.load` — the JSON payload stored under a key, ``None``
  on a miss; damaged bytes are **quarantined** (moved aside, never silently
  deleted) and reported by raising :class:`CorruptEntry`;
* :meth:`StoreBackend.save` — atomically overwrite a key with a payload;
* :meth:`StoreBackend.keys` / :meth:`StoreBackend.quarantined` — enumerate
  live and quarantined entries of a namespace (ops introspection, tests,
  ``/metrics``).

Namespaces (``"runs"``, ``"reports"``) keep one backend instance shared by
the run cache and the report cache.  Two backends ship:

``dir``
    The historical one-file-per-entry layout, byte-identical to what every
    previous release wrote: atomic ``os.replace`` renames, corrupt entries
    moved to ``<key>.corrupt``.
``sqlite``
    A single ``store.sqlite3`` database under the same root (stdlib
    :mod:`sqlite3`; no new dependencies), one row per entry plus a
    ``quarantine`` table.  Every call opens a short-lived connection, so a
    backend instance is safe to share across threads, fork into pool
    workers, and pickle.

Both are proven interchangeable by running the store test suite against
each (``tests/test_store.py`` parametrises every store-backed test over
both names).  Selection: the ``backend=`` argument, else the
``REPRO_STORE_BACKEND`` environment variable, else ``dir``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Optional

from repro.common.errors import ConfigurationError

#: Environment variable naming the default backend (CLI: ``--store-backend``).
ENV_VAR = "REPRO_STORE_BACKEND"

#: Namespaces that shard entries into ``<k0k1>/`` fan-out directories (their
#: keys are content hashes; report names stay flat and human-readable).
SHARDED_SPACES = ("runs",)


class CorruptEntry(Exception):
    """A stored payload failed to decode.

    Raised by :meth:`StoreBackend.load` *after* the damaged bytes have been
    quarantined, so the caller's retry (a re-simulation plus
    :meth:`StoreBackend.save`) lands in a clean slot while the damage stays
    inspectable.
    """


class StoreBackend(ABC):
    """Storage engine behind a :class:`~repro.experiments.store.ResultStore`."""

    #: Registry name (``"dir"``, ``"sqlite"``); set by subclasses.
    name: str

    def __init__(self, root: Path | str):
        self.root = Path(root)

    @abstractmethod
    def load(self, space: str, key: str) -> Optional[dict]:
        """The payload stored under ``(space, key)``, or ``None`` on a miss.

        Damaged entries are quarantined and reported as :class:`CorruptEntry`.
        """

    @abstractmethod
    def save(self, space: str, key: str, payload: dict) -> None:
        """Atomically overwrite ``(space, key)`` with ``payload``."""

    @abstractmethod
    def keys(self, space: str) -> list[str]:
        """Every live key in ``space``, sorted."""

    @abstractmethod
    def quarantined(self, space: str) -> list[str]:
        """Every quarantined key in ``space``, sorted."""

    def describe(self) -> str:
        """One-line human-readable identity for CLI summaries."""
        return f"{self.root} [{self.name}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({str(self.root)!r})"


class DirBackend(StoreBackend):
    """One JSON file per entry — the historical on-disk layout, unchanged.

    Safe to share between processes: entries are written to a temporary file
    and atomically renamed into place, and racing writers for one key write
    byte-identical content (simulations are deterministic).
    """

    name = "dir"

    def path_for(self, space: str, key: str) -> Path:
        if space in SHARDED_SPACES:
            return self.root / space / key[:2] / f"{key}.json"
        return self.root / space / f"{key}.json"

    def load(self, space: str, key: str) -> Optional[dict]:
        path = self.path_for(space, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except OSError:
            # Missing or unreadable entries are plain misses.
            return None
        except ValueError as error:
            # Damaged JSON (torn write, disk corruption): quarantine out of
            # the way so the re-run's atomic rewrite lands in a clean slot.
            try:
                os.replace(path, path.with_suffix(".corrupt"))
            except OSError:  # racing workers quarantined it already
                return None
            raise CorruptEntry(f"{space}/{key}: {error}") from error

    def save(self, space: str, key: str, payload: dict) -> None:
        path = self.path_for(space, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def keys(self, space: str) -> list[str]:
        pattern = "*/*.json" if space in SHARDED_SPACES else "*.json"
        return sorted(path.stem for path in (self.root / space).glob(pattern))

    def quarantined(self, space: str) -> list[str]:
        pattern = "*/*.corrupt" if space in SHARDED_SPACES else "*.corrupt"
        return sorted(path.stem for path in (self.root / space).glob(pattern))


class SQLiteBackend(StoreBackend):
    """Every entry in one ``store.sqlite3`` database under the root.

    Writes run in their own transaction (an ``INSERT OR REPLACE`` is the
    atomic-overwrite equivalent of the dir backend's rename), and each call
    opens a short-lived connection, so one backend instance can be shared
    across threads and forked into pool workers.  Corrupt payloads move to
    the ``quarantine`` table, mirroring the ``*.corrupt`` convention.
    """

    name = "sqlite"

    #: Database filename under the store root.
    FILENAME = "store.sqlite3"

    @property
    def database_path(self) -> Path:
        return self.root / self.FILENAME

    def _connect(self) -> sqlite3.Connection:
        self.root.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self.database_path, timeout=30.0)
        connection.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " space TEXT NOT NULL, key TEXT NOT NULL, payload TEXT NOT NULL,"
            " PRIMARY KEY (space, key))"
        )
        connection.execute(
            "CREATE TABLE IF NOT EXISTS quarantine ("
            " space TEXT NOT NULL, key TEXT NOT NULL, payload TEXT NOT NULL,"
            " PRIMARY KEY (space, key))"
        )
        return connection

    def load(self, space: str, key: str) -> Optional[dict]:
        try:
            with self._connect() as connection:
                row = connection.execute(
                    "SELECT payload FROM entries WHERE space = ? AND key = ?",
                    (space, key),
                ).fetchone()
        except sqlite3.Error:
            # An unreadable/locked-out database is a plain miss, exactly like
            # an unreadable file in the dir backend.
            return None
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except ValueError as error:
            with self._connect() as connection:
                connection.execute(
                    "INSERT OR REPLACE INTO quarantine (space, key, payload)"
                    " VALUES (?, ?, ?)",
                    (space, key, row[0]),
                )
                connection.execute(
                    "DELETE FROM entries WHERE space = ? AND key = ?",
                    (space, key),
                )
            raise CorruptEntry(f"{space}/{key}: {error}") from error

    def save(self, space: str, key: str, payload: dict) -> None:
        text = json.dumps(payload, indent=1)
        with self._connect() as connection:
            connection.execute(
                "INSERT OR REPLACE INTO entries (space, key, payload)"
                " VALUES (?, ?, ?)",
                (space, key, text),
            )

    def keys(self, space: str) -> list[str]:
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT key FROM entries WHERE space = ? ORDER BY key", (space,)
            ).fetchall()
        return [row[0] for row in rows]

    def quarantined(self, space: str) -> list[str]:
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT key FROM quarantine WHERE space = ? ORDER BY key",
                (space,),
            ).fetchall()
        return [row[0] for row in rows]

    def describe(self) -> str:
        return f"{self.database_path} [{self.name}]"


#: Registered backends by name, in catalog order.
BACKENDS: dict[str, type[StoreBackend]] = {
    DirBackend.name: DirBackend,
    SQLiteBackend.name: SQLiteBackend,
}


def backend_names() -> tuple[str, ...]:
    return tuple(BACKENDS)


def default_backend_name() -> str:
    """``$REPRO_STORE_BACKEND`` if set, else ``dir``."""
    return os.environ.get(ENV_VAR) or DirBackend.name


def open_backend(
    name: "str | StoreBackend | None", root: Path | str
) -> StoreBackend:
    """Resolve a backend selection into an instance rooted at ``root``.

    ``name`` may be a backend name, an already-built instance (adopted
    as-is), or ``None`` for the environment/default selection.  Unknown
    names fail eagerly with the valid choices.
    """
    if isinstance(name, StoreBackend):
        return name
    wanted = name or default_backend_name()
    backend_type = BACKENDS.get(wanted)
    if backend_type is None:
        raise ConfigurationError(
            f"unknown store backend {wanted!r}; expected one of "
            f"{', '.join(backend_names())}"
        )
    return backend_type(root)
