"""Figure 9: sensitivity to L2 cache size and associativity.

Reproduces: **Figure 9** of the paper.  Figure 9a compares TRRIP-1, CLIP and
Emissary on three L2 sizes (geomean speedup over SRRIP at the same size).
Figure 9b sweeps the associativity of the smallest L2 for TRRIP-1.  The
scaled configuration uses L2 sizes that are the paper's 128/256/512 kB
divided by the same factor as the rest of the hierarchy.
CLI: ``repro run figure9a`` / ``repro run figure9b``.

Unlike the other figure modules these sweeps change the simulator
configuration per point; each geometry is expressed as a per-scenario
:class:`~repro.sim.config.SimulatorConfig` and the session keeps one engine
per geometry.  Because the plan is deduplicated, the SRRIP baseline for a
given (benchmark, geometry) is simulated once and shared across the swept
policies — pass ``store=`` (or a session with one) to also persist runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.api.scenario import Scenario
from repro.api.session import Session
from repro.experiments.store import ResultStore
from repro.sim.config import BASELINE_POLICY, SimulatorConfig
from repro.sim.results import geomean_speedup
from repro.workloads.spec import PROXY_BENCHMARK_NAMES

#: Policies compared in Figure 9a.
SIZE_SWEEP_POLICIES: tuple[str, ...] = ("trrip-1", "clip", "emissary")
#: Associativities swept in Figure 9b.
DEFAULT_ASSOCIATIVITIES: tuple[int, ...] = (4, 8, 16)


@dataclass(frozen=True)
class SizeSweepPoint:
    """Geomean speedup of one policy at one L2 size."""

    policy: str
    l2_size_bytes: int
    geomean_speedup: float


@dataclass(frozen=True)
class AssociativityPoint:
    """TRRIP-1 speedup for one benchmark at one associativity."""

    benchmark: str
    associativity: int
    speedup: float


def default_l2_sizes(config: SimulatorConfig) -> tuple[int, ...]:
    """Half, base and double the configuration's L2 size (paper: 128/256/512 kB)."""
    base = config.hierarchy.l2.size_bytes
    return (base // 2, base, base * 2)


def run_figure9a(
    benchmarks: Sequence[str] | None = None,
    policies: Sequence[str] = SIZE_SWEEP_POLICIES,
    l2_sizes: Sequence[int] | None = None,
    config: SimulatorConfig | None = None,
    store: Optional[ResultStore] = None,
    session: Session | None = None,
) -> list[SizeSweepPoint]:
    """Cache-size sensitivity of TRRIP-1, CLIP and Emissary (Figure 9a)."""
    session = Session.ensure(session, config=config, store=store)
    base_config = config or session.config
    benchmarks = tuple(benchmarks or PROXY_BENCHMARK_NAMES)
    # One scenario per (L2 size, policy), each pairing the baseline with the
    # swept policy per benchmark; identical baseline points across policies
    # collapse in the plan and simulate once.
    scenarios = [
        Scenario(
            config=base_config.with_l2_geometry(size_bytes=size),
            benchmarks=benchmarks,
            policies=(BASELINE_POLICY, policy),
            label="figure9a",
        )
        for size in (l2_sizes or default_l2_sizes(base_config))
        for policy in policies
    ]
    points: list[SizeSweepPoint] = []
    stream = session.stream(*scenarios)
    for scenario in scenarios:
        speedups = []
        for _ in scenario.benchmarks:
            (_, baseline), (_, swept) = next(stream), next(stream)
            speedups.append(swept.result.speedup_over(baseline.result))
        points.append(
            SizeSweepPoint(
                policy=scenario.policies[-1].canonical(),
                l2_size_bytes=scenario.config.hierarchy.l2.size_bytes,
                geomean_speedup=geomean_speedup(speedups),
            )
        )
    return points


def run_figure9b(
    benchmarks: Sequence[str] | None = None,
    associativities: Sequence[int] = DEFAULT_ASSOCIATIVITIES,
    config: SimulatorConfig | None = None,
    store: Optional[ResultStore] = None,
    session: Session | None = None,
) -> list[AssociativityPoint]:
    """Associativity sensitivity of TRRIP-1 (Figure 9b)."""
    session = Session.ensure(session, config=config, store=store)
    base_config = config or session.config
    benchmarks = tuple(benchmarks or PROXY_BENCHMARK_NAMES)
    scenarios = [
        Scenario(
            config=base_config.with_l2_geometry(associativity=associativity),
            benchmarks=benchmarks,
            policies=(BASELINE_POLICY, "trrip-1"),
            label="figure9b",
        )
        for associativity in associativities
    ]
    points: list[AssociativityPoint] = []
    stream = session.stream(*scenarios)
    for scenario in scenarios:
        for _ in scenario.benchmarks:
            (request, baseline), (_, trrip) = next(stream), next(stream)
            points.append(
                AssociativityPoint(
                    benchmark=request.benchmark,
                    associativity=scenario.config.hierarchy.l2.associativity,
                    speedup=trrip.result.speedup_over(baseline.result),
                )
            )
    return points


def format_figure9a(points: Sequence[SizeSweepPoint]) -> str:
    lines = [f"{'policy':10s} {'L2 size':>10s} {'geomean speedup %':>18s}"]
    for point in points:
        lines.append(
            f"{point.policy:10s} {point.l2_size_bytes // 1024:>8d}kB "
            f"{point.geomean_speedup * 100:+18.2f}"
        )
    return "\n".join(lines)


def format_figure9b(points: Sequence[AssociativityPoint]) -> str:
    lines = [f"{'benchmark':12s} {'ways':>5s} {'speedup %':>10s}"]
    for point in points:
        lines.append(
            f"{point.benchmark:12s} {point.associativity:>5d} "
            f"{point.speedup * 100:+10.2f}"
        )
    return "\n".join(lines)
