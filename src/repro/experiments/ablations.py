"""Ablation studies beyond the paper's figures.

Reproduces: the design points of **Section 4.9** (page sizes / overlap
handling) and the **adoption kill-switch argument** the paper makes but does
not quantify.  CLI: ``repro run ablation-page-size`` /
``repro run ablation-kill-switch``.

Two design points the paper discusses but does not quantify are measurable
with this library:

* **Page-size / overlap handling (§4.9)** — what happens to TRRIP when code
  pages grow (16 kB, 2 MB) and pages start straddling sections of different
  temperature, under each prevention mechanism (majority tagging, disabling
  tags on mixed pages, page-padded sections).
* **Temperature interface kill switch** — running the TRRIP-compiled binary
  with temperature propagation disabled must degrade exactly to the SRRIP
  baseline, demonstrating the "easy to toggle off" adoption argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api.session import Session
from repro.core.pipeline import PipelineOptions
from repro.experiments.runner import BenchmarkRunner
from repro.osmodel.loader import OverlapPolicy
from repro.sim.config import BASELINE_POLICY, SimulatorConfig


@dataclass(frozen=True)
class PageSizeAblationPoint:
    """TRRIP-1 behaviour for one (page size, overlap handling) combination."""

    benchmark: str
    page_size: int
    overlap_policy: OverlapPolicy
    padded_sections: bool
    tagged_pages: int
    mixed_pages: int
    speedup_over_srrip: float
    inst_mpki_reduction: float


def run_page_size_ablation(
    benchmark: str = "sqlite",
    page_sizes: Sequence[int] = (4096, 16384),
    config: SimulatorConfig | None = None,
    runner: BenchmarkRunner | None = None,
    session: Session | None = None,
) -> list[PageSizeAblationPoint]:
    """Sweep page sizes and §4.9 prevention mechanisms for one benchmark."""
    session = Session.ensure(session, runner=runner, config=config)
    variants: list[tuple[OverlapPolicy, bool]] = [
        (OverlapPolicy.MAJORITY, False),
        (OverlapPolicy.DISABLE, False),
        (OverlapPolicy.MAJORITY, True),
    ]
    points: list[PageSizeAblationPoint] = []
    for page_size in page_sizes:
        for overlap_policy, padded in variants:
            options = PipelineOptions(
                page_size=page_size,
                overlap_policy=overlap_policy,
                pad_sections_to_page=padded,
            )
            baseline = session.run_one(
                benchmark, BASELINE_POLICY, options=options
            ).result
            trrip = session.run_one(benchmark, "trrip-1", options=options)
            prepared = trrip.prepared
            points.append(
                PageSizeAblationPoint(
                    benchmark=prepared.spec.name,
                    page_size=page_size,
                    overlap_policy=overlap_policy,
                    padded_sections=padded,
                    tagged_pages=prepared.loaded.tagged_pages,
                    mixed_pages=prepared.loaded.mixed_temperature_pages,
                    speedup_over_srrip=trrip.result.speedup_over(baseline),
                    inst_mpki_reduction=trrip.result.mpki_reduction_over(baseline)[0],
                )
            )
    return points


def format_page_size_ablation(points: Sequence[PageSizeAblationPoint]) -> str:
    lines = [
        f"{'benchmark':10s} {'page':>7s} {'overlap':>9s} {'padded':>7s} "
        f"{'tagged':>7s} {'mixed':>6s} {'speedup%':>9s} {'iMPKI red%':>11s}"
    ]
    for p in points:
        lines.append(
            f"{p.benchmark:10s} {p.page_size // 1024:>5d}kB {p.overlap_policy.value:>9s} "
            f"{str(p.padded_sections):>7s} {p.tagged_pages:>7d} {p.mixed_pages:>6d} "
            f"{p.speedup_over_srrip * 100:+9.2f} {p.inst_mpki_reduction:+11.1f}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class KillSwitchResult:
    """Comparison of TRRIP with and without temperature propagation."""

    benchmark: str
    srrip_cycles: float
    trrip_cycles: float
    trrip_untagged_cycles: float

    @property
    def degrades_to_baseline(self) -> bool:
        """Whether disabling the PTE bits reproduces the SRRIP baseline."""
        return abs(self.trrip_untagged_cycles - self.srrip_cycles) < 1e-6


def run_kill_switch_ablation(
    benchmark: str = "sqlite",
    config: SimulatorConfig | None = None,
    runner: BenchmarkRunner | None = None,
    session: Session | None = None,
) -> KillSwitchResult:
    """Show that TRRIP without PTE temperature bits behaves exactly like SRRIP."""
    session = Session.ensure(session, runner=runner, config=config)
    tagged = PipelineOptions(propagate_temperature=True)
    untagged = PipelineOptions(propagate_temperature=False)
    srrip = session.run_one(benchmark, BASELINE_POLICY, options=untagged)
    trrip = session.run_one(benchmark, "trrip-1", options=tagged)
    trrip_untagged = session.run_one(benchmark, "trrip-1", options=untagged)
    return KillSwitchResult(
        benchmark=srrip.prepared.spec.name,
        srrip_cycles=srrip.result.cycles,
        trrip_cycles=trrip.result.cycles,
        trrip_untagged_cycles=trrip_untagged.result.cycles,
    )


def format_kill_switch(result: KillSwitchResult) -> str:
    lines = [
        f"{'benchmark':12s} {'SRRIP cycles':>14s} {'TRRIP-1':>14s} "
        f"{'TRRIP-1 untagged':>17s} {'degrades to SRRIP':>18s}",
        f"{result.benchmark:12s} {result.srrip_cycles:14.0f} "
        f"{result.trrip_cycles:14.0f} {result.trrip_untagged_cycles:17.0f} "
        f"{str(result.degrades_to_baseline):>18s}",
    ]
    return "\n".join(lines)
