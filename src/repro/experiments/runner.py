"""Shared experiment runner.

Every table/figure module in :mod:`repro.experiments` needs the same loop:
prepare a benchmark through the co-design pipeline, materialise its trace
once, and replay it against several L2 replacement policies.  The
:class:`BenchmarkRunner` caches prepared workloads and traces so a full
figure (10 benchmarks x 9 policies) only pays for compilation and trace
generation once per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.reuse import ReuseDistanceTracker
from repro.common.trace import TraceRecord
from repro.core.pipeline import CoDesignPipeline, PipelineOptions, PreparedWorkload
from repro.sim.config import BASELINE_POLICY, SimulatorConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import SystemSimulator
from repro.workloads.spec import InputSet, WorkloadSpec, get_spec


@dataclass
class RunArtifacts:
    """A simulation result plus optional analysis side-products."""

    result: SimulationResult
    prepared: PreparedWorkload
    reuse: Optional[ReuseDistanceTracker] = None


@dataclass
class BenchmarkRunner:
    """Caches workload preparation and traces across policy runs."""

    config: SimulatorConfig = field(default_factory=SimulatorConfig.default)
    pipeline_options: PipelineOptions = field(default_factory=PipelineOptions)

    def __post_init__(self) -> None:
        self.config.validate()
        self._prepared: dict[tuple, PreparedWorkload] = {}
        self._traces: dict[tuple, tuple[list[TraceRecord], list[TraceRecord]]] = {}

    # ----------------------------------------------------------- preparation
    def resolve_spec(self, benchmark: str | WorkloadSpec) -> WorkloadSpec:
        """Accept either a spec or a benchmark name, applying config scaling."""
        spec = benchmark if isinstance(benchmark, WorkloadSpec) else get_spec(benchmark)
        if self.config.workload_scale != 1.0:
            spec = spec.scaled(self.config.workload_scale)
        return spec

    def prepare(
        self,
        benchmark: str | WorkloadSpec,
        options: PipelineOptions | None = None,
    ) -> PreparedWorkload:
        """Run the co-design pipeline for a benchmark (cached)."""
        spec = self.resolve_spec(benchmark)
        options = options or self.pipeline_options
        key = (spec, self._options_key(options))
        if key not in self._prepared:
            pipeline = CoDesignPipeline(options)
            self._prepared[key] = pipeline.prepare(spec)
        return self._prepared[key]

    def traces(
        self, prepared: PreparedWorkload
    ) -> tuple[list[TraceRecord], list[TraceRecord]]:
        """(warm-up, measured) record lists for a prepared workload (cached)."""
        key = (prepared.spec, self._options_key(prepared.options))
        if key not in self._traces:
            generator = prepared.trace_generator(InputSet.EVALUATION)
            warmup = generator.take(prepared.spec.warmup_instructions)
            measured = generator.take(prepared.spec.eval_instructions)
            self._traces[key] = (warmup, measured)
        return self._traces[key]

    @staticmethod
    def _options_key(options: PipelineOptions) -> tuple:
        return (
            options.apply_pgo,
            options.propagate_temperature,
            options.percentile_hot,
            options.percentile_cold,
            options.page_size,
            options.overlap_policy,
            options.pad_sections_to_page,
        )

    # ------------------------------------------------------------------ runs
    def run(
        self,
        benchmark: str | WorkloadSpec,
        policy: str = BASELINE_POLICY,
        options: PipelineOptions | None = None,
        track_reuse: bool = False,
        config: SimulatorConfig | None = None,
    ) -> RunArtifacts:
        """Simulate one benchmark under one L2 replacement policy."""
        prepared = self.prepare(benchmark, options)
        warmup, measured = self.traces(prepared)
        base_config = config or self.config
        run_config = base_config.with_l2_policy(policy)
        simulator = SystemSimulator(
            run_config, translator=prepared.mmu(), benchmark=prepared.spec.name
        )

        tracker: Optional[ReuseDistanceTracker] = None
        if track_reuse:
            tracker = ReuseDistanceTracker(simulator.hierarchy.l2.num_sets)

        simulator.warm_up(warmup)
        if tracker is not None:
            # Only the measured window contributes to the reuse histograms.
            simulator.hierarchy.l2_access_observer = tracker.observe
        result = simulator.run(measured)
        return RunArtifacts(result=result, prepared=prepared, reuse=tracker)

    def run_policies(
        self,
        benchmark: str | WorkloadSpec,
        policies: Sequence[str],
        baseline: str = BASELINE_POLICY,
        options: PipelineOptions | None = None,
        config: SimulatorConfig | None = None,
    ) -> dict[str, SimulationResult]:
        """Run a benchmark under a baseline plus a list of policies."""
        results: dict[str, SimulationResult] = {}
        wanted = [baseline] + [p for p in policies if p != baseline]
        for policy in wanted:
            results[policy] = self.run(
                benchmark, policy, options=options, config=config
            ).result
        return results
