"""Shared experiment runner.

Every table/figure module in :mod:`repro.experiments` needs the same loop:
prepare a benchmark through the co-design pipeline, materialise its trace
once, and replay it against several L2 replacement policies.  The
:class:`BenchmarkRunner` caches prepared workloads and traces so a full
figure (10 benchmarks x 9 policies) only pays for compilation and trace
generation once per benchmark.  Traces are materialised in the packed
column-oriented format and replayed through the fast engine; the results are
bit-identical to record-at-a-time replay (see ``tests/test_determinism.py``).

For multi-benchmark sweeps the runner can also fan the (benchmark × policy)
grid out over worker processes (:meth:`BenchmarkRunner.run_grid`): every grid
point is an independent deterministic simulation, so the parallel map returns
exactly the results — in exactly the order — the serial loop would produce.

A runner may additionally be given a persistent
:class:`~repro.experiments.store.ResultStore`.  Because every run is fully
determined by (resolved spec, policy, simulator config, pipeline options),
a store hit skips the simulation entirely — only the (cheap, deterministic)
workload preparation is redone to populate :class:`RunArtifacts.prepared`.
The store is forwarded to pool workers, so parallel sweeps fill and reuse
the same cache.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.reuse import ReuseDistanceTracker
from repro.cache.replacement.spec import PolicySpec
from repro.common.faults import fire_point
from repro.common.trace import PackedTrace, TraceRecord
from repro.core.pipeline import CoDesignPipeline, PipelineOptions, PreparedWorkload
from repro.experiments.store import (
    ResultStore,
    StoredRun,
    multicore_run_key,
    run_key,
)
from repro.experiments.supervisor import SupervisedPool, SupervisionPolicy
from repro.common.errors import ConfigurationError
from repro.sim.config import BASELINE_POLICY, SimulatorConfig
from repro.sim.multicore import (
    MulticoreResult,
    MulticoreSimulator,
    normalize_interleave,
)
from repro.sim.results import SimulationResult
from repro.sim.simulator import ENGINES, SystemSimulator
from repro.workloads.capture import TraceArchive
from repro.workloads.spec import InputSet, WorkloadSpec
from repro.workloads.spec import resolve_spec as resolve_workload_spec


@dataclass
class RunArtifacts:
    """A simulation result plus optional analysis side-products.

    ``result`` is a :class:`~repro.sim.results.SimulationResult` for
    single-core points and a :class:`~repro.sim.multicore.MulticoreResult`
    for interleaved multi-core points (``prepared`` is then core 0's
    workload).
    """

    result: "SimulationResult | MulticoreResult"
    prepared: PreparedWorkload
    reuse: Optional[ReuseDistanceTracker] = None


@dataclass
class BenchmarkRunner:
    """Caches workload preparation and traces across policy runs."""

    config: SimulatorConfig = field(default_factory=SimulatorConfig.default)
    pipeline_options: PipelineOptions = field(default_factory=PipelineOptions)
    #: Optional persistent cache; a hit skips the simulation entirely.
    store: Optional[ResultStore] = None
    #: Optional persistent trace archive; a hit skips trace *generation*
    #: (the simulation still runs unless the result store also hits).
    trace_archive: Optional[TraceArchive] = None
    #: Whether serial multi-policy stretches replay in lockstep (one trace
    #: decode + front-of-pipe pass per workload instead of per policy);
    #: results are bit-identical either way.
    lockstep: bool = True
    #: Packed-trace replay engine for solo runs (``"scalar"``, ``"vector"``
    #: or ``"auto"``; see :class:`~repro.sim.simulator.SystemSimulator`).
    #: Lockstep replay is always the scalar loop, so ``"vector"`` also
    #: disables lockstep grouping in :meth:`run_points`.  Results are
    #: bit-identical for every value; only replay speed changes.
    engine: str = "auto"

    def __post_init__(self) -> None:
        self.config.validate()
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        self._prepared: dict[tuple, PreparedWorkload] = {}
        self._traces: dict[tuple, tuple[list[TraceRecord], list[TraceRecord]]] = {}
        self._packed: dict[tuple, tuple[PackedTrace, PackedTrace]] = {}
        #: Simulations actually executed by this runner (store hits excluded).
        self.simulations_run = 0

    # ----------------------------------------------------------- preparation
    def resolve_spec(self, benchmark: str | WorkloadSpec) -> WorkloadSpec:
        """Accept either a spec or a benchmark name, applying config scaling."""
        return resolve_workload_spec(benchmark, self.config.workload_scale)

    def prepare(
        self,
        benchmark: str | WorkloadSpec,
        options: PipelineOptions | None = None,
    ) -> PreparedWorkload:
        """Run the co-design pipeline for a benchmark (cached)."""
        return self._prepare_resolved(self.resolve_spec(benchmark), options)

    def _prepare_resolved(
        self, spec: WorkloadSpec, options: PipelineOptions | None = None
    ) -> PreparedWorkload:
        """Like :meth:`prepare` for a spec that is already config-scaled.

        Config scaling must be applied exactly once per spec; the multi-run
        entry points (:meth:`run_policies`, :meth:`run_grid`) resolve up
        front and come in through here so the scaling is not re-applied per
        grid point.
        """
        options = options or self.pipeline_options
        key = (spec, options.cache_key())
        if key not in self._prepared:
            pipeline = CoDesignPipeline(options)
            self._prepared[key] = pipeline.prepare(spec)
        return self._prepared[key]

    def traces(
        self, prepared: PreparedWorkload
    ) -> tuple[list[TraceRecord], list[TraceRecord]]:
        """(warm-up, measured) record lists for a prepared workload (cached)."""
        key = (prepared.spec, prepared.options.cache_key())
        if key not in self._traces:
            generator = prepared.trace_generator(InputSet.EVALUATION)
            warmup = generator.take(prepared.spec.warmup_instructions)
            measured = generator.take(prepared.spec.eval_instructions)
            self._traces[key] = (warmup, measured)
        return self._traces[key]

    def packed_traces(
        self, prepared: PreparedWorkload
    ) -> tuple[PackedTrace, PackedTrace]:
        """(warm-up, measured) packed traces for a prepared workload (cached).

        Emitted directly from the generator's column stream — the same
        deterministic instruction sequence :meth:`traces` yields, without
        allocating one ``TraceRecord`` per dynamic instruction.

        When the runner has a :class:`~repro.workloads.capture.TraceArchive`,
        the pair is replayed from disk on an archive hit — bit-identical to
        regeneration (``tests/test_capture.py``) — and captured on a miss so
        every later runner (including pool workers and other processes)
        replays instead of regenerating.
        """
        key = (prepared.spec, prepared.options.cache_key())
        if key not in self._packed:
            pair = None
            if self.trace_archive is not None:
                pair = self.trace_archive.load(prepared.spec, prepared.options)
            if pair is None:
                generator = prepared.trace_generator(InputSet.EVALUATION)
                warmup = generator.take_packed(prepared.spec.warmup_instructions)
                measured = generator.take_packed(prepared.spec.eval_instructions)
                pair = (warmup, measured)
                if self.trace_archive is not None:
                    self.trace_archive.save(
                        prepared.spec, prepared.options, warmup, measured
                    )
            self._packed[key] = pair
        return self._packed[key]

    # ------------------------------------------------------------------ runs
    def run(
        self,
        benchmark: str | WorkloadSpec,
        policy: str | PolicySpec = BASELINE_POLICY,
        options: PipelineOptions | None = None,
        track_reuse: bool = False,
        config: SimulatorConfig | None = None,
    ) -> RunArtifacts:
        """Simulate one benchmark under one L2 replacement policy."""
        return self.run_resolved(
            self.resolve_spec(benchmark),
            policy,
            options=options,
            track_reuse=track_reuse,
            config=config,
        )

    def run_resolved(
        self,
        spec: WorkloadSpec,
        policy: str | PolicySpec = BASELINE_POLICY,
        options: PipelineOptions | None = None,
        track_reuse: bool = False,
        config: SimulatorConfig | None = None,
    ) -> RunArtifacts:
        """Like :meth:`run` for a spec that is already config-scaled.

        Config scaling must be applied exactly once per spec, so every
        multi-run flow (figure modules, :meth:`run_policies`,
        :meth:`run_grid`) resolves up front and comes in through here.
        When the runner has a :class:`~repro.experiments.store.ResultStore`,
        this is also where cached runs are served from.
        """
        policy = PolicySpec.of(policy)
        effective_options = options or self.pipeline_options
        run_config = (config or self.config).with_l2_policy(policy)

        key: Optional[str] = None
        if self.store is not None:
            key = run_key(spec, policy, run_config, effective_options)
            cached = self.store.load_run(key, need_reuse=track_reuse)
            if cached is not None:
                # Re-prepare (cheap, deterministic, runner-cached) so callers
                # can still inspect the binary/loaded image; skip simulation.
                prepared = self._prepare_resolved(spec, effective_options)
                return RunArtifacts(
                    result=cached.result,
                    prepared=prepared,
                    # Only surface histograms the caller asked for, so cached
                    # and fresh runs return identical artifact shapes.
                    reuse=cached.reuse_tracker() if track_reuse else None,
                )

        artifacts = self._simulate(spec, effective_options, track_reuse, run_config)
        if self.store is not None and key is not None:
            self.store.save_run(
                key,
                StoredRun.from_tracker(artifacts.result, artifacts.reuse),
                spec=spec,
                policy=policy,
                config=run_config,
                options=effective_options,
            )
        return artifacts

    # Backwards-compatible private alias (pre-CLI callers and pool workers).
    _run_resolved = run_resolved

    def run_lockstep_resolved(
        self,
        spec: WorkloadSpec,
        policies: Sequence[str | PolicySpec],
        options: PipelineOptions | None = None,
        config: SimulatorConfig | None = None,
    ) -> list[RunArtifacts]:
        """Simulate one resolved spec under several L2 policies in lockstep.

        The trace pair is decoded once and the per-policy hierarchies advance
        together through one replay loop
        (:func:`repro.sim.simulator.run_lockstep`), eliminating the repeated
        front-of-pipe work N independent runs would pay; results are
        bit-identical to calling :meth:`run_resolved` per policy (pinned by
        ``tests/test_lockstep.py``).  Store hits are served individually and
        only the missing policies are simulated; fresh results are stored
        under the same keys solo runs use.

        Lockstep replay is always the scalar loop regardless of the runner's
        ``engine`` knob (the vector kernel replays one hierarchy at a time);
        callers that want forced-vector replay run points solo instead
        (:meth:`run_points` already does this when ``engine="vector"``).
        """
        from repro.sim.simulator import run_lockstep

        wanted = [PolicySpec.of(policy) for policy in policies]
        effective_options = options or self.pipeline_options
        base_config = config or self.config

        artifacts: dict[int, RunArtifacts] = {}
        pending: list[tuple[int, PolicySpec, SimulatorConfig, Optional[str]]] = []
        for position, policy in enumerate(wanted):
            run_config = base_config.with_l2_policy(policy)
            key: Optional[str] = None
            if self.store is not None:
                key = run_key(spec, policy, run_config, effective_options)
                cached = self.store.load_run(key)
                if cached is not None:
                    artifacts[position] = RunArtifacts(
                        result=cached.result,
                        prepared=self._prepare_resolved(spec, effective_options),
                    )
                    continue
            pending.append((position, policy, run_config, key))

        if pending:
            prepared = self._prepare_resolved(spec, effective_options)
            warmup, measured = self.packed_traces(prepared)
            simulators = [
                SystemSimulator(
                    run_config,
                    translator=prepared.mmu(),
                    benchmark=prepared.spec.name,
                )
                for _, _, run_config, _ in pending
            ]
            results = run_lockstep(simulators, warmup, measured)
            self.simulations_run += len(pending)
            for (position, policy, run_config, key), result in zip(
                pending, results
            ):
                artifacts[position] = RunArtifacts(
                    result=result, prepared=prepared
                )
                if self.store is not None and key is not None:
                    self.store.save_run(
                        key,
                        StoredRun.from_tracker(result, None),
                        spec=spec,
                        policy=policy,
                        config=run_config,
                        options=effective_options,
                    )
        return [artifacts[position] for position in range(len(wanted))]

    def run_cores_resolved(
        self,
        specs: Sequence[WorkloadSpec],
        policy: str | PolicySpec = BASELINE_POLICY,
        options: PipelineOptions | None = None,
        interleave: Sequence[int] = (),
        config: SimulatorConfig | None = None,
    ) -> RunArtifacts:
        """Simulate N resolved per-core specs interleaved over one shared
        L2/SLC (:class:`~repro.sim.multicore.MulticoreSimulator`).

        Store-cached like :meth:`run_resolved`, under
        :func:`~repro.experiments.store.multicore_run_key` — the key space
        is disjoint from single-core entries.  The returned artifacts carry
        a :class:`~repro.sim.multicore.MulticoreResult` and core 0's
        prepared workload.
        """
        policy = PolicySpec.of(policy)
        specs = list(specs)
        if not specs:
            raise ConfigurationError("multi-core run needs at least one core")
        effective_options = options or self.pipeline_options
        run_config = (config or self.config).with_l2_policy(policy)
        ratio = normalize_interleave(interleave, len(specs))

        key: Optional[str] = None
        if self.store is not None:
            key = multicore_run_key(
                specs, policy, run_config, effective_options, ratio
            )
            cached = self.store.load_multicore(key)
            if cached is not None:
                prepared = self._prepare_resolved(specs[0], effective_options)
                return RunArtifacts(result=cached, prepared=prepared)

        prepared_cores = [
            self._prepare_resolved(spec, effective_options) for spec in specs
        ]
        pairs = [self.packed_traces(prepared) for prepared in prepared_cores]
        simulator = MulticoreSimulator(
            run_config,
            [prepared.mmu() for prepared in prepared_cores],
            [prepared.spec.name for prepared in prepared_cores],
            interleave=ratio,
        )
        simulator.warm_up([warmup for warmup, _ in pairs])
        result = simulator.run([measured for _, measured in pairs])
        self.simulations_run += 1
        if self.store is not None and key is not None:
            self.store.save_multicore(
                key,
                result,
                specs,
                policy=policy,
                config=run_config,
                options=effective_options,
            )
        return RunArtifacts(result=result, prepared=prepared_cores[0])

    def _simulate(
        self,
        spec: WorkloadSpec,
        options: PipelineOptions,
        track_reuse: bool,
        run_config: SimulatorConfig,
    ) -> RunArtifacts:
        """Actually execute one simulation (always counts as a fresh run)."""
        prepared = self._prepare_resolved(spec, options)
        warmup, measured = self.packed_traces(prepared)
        simulator = SystemSimulator(
            run_config,
            translator=prepared.mmu(),
            benchmark=prepared.spec.name,
            engine=self.engine,
        )

        tracker: Optional[ReuseDistanceTracker] = None
        if track_reuse:
            tracker = ReuseDistanceTracker(simulator.hierarchy.l2.num_sets)

        simulator.warm_up(warmup)
        if tracker is not None:
            # Only the measured window contributes to the reuse histograms.
            simulator.hierarchy.l2_access_observer = tracker.observe
        result = simulator.run(measured)
        self.simulations_run += 1
        return RunArtifacts(result=result, prepared=prepared, reuse=tracker)

    def run_policies(
        self,
        benchmark: str | WorkloadSpec,
        policies: Sequence[str | PolicySpec],
        baseline: str | PolicySpec = BASELINE_POLICY,
        options: PipelineOptions | None = None,
        config: SimulatorConfig | None = None,
    ) -> dict[str, SimulationResult]:
        """Run a benchmark under a baseline plus a list of policies.

        Results are keyed by each policy's canonical string form (for plain
        policies, the bare name).
        """
        spec = self.resolve_spec(benchmark)
        baseline = PolicySpec.of(baseline)
        results: dict[str, SimulationResult] = {}
        wanted = [baseline] + [
            s for s in (PolicySpec.of(p) for p in policies) if s != baseline
        ]
        for policy in wanted:
            results[policy.canonical()] = self.run_resolved(
                spec, policy, options=options, config=config
            ).result
        return results

    # ------------------------------------------------------------ parallel map
    def run_points(
        self,
        points: Sequence[tuple[WorkloadSpec, str | PolicySpec]],
        config: SimulatorConfig | None = None,
        jobs: int | None = None,
        chunksize: int | None = None,
    ) -> list[SimulationResult]:
        """Simulate a list of (resolved spec, policy) points, optionally in
        parallel worker processes, returning results in input order.

        ``jobs=None`` (or 1) runs serially in this process; ``jobs=0`` uses
        every available core; any other value caps the worker count.  Each
        point is a fully deterministic, independent simulation, so the
        returned list is identical regardless of ``jobs``.
        """
        points = [(spec, PolicySpec.of(policy)) for spec, policy in points]
        run_config = config or self.config
        if jobs is None or jobs == 1 or len(points) <= 1:
            if len(points) <= 1 or not self.lockstep or self.engine == "vector":
                return [
                    self.run_resolved(spec, policy, config=run_config).result
                    for spec, policy in points
                ]
            # Serial grids advance contiguous same-workload stretches (the
            # benchmark-major sweep shape) in lockstep: one trace decode and
            # one front-of-pipe pass for the whole policy group.
            results: list[SimulationResult] = []
            start = 0
            total = len(points)
            while start < total:
                spec = points[start][0]
                stop = start
                while stop < total and points[stop][0] == spec:
                    stop += 1
                group = [policy for _, policy in points[start:stop]]
                if len(group) == 1:
                    results.append(
                        self.run_resolved(
                            spec, group[0], config=run_config
                        ).result
                    )
                else:
                    results.extend(
                        artifact.result
                        for artifact in self.run_lockstep_resolved(
                            spec, group, config=run_config
                        )
                    )
                start = stop
            return results
        workers = jobs if jobs > 1 else (os.cpu_count() or 1)
        workers = min(workers, len(points))
        # Chunks preserve input order, giving deterministic output ordering.
        # Callers that know the grid shape pass a chunksize that hands each
        # worker contiguous same-benchmark points, so its process-level
        # runner cache pays workload preparation and trace generation once
        # per benchmark instead of per point.
        size = max(chunksize or 1, 1)
        chunks = [points[start : start + size] for start in range(0, len(points), size)]
        pool = SupervisedPool(
            _run_grid_chunk,
            workers=min(workers, len(chunks)),
            initializer=_init_grid_worker,
            initargs=(
                run_config,
                self.pipeline_options,
                self.store,
                self.trace_archive,
                self.engine,
            ),
            # run_points keeps the all-or-nothing contract of the old bare
            # Pool.map (no retries, stop on first failure) — what it adds is
            # supervised teardown: a crash, a KeyboardInterrupt or a worker
            # death terminates and joins every child instead of leaking them.
            policy=SupervisionPolicy(max_retries=0, keep_going=False),
        )
        try:
            report = pool.run(chunks)
        finally:
            # Worker counters die with the pool; fold back every *completed*
            # chunk — even when the run was interrupted mid-flight — so this
            # runner (and its store/archive stats) reflect the work that
            # actually happened and landed durably in the store.
            for outcome in pool.outcomes:
                if outcome.status == "done":
                    _, simulated, store_delta, trace_delta = outcome.value
                    self.fold_worker_counters(simulated, store_delta, trace_delta)
        report.raise_on_failure()
        results: list[SimulationResult] = []
        for outcome in report.outcomes:
            results.extend(outcome.value[0])
        return results

    def fold_worker_counters(
        self,
        simulated: int,
        store_delta: tuple[int, int, int, int],
        trace_delta: tuple[int, int, int, int],
    ) -> None:
        """Fold one worker unit's counter deltas back into this runner.

        Worker processes mutate their *own* copies of the store/archive
        counter state; the parent folds the reported deltas back so CLI
        cache summaries stay accurate across process boundaries.
        """
        self.simulations_run += simulated
        if self.store is not None:
            hits, misses, writes, corrupt = store_delta
            self.store.hits += hits
            self.store.misses += misses
            self.store.writes += writes
            self.store.corrupt += corrupt
        if self.trace_archive is not None:
            hits, misses, writes, corrupt = trace_delta
            self.trace_archive.hits += hits
            self.trace_archive.misses += misses
            self.trace_archive.writes += writes
            self.trace_archive.corrupt += corrupt

    def run_grid(
        self,
        benchmarks: Sequence[str | WorkloadSpec],
        policies: Sequence[str | PolicySpec],
        config: SimulatorConfig | None = None,
        jobs: int | None = None,
    ) -> list[tuple[str, str, SimulationResult]]:
        """Simulate every (benchmark, policy) grid point, optionally in
        parallel worker processes.

        The returned list is ordered benchmark-major, exactly like the
        serial nested loop, for every ``jobs`` value (see
        :meth:`run_points`); policies are reported in canonical string form.
        """
        specs = [self.resolve_spec(benchmark) for benchmark in benchmarks]
        wanted = [PolicySpec.of(policy) for policy in policies]
        points = [(spec, policy) for spec in specs for policy in wanted]
        results = self.run_points(
            points, config=config, jobs=jobs, chunksize=len(wanted)
        )
        return [
            (spec.name, policy.canonical(), result)
            for (spec, policy), result in zip(points, results)
        ]


#: Per-worker-process runner, built once by the pool initializer so that a
#: worker handling several grid points of the same benchmark reuses its
#: prepared workload and packed traces.
_GRID_RUNNER: Optional[BenchmarkRunner] = None


def _init_grid_worker(
    config: SimulatorConfig,
    pipeline_options: PipelineOptions,
    store: Optional[ResultStore] = None,
    trace_archive: Optional[TraceArchive] = None,
    engine: str = "auto",
) -> None:
    global _GRID_RUNNER
    _GRID_RUNNER = BenchmarkRunner(
        config=config,
        pipeline_options=pipeline_options,
        store=store,
        trace_archive=trace_archive,
        engine=engine,
    )


def _counter_state(tracker) -> tuple[int, int, int, int]:
    """(hits, misses, writes, corrupt) of a store/archive, ``(0,0,0,0)`` for
    ``None``."""
    if tracker is None:
        return (0, 0, 0, 0)
    return (tracker.hits, tracker.misses, tracker.writes, tracker.corrupt)


def _counter_delta(
    before: tuple[int, int, int, int], after: tuple[int, int, int, int]
) -> tuple[int, int, int, int]:
    return tuple(now - then for now, then in zip(after, before))


def _run_grid_chunk(
    points: Sequence[tuple[WorkloadSpec, PolicySpec]], attempt: int = 1
) -> tuple[list[SimulationResult], int, tuple, tuple]:
    """(results, simulations executed, store counter deltas, trace-archive
    counter deltas) for one contiguous chunk of grid points."""
    assert _GRID_RUNNER is not None, "worker initializer did not run"
    store_before = _counter_state(_GRID_RUNNER.store)
    trace_before = _counter_state(_GRID_RUNNER.trace_archive)
    simulated_before = _GRID_RUNNER.simulations_run
    results = [
        _GRID_RUNNER.run_resolved(spec, policy).result for spec, policy in points
    ]
    return (
        results,
        _GRID_RUNNER.simulations_run - simulated_before,
        _counter_delta(store_before, _counter_state(_GRID_RUNNER.store)),
        _counter_delta(trace_before, _counter_state(_GRID_RUNNER.trace_archive)),
    )


def _run_sweep_unit(
    payload: tuple[int, WorkloadSpec, PolicySpec], attempt: int = 1
) -> tuple[SimulationResult, int, tuple, tuple]:
    """Execute one checkpointed sweep unit in a supervised worker.

    Returns (result, simulations executed, store counter deltas,
    trace-archive counter deltas).  The ``sweep.unit`` failure point fires
    *before* any work, keyed by the unit's manifest index, so chaos runs can
    target one exact unit deterministically across any worker layout.
    """
    index, spec, policy = payload
    assert _GRID_RUNNER is not None, "worker initializer did not run"
    fire_point("sweep.unit", index, attempt)
    store_before = _counter_state(_GRID_RUNNER.store)
    trace_before = _counter_state(_GRID_RUNNER.trace_archive)
    simulated_before = _GRID_RUNNER.simulations_run
    result = _GRID_RUNNER.run_resolved(spec, policy).result
    return (
        result,
        _GRID_RUNNER.simulations_run - simulated_before,
        _counter_delta(store_before, _counter_state(_GRID_RUNNER.store)),
        _counter_delta(trace_before, _counter_state(_GRID_RUNNER.trace_archive)),
    )
