"""Table 3: raw SRRIP L2 MPKI and per-policy MPKI reductions.

Reproduces: **Table 3** of the paper — SRRIP's raw instruction/data L2 MPKI
per proxy benchmark, and the percentage MPKI reduction every evaluated policy
achieves over it (the MPKI view of the Figure 6 sweep).
CLI: ``repro run table3``.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.session import Session
from repro.experiments.runner import BenchmarkRunner
from repro.experiments.sweep import PolicySweepResult, run_policy_sweep
from repro.sim.config import EVALUATED_POLICIES, SimulatorConfig


def run_table3(
    benchmarks: Sequence[str] | None = None,
    policies: Sequence[str] | None = None,
    config: SimulatorConfig | None = None,
    runner: BenchmarkRunner | None = None,
    jobs: int | None = None,
    session: Session | None = None,
) -> PolicySweepResult:
    """Same sweep as Figure 6; Table 3 reports the MPKI view of it."""
    return run_policy_sweep(
        benchmarks=benchmarks,
        policies=policies or EVALUATED_POLICIES,
        config=config,
        runner=runner,
        jobs=jobs,
        session=session,
    )


def format_table3(sweep: PolicySweepResult) -> str:
    lines = []
    # Raw SRRIP MPKI block.
    header = f"{'L2 MPKI':12s} " + " ".join(f"{b[:8]:>9s}" for b in sweep.benchmarks)
    lines.append(header)
    lines.append(
        f"{'  Inst.':12s} "
        + " ".join(f"{sweep.baseline(b).l2_inst_mpki:9.2f}" for b in sweep.benchmarks)
    )
    lines.append(
        f"{'  Data':12s} "
        + " ".join(f"{sweep.baseline(b).l2_data_mpki:9.2f}" for b in sweep.benchmarks)
    )
    lines.append(
        f"{'  Inst/Data':12s} "
        + " ".join(
            f"{(sweep.baseline(b).l2_inst_mpki / sweep.baseline(b).l2_data_mpki if sweep.baseline(b).l2_data_mpki else 0.0):9.2f}"
            for b in sweep.benchmarks
        )
    )
    # Reduction block per policy.
    lines.append("")
    lines.append("L2 MPKI reduction (%) relative to SRRIP (negative = increase)")
    for policy in sweep.policies:
        inst = " ".join(
            f"{sweep.mpki_reduction(b, policy)[0]:+9.1f}" for b in sweep.benchmarks
        )
        data = " ".join(
            f"{sweep.mpki_reduction(b, policy)[1]:+9.1f}" for b in sweep.benchmarks
        )
        lines.append(f"{policy:10s} I {inst}  | geomean {sweep.geomean_inst_reduction(policy):+6.1f}")
        lines.append(f"{'':10s} D {data}  | geomean {sweep.geomean_data_reduction(policy):+6.1f}")
    return "\n".join(lines)
