"""Figure 8: sensitivity to the compiler hot threshold (percentile_hot).

Reproduces: **Figure 8** of the paper (Section 4.7).  For each threshold the
application is "re-built" (re-classified and re-laid out), re-loaded, and run
under TRRIP-1; speedups are normalised to the SRRIP baseline running the same
executable.  Figure 8a reports the hot/warm/cold split of the text section;
Figure 8b the TRRIP-1 speedup.  CLI: ``repro run figure8``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api.scenario import Scenario
from repro.api.session import Session
from repro.common.temperature import Temperature
from repro.core.pipeline import PipelineOptions
from repro.experiments.runner import BenchmarkRunner
from repro.sim.config import BASELINE_POLICY, SimulatorConfig

#: Thresholds swept by the paper (10% ... 100%).
DEFAULT_THRESHOLDS: tuple[float, ...] = (0.10, 0.80, 0.99, 0.9999, 1.0)

#: Benchmarks shown in Figure 8.
DEFAULT_BENCHMARKS: tuple[str, ...] = (
    "abseil",
    "deepsjeng",
    "gcc",
    "omnetpp",
    "rapidjson",
    "sqlite",
)


@dataclass(frozen=True)
class ThresholdPoint:
    """Results for one (benchmark, percentile_hot) combination."""

    benchmark: str
    percentile_hot: float
    text_fractions: dict[Temperature, float]
    speedup_over_srrip: float


def run_figure8(
    benchmarks: Sequence[str] | None = None,
    thresholds: Sequence[float] | None = None,
    config: SimulatorConfig | None = None,
    runner: BenchmarkRunner | None = None,
    session: Session | None = None,
) -> list[ThresholdPoint]:
    """Sweep percentile_hot and measure section split + TRRIP-1 speedup."""
    session = Session.ensure(session, runner=runner, config=config)
    # One scenario per (benchmark, threshold): the threshold lives in the
    # pipeline options, and each scenario contributes its baseline/TRRIP
    # pair in order, so the stream below is consumed pairwise.
    scenarios = [
        Scenario(
            benchmarks=benchmark,
            policies=(BASELINE_POLICY, "trrip-1"),
            options=PipelineOptions(percentile_hot=threshold),
            label="figure8",
        )
        for benchmark in (benchmarks or DEFAULT_BENCHMARKS)
        for threshold in (thresholds or DEFAULT_THRESHOLDS)
    ]
    points: list[ThresholdPoint] = []
    stream = session.stream(*scenarios)
    for (request, baseline), (_, trrip) in zip(stream, stream):
        image = trrip.prepared.binary.image
        by_temp = image.section_bytes_by_temperature()
        total = sum(by_temp.values()) or 1
        points.append(
            ThresholdPoint(
                benchmark=request.benchmark,
                percentile_hot=request.options.percentile_hot,
                text_fractions={
                    temp: size / total for temp, size in by_temp.items()
                },
                speedup_over_srrip=trrip.result.speedup_over(baseline.result),
            )
        )
    return points


def format_figure8(points: Sequence[ThresholdPoint]) -> str:
    lines = [
        f"{'benchmark':12s} {'pct_hot':>8s} {'hot':>6s} {'warm':>6s} {'cold':>6s} "
        f"{'speedup%':>9s}"
    ]
    for point in points:
        lines.append(
            f"{point.benchmark:12s} {point.percentile_hot:8.4f} "
            f"{point.text_fractions.get(Temperature.HOT, 0.0):6.3f} "
            f"{point.text_fractions.get(Temperature.WARM, 0.0):6.3f} "
            f"{point.text_fractions.get(Temperature.COLD, 0.0):6.3f} "
            f"{point.speedup_over_srrip * 100:+9.2f}"
        )
    return "\n".join(lines)
