"""Tables 1, 2, 4 and 5 of the paper.

Reproduces: **Table 1** (simulator configuration), **Table 2** (benchmarks,
input sets and instruction windows), **Table 4** (static power and area
overheads of the evaluated mechanisms) and **Table 5** (hot/warm page counts
per page size plus binary sizes).  None of these require timing simulation —
Tables 1/2/4 are derived from configuration and the analytical power model,
Table 5 runs only the compile/load pipeline.  CLI: ``repro run table1`` /
``table2`` / ``table4`` / ``table5``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.power import PowerAreaModel, PowerAreaReport
from repro.core.pipeline import CoDesignPipeline, PipelineOptions
from repro.osmodel.pages import (
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    PAGE_SIZE_16K,
    count_pages_by_temperature,
)
from repro.sim.config import SimulatorConfig, table1_rows
from repro.common.temperature import Temperature
from repro.workloads.spec import PROXY_BENCHMARK_NAMES, WorkloadSpec, get_spec


def _as_spec(benchmark: str | WorkloadSpec) -> WorkloadSpec:
    return benchmark if isinstance(benchmark, WorkloadSpec) else get_spec(benchmark)


# --------------------------------------------------------------------- Table 1
def run_table1(config: SimulatorConfig | None = None) -> list[tuple[str, str]]:
    """Simulator configuration rows (Table 1)."""
    return table1_rows(config)


def format_table1(rows: Sequence[tuple[str, str]]) -> str:
    width = max(len(component) for component, _ in rows)
    return "\n".join(f"{component:<{width}}  {text}" for component, text in rows)


# --------------------------------------------------------------------- Table 2
@dataclass(frozen=True)
class Table2Row:
    benchmark: str
    training_input: str
    evaluation_input: str
    fast_forward_instructions: int
    measured_instructions: int


def run_table2(
    benchmarks: Sequence[str | WorkloadSpec] | None = None,
) -> list[Table2Row]:
    """Benchmark / input-set / fast-forward summary (Table 2)."""
    rows = []
    for benchmark in benchmarks or PROXY_BENCHMARK_NAMES:
        spec = _as_spec(benchmark)
        rows.append(
            Table2Row(
                benchmark=spec.name,
                training_input=f"synthetic training walk (seed {spec.seed}, "
                f"{spec.training_iterations} iterations)",
                evaluation_input="synthetic evaluation walk (distinct random stream)",
                fast_forward_instructions=spec.warmup_instructions,
                measured_instructions=spec.eval_instructions,
            )
        )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    lines = [f"{'Benchmark':10s} {'Fast Fwd.':>10s} {'Measured':>10s}  Inputs"]
    for row in rows:
        lines.append(
            f"{row.benchmark:10s} {row.fast_forward_instructions:>10d} "
            f"{row.measured_instructions:>10d}  "
            f"train: {row.training_input}; eval: {row.evaluation_input}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- Table 4
def run_table4(config: SimulatorConfig | None = None) -> list[PowerAreaReport]:
    """Static power and area overheads (Table 4)."""
    return PowerAreaModel(config or SimulatorConfig.paper()).table4()


def format_table4(reports: Sequence[PowerAreaReport]) -> str:
    lines = [f"{'Mechanism':10s} {'Static Power (%)':>17s} {'Area (%)':>10s}"]
    for report in reports:
        lines.append(
            f"{report.mechanism:10s} {report.static_power_percent:>17.1f} "
            f"{report.area_percent:>10.1f}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- Table 5
@dataclass(frozen=True)
class Table5Row:
    benchmark: str
    pages_4k: tuple[int, int]
    pages_16k: tuple[int, int]
    pages_2m: tuple[int, int]
    binary_size_bytes: int


def run_table5(
    benchmarks: Sequence[str | WorkloadSpec] | None = None,
    options: PipelineOptions | None = None,
) -> list[Table5Row]:
    """Hot/warm page counts for 4 kB / 16 kB / 2 MB pages plus binary size."""
    pipeline = CoDesignPipeline(options or PipelineOptions())
    rows = []
    for benchmark in benchmarks or PROXY_BENCHMARK_NAMES:
        spec = _as_spec(benchmark)
        prepared = pipeline.prepare(spec)
        image = prepared.binary.image

        def hot_warm(page_size: int) -> tuple[int, int]:
            counts = count_pages_by_temperature(image, page_size)
            return counts[Temperature.HOT], counts[Temperature.WARM]

        rows.append(
            Table5Row(
                benchmark=spec.name,
                pages_4k=hot_warm(PAGE_SIZE_4K),
                pages_16k=hot_warm(PAGE_SIZE_16K),
                pages_2m=hot_warm(PAGE_SIZE_2M),
                binary_size_bytes=image.binary_size,
            )
        )
    return rows


def format_table5(rows: Sequence[Table5Row]) -> str:
    lines = [
        f"{'Benchmark':10s} {'4kB pages':>12s} {'16kB pages':>12s} "
        f"{'2MB pages':>11s} {'Binary (B)':>12s}"
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:10s} "
            f"{row.pages_4k[0]:>5d}/{row.pages_4k[1]:<6d} "
            f"{row.pages_16k[0]:>5d}/{row.pages_16k[1]:<6d} "
            f"{row.pages_2m[0]:>4d}/{row.pages_2m[1]:<6d} "
            f"{row.binary_size_bytes:>12d}"
        )
    return "\n".join(lines)
