"""Supervised worker pool: timeouts, retries with backoff, crash isolation.

``multiprocessing.Pool.map`` has exactly one failure mode: the whole map
dies.  A worker that raises aborts every queued task; a worker that is
OOM-killed can wedge the pool forever; a worker that hangs *does* wedge it
forever.  For thousand-point sweeps that is unacceptable — one bad unit must
cost one unit, not the campaign.

:class:`SupervisedPool` replaces the bare pool with a parent-side
supervisor:

* every worker is a directly-owned :class:`multiprocessing.Process` with a
  private task pipe, so the supervisor always knows *which* unit a worker is
  running and can kill precisely that worker;
* each unit gets a wall-clock **timeout** (``unit_timeout``) — an overdue
  worker is terminated and the unit retried on a fresh worker;
* failed attempts are retried up to ``max_retries`` times with
  deterministic **exponential backoff + jitter** (seeded, so reports are
  reproducible);
* a worker that **dies** (crash, kill, ENOMEM) fails only its in-flight
  unit; the supervisor respawns a replacement and keeps going;
* with ``keep_going`` the pool finishes every remaining unit after one
  exhausts its retries and reports the failure in the
  :class:`PoolReport`; without it the pool stops dispatching, tears down,
  and the caller re-raises the decoded worker exception.

Teardown is unconditional: every exit path (completion, abort, callback
exception, ``KeyboardInterrupt``) terminates and joins every child before
returning, so no worker process ever outlives the pool.  Completed results
remain available on :attr:`SupervisedPool.outcomes` even when the run is
interrupted, so callers can fold back counters for the work that *did*
finish.

Results travel over each worker's **private duplex pipe**, never a shared
``multiprocessing.Queue``.  A shared queue serializes every ``put`` through
one cross-process lock, and a worker SIGKILLed while its feeder thread
holds that lock (a single-CPU scheduling race) leaves the lock held forever
— wedging every *other* worker's next result and the pool with it.  With
per-worker pipes a dying worker can only ever truncate its own channel,
which the supervisor already treats as a crash of that worker alone.
"""

from __future__ import annotations

import heapq
import multiprocessing
import pickle
import random
import time
import traceback
from multiprocessing import connection
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.common.errors import ConfigurationError


def pool_context():
    """The multiprocessing context used for supervised workers.

    Prefers ``fork`` (cheap, inherits loaded modules and the fault-injection
    environment) and falls back to the platform default elsewhere.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass(frozen=True)
class SupervisionPolicy:
    """Retry/timeout/backoff knobs for a :class:`SupervisedPool`."""

    #: Retries after the first attempt (a unit runs at most ``1 + max_retries``
    #: times).
    max_retries: int = 1
    #: Wall-clock seconds a single attempt may take; ``None`` = unlimited.
    unit_timeout: Optional[float] = None
    #: First retry waits ~``backoff_base`` seconds, growing by
    #: ``backoff_factor`` per attempt, capped at ``backoff_max``.
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    #: Fractional jitter (+/-) applied to each delay, deterministically
    #: seeded per (seed, unit, attempt) so runs are reproducible.
    backoff_jitter: float = 0.25
    #: After a unit exhausts its retries: keep executing the remaining units
    #: (the failure lands in the report) instead of stopping the pool.
    keep_going: bool = False
    seed: int = 0

    def validate(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ConfigurationError("unit_timeout must be positive")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be >= 0")

    def backoff(self, unit_index: int, failed_attempt: int) -> float:
        """Delay before retrying ``unit_index`` after ``failed_attempt``."""
        base = min(
            self.backoff_base * self.backoff_factor ** (failed_attempt - 1),
            self.backoff_max,
        )
        if base <= 0:
            return 0.0
        # Integer-keyed Random is stable across processes and runs (no
        # PYTHONHASHSEED dependence), keeping chaos runs reproducible.
        rng = random.Random((self.seed << 24) ^ (unit_index << 8) ^ failed_attempt)
        return base * (1.0 + self.backoff_jitter * (2.0 * rng.random() - 1.0))


@dataclass
class AttemptFailure:
    """One failed attempt of one unit."""

    attempt: int
    kind: str  # "error" | "timeout" | "crash"
    message: str
    worker: int


@dataclass
class UnitOutcome:
    """Terminal state of one task handed to :meth:`SupervisedPool.run`."""

    index: int
    status: str = "pending"  # pending -> done | failed | not-run
    value: Any = None
    attempts: int = 0
    failures: list[AttemptFailure] = field(default_factory=list)
    #: Wall-clock duration of the successful attempt (0.0 if none).
    duration: float = 0.0
    #: Decoded exception of the final failed attempt, when picklable.
    error: Optional[BaseException] = None


@dataclass
class PoolReport:
    """Everything that happened during one :meth:`SupervisedPool.run`."""

    outcomes: list[UnitOutcome]
    backoff_total: float = 0.0
    #: True when the pool stopped dispatching early (keep_going=False and a
    #: unit exhausted its retries); remaining outcomes are ``not-run``.
    aborted: bool = False

    @property
    def done(self) -> list[UnitOutcome]:
        return [o for o in self.outcomes if o.status == "done"]

    @property
    def failed(self) -> list[UnitOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def not_run(self) -> list[UnitOutcome]:
        return [o for o in self.outcomes if o.status not in ("done", "failed")]

    @property
    def retried(self) -> list[UnitOutcome]:
        """Units that needed more than one attempt (whatever the outcome)."""
        return [o for o in self.outcomes if o.failures]

    def values(self) -> list[Any]:
        """Results in task order; raises if any unit did not complete."""
        self.raise_on_failure()
        return [outcome.value for outcome in self.outcomes]

    def raise_on_failure(self) -> None:
        """Re-raise the first failure (original exception when picklable)."""
        for outcome in self.outcomes:
            if outcome.status == "done":
                continue
            if outcome.error is not None:
                raise outcome.error
            detail = outcome.failures[-1].message if outcome.failures else (
                "cancelled before it ran"
            )
            raise RuntimeError(
                f"supervised unit {outcome.index} {outcome.status}: {detail}"
            )


# ------------------------------------------------------------- worker side
def _encode_error(error: BaseException) -> tuple:
    """(pickled exception or None, repr, formatted traceback)."""
    text = "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )
    try:
        payload = pickle.dumps(error)
    except Exception:
        payload = None
    return (payload, repr(error), text)


def _decode_error(encoded: tuple) -> tuple[Optional[BaseException], str]:
    payload, summary, text = encoded
    if payload is not None:
        try:
            return pickle.loads(payload), summary
        except Exception:
            pass
    return None, f"{summary}\n{text}"


def _worker_main(worker_id, conn, func, initializer, initargs):
    """Entry point of one supervised worker process.

    ``conn`` is the worker's private duplex pipe: tasks arrive on it and
    results go back on it, so nothing this process does — including dying
    mid-send — can interfere with any other worker's channel.
    """
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as error:
        conn.send((worker_id, None, 0, "init_error", _encode_error(error)))
        return
    conn.send((worker_id, None, 0, "ready", None))
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        index, attempt, payload = task
        try:
            value = func(payload, attempt)
        except BaseException as error:
            conn.send((worker_id, index, attempt, "error", _encode_error(error)))
        else:
            conn.send((worker_id, index, attempt, "ok", value))


# --------------------------------------------------------------- supervisor
class _Worker:
    __slots__ = ("id", "process", "conn", "ready", "running")

    def __init__(self, worker_id, process, conn):
        self.id = worker_id
        self.process = process
        self.conn = conn
        self.ready = False
        #: (task position, attempt, started monotonic, deadline or None)
        self.running: Optional[tuple[int, int, float, Optional[float]]] = None


class SupervisedPool:
    """Run tasks through supervised worker processes (see module docstring).

    ``func(payload, attempt)`` must be a module-level callable; it runs in
    the worker after ``initializer(*initargs)``.  The optional callbacks run
    in the parent as events happen:

    * ``on_start(position, attempt, worker_id)``
    * ``on_result(position, attempt, worker_id, duration, value)``
    * ``on_retry(position, attempt, worker_id, kind, message, delay)``
    * ``on_failed(position, attempts, kind, message)``

    A callback exception aborts the run (after full teardown) and
    propagates — the checkpointed sweep uses this for injected
    interruptions.
    """

    def __init__(
        self,
        func: Callable,
        workers: int = 1,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        policy: Optional[SupervisionPolicy] = None,
        on_start: Optional[Callable] = None,
        on_result: Optional[Callable] = None,
        on_retry: Optional[Callable] = None,
        on_failed: Optional[Callable] = None,
    ):
        self.func = func
        self.workers = max(1, workers)
        self.initializer = initializer
        self.initargs = initargs
        self.policy = policy or SupervisionPolicy()
        self.policy.validate()
        self.on_start = on_start
        self.on_result = on_result
        self.on_retry = on_retry
        self.on_failed = on_failed
        self._ctx = pool_context()
        self._workers: dict[int, _Worker] = {}
        self._next_worker_id = 0
        #: Available to callers even when run() raises (partial fold-back).
        self.outcomes: list[UnitOutcome] = []
        self.report: Optional[PoolReport] = None
        #: Workers that died before becoming ready, in a row; a small cap
        #: turns a broken initializer into an error instead of a spawn storm.
        self._init_failures = 0
        self._last_init_error = ""

    # ------------------------------------------------------------ lifecycle
    def run(self, payloads: Sequence[Any]) -> PoolReport:
        """Execute every payload; returns when all are done/failed/not-run."""
        payloads = list(payloads)
        self.outcomes = [UnitOutcome(index=i) for i in range(len(payloads))]
        self.report = PoolReport(outcomes=self.outcomes)
        if not payloads:
            return self.report
        #: min-heap of (ready time, task position, attempt)
        pending: list[tuple[float, int, int]] = [
            (0.0, position, 1) for position in range(len(payloads))
        ]
        heapq.heapify(pending)
        try:
            self._loop(payloads, pending)
        finally:
            self._shutdown()
            for outcome in self.outcomes:
                if outcome.status == "pending":
                    outcome.status = "not-run"
        return self.report

    def _loop(self, payloads, pending) -> None:
        while pending or self._busy():
            now = time.monotonic()
            outstanding = len(pending) + len(self._busy())
            self._ensure_workers(min(self.workers, outstanding))
            self._dispatch(payloads, pending, now)
            self._drain(pending, timeout=self._wait_time(pending, now))
            self._check_timeouts(pending)
            self._check_deaths(pending)
            if self.report.aborted:
                break

    # ------------------------------------------------------------- plumbing
    def _busy(self) -> list[_Worker]:
        return [w for w in self._workers.values() if w.running is not None]

    def _spawn(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        local, remote = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                remote,
                self.func,
                self.initializer,
                self.initargs,
            ),
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the worker's end so the worker's death
        # shows up as EOF on `local`.
        remote.close()
        self._workers[worker_id] = _Worker(worker_id, process, local)

    def _ensure_workers(self, target: int) -> None:
        while len(self._workers) < target:
            if self._init_failures >= 3:
                raise RuntimeError(
                    "supervised workers keep dying during initialization: "
                    + (self._last_init_error or "no error captured")
                )
            self._spawn()

    def _dispatch(self, payloads, pending, now: float) -> None:
        idle = [
            w
            for w in self._workers.values()
            if w.ready and w.running is None and w.process.is_alive()
        ]
        while idle and pending and pending[0][0] <= now:
            _, position, attempt = heapq.heappop(pending)
            worker = idle.pop()
            deadline = (
                now + self.policy.unit_timeout
                if self.policy.unit_timeout is not None
                else None
            )
            try:
                worker.conn.send((position, attempt, payloads[position]))
            except (BrokenPipeError, OSError):
                # The worker died between spawn and dispatch; the death check
                # respawns and the unit goes back into the queue unharmed.
                heapq.heappush(pending, (now, position, attempt))
                continue
            worker.running = (position, attempt, now, deadline)
            self.outcomes[position].attempts = attempt
            if self.on_start is not None:
                self.on_start(position, attempt, worker.id)

    def _wait_time(self, pending, now: float) -> float:
        horizon = []
        for worker in self._busy():
            deadline = worker.running[3]
            if deadline is not None:
                horizon.append(deadline - now)
        if pending:
            horizon.append(pending[0][0] - now)
        if not horizon:
            return 0.05
        return min(max(min(horizon), 0.005), 0.25)

    def _drain(self, pending, timeout: float) -> None:
        block = True
        broken: set = set()
        while True:
            conns = {
                w.conn: w
                for w in self._workers.values()
                if w.conn not in broken
            }
            if not conns:
                return
            readable = connection.wait(list(conns), timeout if block else 0)
            if not readable:
                return
            block = False
            for conn in readable:
                worker = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # The worker died — possibly mid-send, truncating its own
                    # pipe.  Only its unit is affected; the death check
                    # retires it and requeues the unit.
                    broken.add(conn)
                    continue
                self._handle_message(pending, worker, message)

    def _handle_message(self, pending, worker: _Worker, message) -> None:
        worker_id, position, attempt, status, payload = message
        if status == "ready":
            worker.ready = True
            self._init_failures = 0
            return
        if status == "init_error":
            _, summary = _decode_error(payload)
            self._last_init_error = summary
            return  # the death check retires the worker
        if worker.running is None or worker.running[:2] != (position, attempt):
            return  # stale result from an attempt already written off
        started = worker.running[2]
        worker.running = None
        duration = time.monotonic() - started
        outcome = self.outcomes[position]
        if status == "ok":
            outcome.status = "done"
            outcome.value = payload
            outcome.duration = duration
            if self.on_result is not None:
                self.on_result(position, attempt, worker_id, duration, payload)
        else:
            error, message_text = _decode_error(payload)
            self._attempt_failed(
                pending, position, attempt, worker_id, "error", message_text, error
            )

    def _check_timeouts(self, pending) -> None:
        if self.policy.unit_timeout is None:
            return
        now = time.monotonic()
        for worker in list(self._busy()):
            position, attempt, _, deadline = worker.running
            if deadline is None or now <= deadline:
                continue
            self._retire(worker, terminate=True)
            self._attempt_failed(
                pending,
                position,
                attempt,
                worker.id,
                "timeout",
                f"unit exceeded the {self.policy.unit_timeout:g}s wall-clock "
                "timeout and its worker was killed",
                None,
            )

    def _check_deaths(self, pending) -> None:
        for worker in list(self._workers.values()):
            if worker.process.is_alive():
                continue
            running = worker.running
            was_ready = worker.ready
            self._retire(worker, terminate=False)
            if running is not None:
                position, attempt, _, _ = running
                self._attempt_failed(
                    pending,
                    position,
                    attempt,
                    worker.id,
                    "crash",
                    f"worker exited with code {worker.process.exitcode} "
                    "mid-unit",
                    None,
                )
            elif not was_ready:
                self._init_failures += 1

    def _retire(self, worker: _Worker, terminate: bool) -> None:
        self._workers.pop(worker.id, None)
        if terminate and worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():  # pragma: no cover - last resort
            worker.process.kill()
            worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def _attempt_failed(
        self, pending, position, attempt, worker_id, kind, message, error
    ) -> None:
        outcome = self.outcomes[position]
        outcome.failures.append(
            AttemptFailure(attempt=attempt, kind=kind, message=message, worker=worker_id)
        )
        if attempt <= self.policy.max_retries:
            delay = self.policy.backoff(position, attempt)
            self.report.backoff_total += delay
            heapq.heappush(
                pending, (time.monotonic() + delay, position, attempt + 1)
            )
            if self.on_retry is not None:
                self.on_retry(position, attempt, worker_id, kind, message, delay)
            return
        outcome.status = "failed"
        outcome.error = error
        if self.on_failed is not None:
            self.on_failed(position, attempt, kind, message)
        if not self.policy.keep_going:
            self.report.aborted = True

    def _shutdown(self) -> None:
        """Terminate and join every worker; never leaks a child process."""
        for worker in list(self._workers.values()):
            if worker.running is None and worker.process.is_alive():
                try:
                    worker.conn.send(None)  # polite: let idle workers exit
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + 2.0
        for worker in list(self._workers.values()):
            if worker.running is None:
                worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in list(self._workers.values()):
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._workers.clear()
