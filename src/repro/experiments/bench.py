"""Engine-speed and lockstep-sweep benchmark harness (``repro bench``).

Measures the production engine (flat-array caches + packed-trace replay)
against the *seed-equivalent baseline loop*
(:mod:`repro.experiments.seed_engine`) on four trace shapes, plus a
multi-policy figure-sweep shape that compares lockstep replay against N
independent runs.  The same measurement code backs the pytest benchmark
(``benchmarks/test_bench_engine_speed.py``) and the ``repro bench`` CLI
subcommand, so perf numbers never require invoking pytest by path.

Timings are nondeterministic, so the raw report (``BENCH_engine.json``) is a
build artifact, never a committed file; what *is* committed is
``BENCH_baseline.json`` at the repository root — pinned, machine-independent
**speedup floors** that :func:`check_floors` asserts against.  The floors are
deliberately below typically measured values (CI machines vary); regressions
that matter (a hot path quietly falling back to object-per-block behaviour)
blow straight through them.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.common.trace import (
    FLAG_BRANCH,
    FLAG_MEM,
    FLAG_STORE,
    FLAG_TAKEN,
    PackedTrace,
    TraceRecord,
)
from repro.experiments.runner import BenchmarkRunner
from repro.experiments.seed_engine import build_seed_core
from repro.sim.config import SimulatorConfig
from repro.sim.simulator import SystemSimulator, run_lockstep

#: Default instruction count per shape (the historical benchmark size).
INSTRUCTIONS = 120_000
#: ``--tiny`` instruction count: seconds, for CI smoke runs.
TINY_INSTRUCTIONS = 30_000
#: Interleaved best-of-N rounds; both engines take the best of the same N
#: windows, so more rounds tightens the estimate without biasing the ratio.
ROUNDS = 5

#: (code lines, memory-operand rate, branch every N instructions)
SHAPES = {
    "hot_loop": (32, 0.0, 32),
    "resident": (64, 0.2, 16),
    "mixed": (512, 0.3, 16),
    "streaming": (4096, 0.35, 16),
}

#: The multi-policy figure-sweep shape: one real catalog workload replayed
#: under four L2 policies, lockstep vs independent.
SWEEP_BENCHMARK = "sqlite"
SWEEP_POLICIES = ("srrip", "lru", "drrip", "trrip-1")

#: Fallback floors used when no ``BENCH_baseline.json`` is found (kept in
#: sync with the committed file).  ``speedup_floors`` applies to the default
#: (``auto``/``vector``) replay engine; ``scalar_speedup_floors`` pins the
#: scalar loop so a regression in either kernel is caught independently.
DEFAULT_FLOORS = {
    "speedup_floors": {
        "hot_loop": 8.0,
        "resident": 5.0,
        "mixed": 4.0,
        "streaming": 4.5,
    },
    "scalar_speedup_floors": {
        "hot_loop": 6.5,
        "resident": 4.0,
        "mixed": 3.2,
        "streaming": 3.6,
    },
    # Lockstep's win grows with sweep size; the tiny measurement is noisy
    # enough that a break-even floor would trip on scheduler jitter alone,
    # so the pin only catches lockstep becoming an outright pessimisation.
    "lockstep_min_speedup": 0.85,
}


def baseline_path() -> Path:
    """The committed floors file at the repository root (if present)."""
    return Path(__file__).resolve().parents[3] / "BENCH_baseline.json"


def load_floors(path: Optional[Path] = None) -> dict:
    """Pinned speedup floors: the committed baseline file, else defaults."""
    candidate = path or baseline_path()
    if candidate.is_file():
        return json.loads(candidate.read_text())
    return DEFAULT_FLOORS


# ------------------------------------------------------------------- traces
def build_traces(
    shape: str, instructions: int = INSTRUCTIONS
) -> tuple[list[TraceRecord], PackedTrace]:
    """A synthetic trace in both representations (identical instructions)."""
    code_lines, mem_rate, branch_every = SHAPES[shape]
    rng = random.Random(42)
    records: list[TraceRecord] = []
    packed = PackedTrace()
    code_base, data_base = 0x10000, 0x800000
    total_slots = code_lines * 16
    data_lines = 48 if shape in ("hot_loop", "resident") else code_lines * 4
    for i in range(instructions):
        slot = i % total_slots
        pc = code_base + slot * 4
        is_branch = (slot % branch_every) == branch_every - 1
        taken = is_branch and (slot == total_slots - 1 or rng.random() < 0.1)
        target = code_base if slot == total_slots - 1 else pc + 8
        has_mem = mem_rate > 0 and rng.random() < mem_rate
        if shape == "streaming":
            mem = data_base + ((i * 64) % (data_lines * 64)) if has_mem else 0
        else:
            mem = data_base + rng.randrange(data_lines) * 64 if has_mem else 0
        store = has_mem and rng.random() < 0.3
        flags = (
            (FLAG_BRANCH if is_branch else 0)
            | (FLAG_TAKEN if taken else 0)
            | (FLAG_MEM if has_mem else 0)
            | (FLAG_STORE if store else 0)
        )
        packed.append_raw(pc, 4, flags, target if is_branch else 0, mem, 0, 0)
        records.append(
            TraceRecord(
                pc=pc,
                is_branch=is_branch,
                branch_taken=taken,
                branch_target=target if is_branch else 0,
                mem_address=mem if has_mem else None,
                is_store=store,
            )
        )
    return records, packed


# -------------------------------------------------------------- measurement
def measure_shape(
    shape: str,
    instructions: int = INSTRUCTIONS,
    rounds: int = ROUNDS,
    engine: str = "auto",
) -> dict:
    """Interleaved best-of-N measurement of both engines on one shape.

    ``engine`` selects the fast side's packed-trace replay kernel (the seed
    baseline side is always the record loop); results must stay bit-identical
    regardless, which the inline assertions enforce on every round.
    """
    records, packed = build_traces(shape, instructions)
    config = SimulatorConfig.scaled()
    best_seed = best_fast = float("inf")
    seed_result = fast_result = None
    for _ in range(rounds):
        core = build_seed_core(config)
        core.run(records)  # warm-up window
        core.hierarchy.reset_stats()
        start = time.perf_counter()
        seed_result = core.run(records)
        best_seed = min(best_seed, time.perf_counter() - start)

        simulator = SystemSimulator(config, benchmark=shape, engine=engine)
        simulator.warm_up(packed)
        start = time.perf_counter()
        fast_result = simulator.run(packed)
        best_fast = min(best_fast, time.perf_counter() - start)

    # The baseline replica models the same hardware: identical results.
    assert seed_result.cycles == fast_result.cycles
    assert seed_result.topdown == fast_result.topdown

    return {
        "instructions": instructions,
        "seed_ips": round(instructions / best_seed),
        "fast_ips": round(instructions / best_fast),
        "speedup": round(best_seed / best_fast, 2),
    }


def measure_lockstep_sweep(
    benchmark: str = SWEEP_BENCHMARK,
    policies: Sequence[str] = SWEEP_POLICIES,
    rounds: int = 2,
    tiny: bool = False,
) -> dict:
    """Wall-clock of a multi-policy sweep: lockstep vs N independent runs.

    Uses a real catalog workload (the figure-sweep shape) with the trace
    generated once and shared, so the comparison isolates the replay loops.
    The two executions must also be bit-identical, which is asserted here on
    the headline cycle counts (the full property is pinned by
    ``tests/test_lockstep.py``).
    """
    from repro.workloads.spec import tiny_spec

    config = SimulatorConfig.scaled()
    runner = BenchmarkRunner(config=config)
    spec = tiny_spec() if tiny else runner.resolve_spec(benchmark)
    prepared = runner._prepare_resolved(spec)
    warmup, measured = runner.packed_traces(prepared)

    def build(policy: str) -> SystemSimulator:
        return SystemSimulator(
            config.with_l2_policy(policy),
            translator=prepared.mmu(),
            benchmark=spec.name,
        )

    best_solo = best_lockstep = float("inf")
    solo_results = lockstep_results = None
    for _ in range(rounds):
        start = time.perf_counter()
        solo_results = []
        for policy in policies:
            simulator = build(policy)
            simulator.warm_up(warmup)
            solo_results.append(simulator.run(measured))
        best_solo = min(best_solo, time.perf_counter() - start)

        start = time.perf_counter()
        lockstep_results = run_lockstep(
            [build(policy) for policy in policies], warmup, measured
        )
        best_lockstep = min(best_lockstep, time.perf_counter() - start)

    for solo, lockstep in zip(solo_results, lockstep_results):
        assert solo.cycles == lockstep.cycles, "lockstep diverged from solo"

    return {
        "benchmark": spec.name,
        "policies": list(policies),
        "instructions": len(measured),
        "independent_s": round(best_solo, 4),
        "lockstep_s": round(best_lockstep, 4),
        "speedup": round(best_solo / best_lockstep, 2),
    }


def run_engine_bench(
    instructions: int = INSTRUCTIONS,
    rounds: int = ROUNDS,
    tiny: bool = False,
    sweep: bool = True,
    engine: str = "auto",
) -> dict:
    """The full bench report: per-shape engine speed plus the lockstep sweep."""
    if tiny:
        instructions = min(instructions, TINY_INSTRUCTIONS)
    shapes = {
        shape: measure_shape(shape, instructions, rounds, engine=engine)
        for shape in SHAPES
    }
    report = {
        "unit": "simulated instructions per second",
        "baseline": "seed-equivalent record loop (repro.experiments.seed_engine)",
        "engine": "flat-array caches + PackedTrace geometry columns",
        "replay_engine": engine,
        "tiny": tiny,
        "shapes": shapes,
        "peak_speedup": max(row["speedup"] for row in shapes.values()),
    }
    if sweep:
        report["lockstep_sweep"] = measure_lockstep_sweep(tiny=tiny)
    reference = load_floors().get("reference")
    if reference and not tiny:
        # Improvement over the last committed BENCH_engine.json reference
        # block (the previous PR's scalar engine).  The speedup ratio is the
        # machine-independent comparison: both numbers are measured against
        # the identical interleaved seed baseline, so it cancels out how
        # fast the measuring machine happens to be.
        improvement = {}
        for shape in ("mixed", "streaming"):
            row = shapes.get(shape)
            old_ips = reference.get(f"{shape}_fast_ips")
            old_speedup = reference.get(f"{shape}_speedup")
            if row and old_ips and old_speedup:
                improvement[shape] = {
                    "fast_ips_vs_reference": round(row["fast_ips"] / old_ips, 2),
                    "speedup_vs_reference": round(
                        row["speedup"] / old_speedup, 2
                    ),
                }
        report["improvement_vs_reference"] = improvement
    return report


# ------------------------------------------------------------------- floors
def check_floors(report: dict, floors: Optional[dict] = None) -> list[str]:
    """Pinned-floor assertions; returns human-readable violations (empty = ok).

    The floors are per replay engine: a ``scalar`` report is held to
    ``scalar_speedup_floors`` (the event-at-a-time loop's own regression
    line), everything else to ``speedup_floors`` (the vector kernel backs
    the ``auto`` default on every bench shape).
    """
    floors = floors or load_floors()
    violations = []
    shape_floors = floors.get("speedup_floors", {})
    if report.get("replay_engine") == "scalar":
        shape_floors = floors.get("scalar_speedup_floors", shape_floors)
    for shape, floor in shape_floors.items():
        row = report["shapes"].get(shape)
        if row is None:
            violations.append(f"{shape}: missing from report")
        elif row["speedup"] < floor:
            violations.append(
                f"{shape}: speedup {row['speedup']:.2f}x below the pinned "
                f"floor {floor:.2f}x"
            )
    sweep = report.get("lockstep_sweep")
    lockstep_floor = floors.get("lockstep_min_speedup")
    if sweep is not None and lockstep_floor is not None:
        if sweep["speedup"] < lockstep_floor:
            violations.append(
                f"lockstep sweep: {sweep['speedup']:.2f}x vs independent "
                f"runs, below the pinned floor {lockstep_floor:.2f}x"
            )
    return violations


def format_report(report: dict) -> str:
    """Human-readable rendering of :func:`run_engine_bench` output."""
    lines = [
        "[Engine speed] simulated instructions per second, seed vs fast "
        f"(replay engine: {report.get('replay_engine', 'auto')})",
        "",
        f"{'shape':<12} {'seed ips':>12} {'fast ips':>12} {'speedup':>9}",
    ]
    for shape, row in report["shapes"].items():
        lines.append(
            f"{shape:<12} {row['seed_ips']:>12,} {row['fast_ips']:>12,} "
            f"{row['speedup']:>8.2f}x"
        )
    sweep = report.get("lockstep_sweep")
    if sweep is not None:
        lines += [
            "",
            f"[Lockstep sweep] {sweep['benchmark']} x "
            f"{len(sweep['policies'])} policies "
            f"({', '.join(sweep['policies'])})",
            f"independent {sweep['independent_s']:.3f}s   "
            f"lockstep {sweep['lockstep_s']:.3f}s   "
            f"speedup {sweep['speedup']:.2f}x",
        ]
    improvement = report.get("improvement_vs_reference")
    if improvement:
        lines.append("")
        for shape, ratios in improvement.items():
            lines.append(
                f"[vs reference] {shape}: "
                f"{ratios['fast_ips_vs_reference']:.2f}x the committed "
                f"fast_ips, {ratios['speedup_vs_reference']:.2f}x the "
                "committed seed-relative speedup"
            )
    return "\n".join(lines)
