"""Shared policy-sweep machinery used by Figure 6 and Table 3.

Runs the (benchmark × policy) grid against the SRRIP baseline and exposes
speedup / MPKI-reduction / geomean accessors over it.  The CLI's
``repro sweep`` drives this directly with arbitrary benchmark and policy
lists; ``repro run figure6`` and ``repro run table3`` are fixed views of the
same sweep.

Beyond the plain in-memory sweep, this module is also the **fault-tolerant
execution layer** behind ``repro sweep``:

* :func:`build_manifest` expands a (benchmark × policy) grid into hashed
  :class:`SweepUnit` work units — one per simulation, keyed by the same
  content hash the result store uses — plus a manifest key hashing the
  whole unit list;
* :class:`SweepJournal` is an append-only JSONL checkpoint journal living
  next to the store (``<store>/journals/<manifest>.jsonl``) that records
  every unit state transition (running/done/failed, attempt count, worker
  id, duration) and tolerates a torn final line, so any crash leaves a
  readable history;
* :func:`execute_checkpointed` runs the pending units through a
  :class:`~repro.experiments.supervisor.SupervisedPool` (timeouts, retries
  with backoff, crash isolation) and returns a :class:`CheckpointedSweep` —
  the sweep plus a structured :class:`SweepExecutionReport` instead of a
  mid-flight traceback.

Resumability falls out of content addressing: a finished unit is durable in
the result store under its hash, so ``repro sweep --resume`` simply re-plans
the manifest, treats every loadable hash as done, and executes only the
missing ones.  Because simulations are deterministic, the resumed store and
report are byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.cache.replacement.spec import PolicySpec
from repro.common.errors import (
    ConfigurationError,
    SweepExecutionError,
    SweepInterrupted,
)
from repro.common.faults import fire_point
from repro.common.hashing import stable_hash
from repro.common.journal import AppendOnlyJournal
from repro.core.pipeline import PipelineOptions
from repro.experiments.runner import BenchmarkRunner, _run_sweep_unit
from repro.experiments.store import run_key
from repro.experiments.supervisor import SupervisedPool, SupervisionPolicy
from repro.sim.config import BASELINE_POLICY, SimulatorConfig
from repro.sim.results import (
    SimulationResult,
    geomean_reduction,
    geomean_speedup,
)
from repro.workloads.spec import WorkloadSpec
from repro.workloads.spec import resolve_spec as resolve_workload_spec


@dataclass
class PolicySweepResult:
    """All (benchmark, policy) simulation results plus derived metrics."""

    benchmarks: tuple[str, ...]
    policies: tuple[str, ...]
    baseline_policy: str
    results: dict[str, dict[str, SimulationResult]] = field(default_factory=dict)

    # ------------------------------------------------------------- accessors
    def baseline(self, benchmark: str) -> SimulationResult:
        return self.results[benchmark][self.baseline_policy]

    def result(self, benchmark: str, policy: str) -> SimulationResult:
        return self.results[benchmark][policy]

    def speedup(self, benchmark: str, policy: str) -> float:
        """Relative speedup of ``policy`` over the baseline (fraction)."""
        return self.result(benchmark, policy).speedup_over(self.baseline(benchmark))

    def mpki_reduction(self, benchmark: str, policy: str) -> tuple[float, float]:
        """(instruction, data) L2 MPKI reduction in percent."""
        return self.result(benchmark, policy).mpki_reduction_over(
            self.baseline(benchmark)
        )

    # --------------------------------------------------------------- geomeans
    def geomean_speedup(self, policy: str) -> float:
        return geomean_speedup(
            [self.speedup(benchmark, policy) for benchmark in self.benchmarks]
        )

    def geomean_inst_reduction(self, policy: str) -> float:
        return geomean_reduction(
            [self.mpki_reduction(b, policy)[0] for b in self.benchmarks]
        )

    def geomean_data_reduction(self, policy: str) -> float:
        return geomean_reduction(
            [self.mpki_reduction(b, policy)[1] for b in self.benchmarks]
        )

    def best_policy_by_speedup(self) -> str:
        return max(self.policies, key=self.geomean_speedup)


def run_policy_sweep(
    benchmarks: Sequence[str] | None = None,
    policies: Sequence[str] | None = None,
    config: SimulatorConfig | None = None,
    runner: BenchmarkRunner | None = None,
    jobs: int | None = None,
    session=None,
) -> PolicySweepResult:
    """Simulate every (benchmark, policy) pair against the SRRIP baseline.

    Thin wrapper over :meth:`repro.api.session.Session.sweep` keeping the
    historical signature: ``session=`` is the preferred handle, ``runner=``
    (an engine runner to adopt) and ``config=`` remain accepted.

    ``jobs`` fans the (benchmark × policy) grid out over worker processes
    (``0`` = all cores, ``None``/``1`` = serial).  Every grid point is an
    independent deterministic simulation, so the sweep contents are identical
    — including iteration order of the nested result dicts — for any ``jobs``
    value.
    """
    from repro.api.session import Session

    session = Session.ensure(session, runner=runner, config=config)
    return session.sweep(
        benchmarks=benchmarks,
        policies=policies,
        baseline=BASELINE_POLICY,
        jobs=jobs,
    )


# ===================================================================== units
#: Bump when the manifest/journal format changes; old journals then simply
#: stop matching and ``--resume`` refuses them.
SWEEP_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SweepUnit:
    """One hashed work unit of a sweep: a single (benchmark, policy) run."""

    #: Position in the manifest (stable across runs and resumes).
    index: int
    benchmark: str
    policy: str
    #: Result-store content hash of this run — the durability token.
    key: str
    spec: WorkloadSpec
    policy_spec: PolicySpec


@dataclass(frozen=True)
class SweepManifest:
    """The full expansion of a sweep into work units, content-addressed.

    ``key`` hashes the ordered unit-key list (plus a schema version), so a
    manifest identifies *exactly* one sweep: same benchmarks, policies,
    configuration and pipeline options, in the same order.  The checkpoint
    journal is named after it — resuming with a different grid is a
    :class:`~repro.common.errors.ConfigurationError`, not silent corruption.
    """

    units: tuple[SweepUnit, ...]
    benchmarks: tuple[str, ...]
    policies: tuple[str, ...]
    baseline: str
    key: str

    def __len__(self) -> int:
        return len(self.units)


def build_manifest(
    benchmarks: Sequence[str | WorkloadSpec],
    policies: Sequence[str | PolicySpec],
    baseline: str | PolicySpec = BASELINE_POLICY,
    config: Optional[SimulatorConfig] = None,
    options: Optional[PipelineOptions] = None,
) -> SweepManifest:
    """Expand a (benchmark × policy) grid into hashed work units.

    Unit order is benchmark-major with the baseline first within each
    benchmark — exactly the order :meth:`Session.sweep` executes, so the
    checkpointed path produces the identical store contents and sweep
    result.
    """
    run_config = config or SimulatorConfig.default()
    run_options = options or PipelineOptions()
    baseline = PolicySpec.of(baseline)
    wanted = [PolicySpec.of(policy) for policy in policies]
    ordered = [baseline] + [policy for policy in wanted if policy != baseline]
    specs = [
        resolve_workload_spec(benchmark, run_config.workload_scale)
        for benchmark in benchmarks
    ]
    units = []
    for spec in specs:
        for policy in ordered:
            unit_config = run_config.with_l2_policy(policy)
            units.append(
                SweepUnit(
                    index=len(units),
                    benchmark=spec.name,
                    policy=policy.canonical(),
                    key=run_key(spec, policy, unit_config, run_options),
                    spec=spec,
                    policy_spec=policy,
                )
            )
    manifest_key = stable_hash(
        {
            "schema": SWEEP_SCHEMA_VERSION,
            "units": [unit.key for unit in units],
        }
    )
    return SweepManifest(
        units=tuple(units),
        benchmarks=tuple(spec.name for spec in specs),
        policies=tuple(policy.canonical() for policy in ordered),
        baseline=baseline.canonical(),
        key=manifest_key,
    )


# =================================================================== journal
class SweepJournal(AppendOnlyJournal):
    """Append-only JSONL checkpoint journal for one sweep manifest.

    The write/replay discipline (fsync per line, torn-tail-tolerant replay)
    lives in :class:`~repro.common.journal.AppendOnlyJournal`; this adds
    the manifest naming convention and the ``done``-unit view ``--resume``
    plans from.  The journal is an *audit log with resume hints* —
    correctness never depends on it, because the result store is the
    source of truth for what is durably done.
    """

    @classmethod
    def for_manifest(cls, store_root: Path, manifest_key: str) -> "SweepJournal":
        return cls(Path(store_root) / "journals" / f"{manifest_key}.jsonl")

    def done_units(self) -> set[int]:
        """Unit indices the journal saw complete (any prior run)."""
        return {
            int(event["unit"])
            for event in self.replay()
            if event["event"] == "done" and "unit" in event
        }


# ==================================================================== report
@dataclass
class SweepUnitFailure:
    """One unit that exhausted its retries (structured, for the summary)."""

    index: int
    benchmark: str
    policy: str
    key: str
    attempts: int
    kind: str  # "error" | "timeout" | "crash"
    message: str

    def describe(self) -> str:
        return (
            f"unit {self.index} ({self.benchmark}/{self.policy}) failed "
            f"after {self.attempts} attempt(s) [{self.kind}]: {self.message}"
        )


@dataclass
class SweepExecutionReport:
    """What happened while executing one sweep manifest."""

    total: int
    #: Units served straight from the result store (no execution needed).
    cached: int = 0
    #: Cached units that a *previous* journalled run completed — the part of
    #: ``cached`` that ``--resume`` recovered rather than re-simulated.
    resumed: int = 0
    #: Units dispatched to a worker at least once.
    attempted: int = 0
    succeeded: int = 0
    #: Units that needed more than one attempt.
    retried: int = 0
    failed: int = 0
    #: Units never dispatched (sweep aborted or interrupted first).
    not_run: int = 0
    #: Total seconds spent in retry backoff delays.
    backoff_total: float = 0.0
    #: True when the sweep stopped mid-flight (SweepInterrupted); completed
    #: units are durable and ``--resume`` picks up the rest.
    interrupted: bool = False
    failures: list[SweepUnitFailure] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Every unit has a result (cached or freshly simulated)."""
        return (
            not self.interrupted
            and self.failed == 0
            and self.cached + self.succeeded == self.total
        )

    def summary_line(self) -> str:
        """The one-line execution summary ``repro sweep`` prints."""
        parts = [
            f"{self.total} unit(s)",
            f"{self.attempted} attempted",
            f"{self.succeeded} succeeded",
            f"{self.cached} cached",
            f"{self.retried} retried",
            f"{self.failed} failed",
        ]
        if self.resumed:
            parts.insert(4, f"{self.resumed} resumed")
        if self.not_run:
            parts.append(f"{self.not_run} not run")
        line = f"# sweep units: {', '.join(parts)}"
        if self.backoff_total > 0:
            line += f"; backoff {self.backoff_total:.2f}s"
        if self.interrupted:
            line += " [interrupted]"
        return line


@dataclass
class CheckpointedSweep:
    """A sweep result plus the execution report that produced it.

    ``sweep`` only carries every (benchmark, policy) cell when
    ``report.complete`` — renderers like Figure 6/Table 3 must check before
    indexing into it.
    """

    sweep: PolicySweepResult
    report: SweepExecutionReport
    manifest: SweepManifest
    journal_path: Path

    def raise_on_failure(self) -> None:
        """Exception path for programmatic callers (the CLI reports instead).

        Raises :class:`~repro.common.errors.SweepInterrupted` when the sweep
        stopped mid-flight and :class:`~repro.common.errors.SweepExecutionError`
        when units exhausted their retries; a no-op for a complete sweep.
        """
        if self.report.complete:
            return
        if self.report.interrupted:
            raise SweepInterrupted(
                f"sweep interrupted: {self.report.summary_line()} "
                "(resume=True picks up the missing units)"
            )
        details = "; ".join(f.describe() for f in self.report.failures)
        raise SweepExecutionError(
            f"sweep incomplete: {self.report.summary_line()}"
            + (f" — {details}" if details else "")
        )


# ================================================================= execution
def execute_checkpointed(
    runner: BenchmarkRunner,
    manifest: SweepManifest,
    jobs: Optional[int] = None,
    supervision: Optional[SupervisionPolicy] = None,
    resume: bool = False,
) -> CheckpointedSweep:
    """Execute a sweep manifest fault-tolerantly (see module docstring).

    Every pending unit runs in a supervised worker process — even with
    ``jobs=1`` — so a crash, hang or injected fault can never take the
    parent down.  Completed units are immediately durable (store write +
    journal line + counter fold-back), which is what makes interruption at
    *any* point recoverable with ``resume=True``.

    This function does not raise for unit failures or interruptions; it
    reports them structurally in :attr:`CheckpointedSweep.report`.  Callers
    that want an exception use
    :meth:`SweepExecutionReport.complete`/:class:`SweepExecutionError`.
    """
    if runner.store is None:
        raise ConfigurationError(
            "checkpointed sweeps need a persistent result store "
            "(pass --store or set REPRO_CACHE_DIR)"
        )
    supervision = supervision or SupervisionPolicy()
    store = runner.store
    journal = SweepJournal.for_manifest(store.root, manifest.key)

    prior_done: set[int] = set()
    if resume:
        if not journal.exists():
            raise ConfigurationError(
                f"nothing to resume: no journal for this sweep manifest "
                f"({manifest.key[:12]}…) under {journal.path.parent}"
            )
        prior_done = journal.done_units()

    report = SweepExecutionReport(total=len(manifest))
    results: dict[int, SimulationResult] = {}
    pending: list[SweepUnit] = []
    for unit in manifest.units:
        stored = store.load_run(unit.key, record=False)
        if stored is not None:
            store.hits += 1
            results[unit.index] = stored.result
            report.cached += 1
            if unit.index in prior_done:
                report.resumed += 1
        else:
            pending.append(unit)

    journal.record(
        "begin",
        schema=SWEEP_SCHEMA_VERSION,
        manifest=manifest.key,
        total=len(manifest),
        cached=report.cached,
        pending=[unit.index for unit in pending],
        resume=resume,
    )

    try:
        if pending:
            _execute_pending(runner, pending, journal, report, results, jobs, supervision)
        status = (
            "interrupted"
            if report.interrupted
            else ("failed" if report.failed else "complete")
        )
        journal.record("end", status=status)
    finally:
        journal.close()

    report.not_run = report.total - report.cached - report.succeeded - report.failed

    sweep = PolicySweepResult(
        benchmarks=manifest.benchmarks,
        policies=manifest.policies,
        baseline_policy=manifest.baseline,
    )
    for unit in manifest.units:
        if unit.index in results:
            sweep.results.setdefault(unit.benchmark, {})[unit.policy] = results[
                unit.index
            ]
    return CheckpointedSweep(
        sweep=sweep, report=report, manifest=manifest, journal_path=journal.path
    )


def _execute_pending(
    runner: BenchmarkRunner,
    pending: list[SweepUnit],
    journal: SweepJournal,
    report: SweepExecutionReport,
    results: dict[int, SimulationResult],
    jobs: Optional[int],
    supervision: SupervisionPolicy,
) -> None:
    """Run the pending units through a supervised pool, checkpointing each."""
    if jobs is None or jobs == 1:
        workers = 1
    elif jobs == 0:
        workers = os.cpu_count() or 1
    else:
        workers = jobs
    workers = min(workers, len(pending))
    completed = 0

    def on_start(position: int, attempt: int, worker_id: int) -> None:
        unit = pending[position]
        journal.record(
            "running",
            unit=unit.index,
            key=unit.key,
            attempt=attempt,
            worker=worker_id,
        )

    def on_result(position, attempt, worker_id, duration, value) -> None:
        nonlocal completed
        unit = pending[position]
        result, simulated, store_delta, trace_delta = value
        # Fold + record *before* the failure point below: a completed unit
        # is durable and visible even when the sweep is interrupted right
        # after it.
        runner.fold_worker_counters(simulated, store_delta, trace_delta)
        results[unit.index] = result
        journal.record(
            "done",
            unit=unit.index,
            key=unit.key,
            attempt=attempt,
            worker=worker_id,
            duration=round(duration, 6),
            simulated=simulated,
        )
        completed += 1
        fire_point("sweep.completed", completed)

    def on_retry(position, attempt, worker_id, kind, message, delay) -> None:
        unit = pending[position]
        journal.record(
            "retry",
            unit=unit.index,
            key=unit.key,
            attempt=attempt,
            worker=worker_id,
            kind=kind,
            message=message,
            delay=round(delay, 6),
        )

    def on_failed(position, attempts, kind, message) -> None:
        unit = pending[position]
        journal.record(
            "failed",
            unit=unit.index,
            key=unit.key,
            attempts=attempts,
            kind=kind,
            message=message,
        )
        report.failures.append(
            SweepUnitFailure(
                index=unit.index,
                benchmark=unit.benchmark,
                policy=unit.policy,
                key=unit.key,
                attempts=attempts,
                kind=kind,
                message=message,
            )
        )

    pool = SupervisedPool(
        _run_sweep_unit,
        workers=workers,
        initializer=_init_sweep_worker,
        initargs=(
            runner.config,
            runner.pipeline_options,
            runner.store,
            runner.trace_archive,
        ),
        policy=supervision,
        on_start=on_start,
        on_result=on_result,
        on_retry=on_retry,
        on_failed=on_failed,
    )
    payloads = [(unit.index, unit.spec, unit.policy_spec) for unit in pending]
    try:
        pool.run(payloads)
    except SweepInterrupted:
        report.interrupted = True
    finally:
        for outcome in pool.outcomes:
            if outcome.attempts > 0:
                report.attempted += 1
            if outcome.attempts > 1:
                report.retried += 1
            if outcome.status == "done":
                report.succeeded += 1
            elif outcome.status == "failed":
                report.failed += 1
        if pool.report is not None:
            report.backoff_total += pool.report.backoff_total


def _init_sweep_worker(config, pipeline_options, store, trace_archive) -> None:
    """Sweep workers are grid workers: same per-process engine runner."""
    from repro.experiments.runner import _init_grid_worker

    _init_grid_worker(config, pipeline_options, store, trace_archive)
