"""Shared policy-sweep machinery used by Figure 6 and Table 3.

Runs the (benchmark × policy) grid against the SRRIP baseline and exposes
speedup / MPKI-reduction / geomean accessors over it.  The CLI's
``repro sweep`` drives this directly with arbitrary benchmark and policy
lists; ``repro run figure6`` and ``repro run table3`` are fixed views of the
same sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.runner import BenchmarkRunner
from repro.sim.config import BASELINE_POLICY, SimulatorConfig
from repro.sim.results import (
    SimulationResult,
    geomean_reduction,
    geomean_speedup,
)


@dataclass
class PolicySweepResult:
    """All (benchmark, policy) simulation results plus derived metrics."""

    benchmarks: tuple[str, ...]
    policies: tuple[str, ...]
    baseline_policy: str
    results: dict[str, dict[str, SimulationResult]] = field(default_factory=dict)

    # ------------------------------------------------------------- accessors
    def baseline(self, benchmark: str) -> SimulationResult:
        return self.results[benchmark][self.baseline_policy]

    def result(self, benchmark: str, policy: str) -> SimulationResult:
        return self.results[benchmark][policy]

    def speedup(self, benchmark: str, policy: str) -> float:
        """Relative speedup of ``policy`` over the baseline (fraction)."""
        return self.result(benchmark, policy).speedup_over(self.baseline(benchmark))

    def mpki_reduction(self, benchmark: str, policy: str) -> tuple[float, float]:
        """(instruction, data) L2 MPKI reduction in percent."""
        return self.result(benchmark, policy).mpki_reduction_over(
            self.baseline(benchmark)
        )

    # --------------------------------------------------------------- geomeans
    def geomean_speedup(self, policy: str) -> float:
        return geomean_speedup(
            [self.speedup(benchmark, policy) for benchmark in self.benchmarks]
        )

    def geomean_inst_reduction(self, policy: str) -> float:
        return geomean_reduction(
            [self.mpki_reduction(b, policy)[0] for b in self.benchmarks]
        )

    def geomean_data_reduction(self, policy: str) -> float:
        return geomean_reduction(
            [self.mpki_reduction(b, policy)[1] for b in self.benchmarks]
        )

    def best_policy_by_speedup(self) -> str:
        return max(self.policies, key=self.geomean_speedup)


def run_policy_sweep(
    benchmarks: Sequence[str] | None = None,
    policies: Sequence[str] | None = None,
    config: SimulatorConfig | None = None,
    runner: BenchmarkRunner | None = None,
    jobs: int | None = None,
    session=None,
) -> PolicySweepResult:
    """Simulate every (benchmark, policy) pair against the SRRIP baseline.

    Thin wrapper over :meth:`repro.api.session.Session.sweep` keeping the
    historical signature: ``session=`` is the preferred handle, ``runner=``
    (an engine runner to adopt) and ``config=`` remain accepted.

    ``jobs`` fans the (benchmark × policy) grid out over worker processes
    (``0`` = all cores, ``None``/``1`` = serial).  Every grid point is an
    independent deterministic simulation, so the sweep contents are identical
    — including iteration order of the nested result dicts — for any ``jobs``
    value.
    """
    from repro.api.session import Session

    session = Session.ensure(session, runner=runner, config=config)
    return session.sweep(
        benchmarks=benchmarks,
        policies=policies,
        baseline=BASELINE_POLICY,
        jobs=jobs,
    )
