"""Faithful replica of the seed revision's simulation engine hot path.

The engine-speed benchmark (``test_bench_engine_speed.py``) needs a
*seed-equivalent baseline loop* to measure the fast engine against: the
record-at-a-time replay the repository shipped with, where every cache line is
a :class:`CacheBlock` object, every lookup linearly scans all ways of a set
with Python attribute lookups, every level of the walk builds an
:class:`AccessResult`, and every prefetch copies the demand request.  The
production classes no longer work that way (flat tag/metadata columns,
inlined scalar walks, packed traces), so the seed behaviour is vendored here —
limited to the hot path, with the current replacement-policy and value objects
reused where they only make the baseline *faster* (keeping the measured
speedup conservative).

This module must only be used for benchmarking; the simulation results it
produces are identical to the production engine's (the data structures differ,
the modelled semantics do not), which the speed benchmark asserts as a sanity
check.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.cache.block import CacheBlock
from repro.cache.cache import SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.prefetch import StridePrefetcher, make_prefetcher
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.basic import LRUPolicy
from repro.cache.replacement.factory import create_policy
from repro.cache.replacement.rrip import RRIPBase
from repro.common.addressing import line_address
from repro.common.request import AccessResult, AccessType, HitLevel, MemoryRequest
from repro.cpu.core import CoreModel


@dataclass
class SeedCacheStats:
    """Seed-revision per-cache counters: a plain (non-slotted) dataclass whose
    aggregate counters are stored and incremented on every access."""

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    inst_accesses: int = 0
    inst_hits: int = 0
    inst_misses: int = 0
    data_accesses: int = 0
    data_hits: int = 0
    data_misses: int = 0
    prefetch_accesses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    fills: int = 0
    prefetch_fills: int = 0
    evictions: int = 0
    invalidations: int = 0
    writebacks: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


class SeedLRUPolicy(LRUPolicy):
    """Seed-revision LRU hooks: per-call index validation and helper calls."""

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def on_hit(self, set_index: int, way: int, request) -> None:
        self._check_set(set_index)
        self._check_way(way)
        self._touch(set_index, way)

    def on_insert(self, set_index: int, way: int, request) -> None:
        self._check_set(set_index)
        self._check_way(way)
        self._touch(set_index, way)

    def select_victim(self, set_index: int, request) -> int:
        self._check_set(set_index)
        stamps = self._stamps[set_index]
        return min(range(self.num_ways), key=lambda way: stamps[way])


def _seed_rrip_hooks(policy: ReplacementPolicy) -> ReplacementPolicy:
    """Restore the seed's validated ``set_rrpv`` calls on RRIP-family hooks."""
    if isinstance(policy, RRIPBase) and type(policy).on_hit is RRIPBase.on_hit:
        def on_hit(set_index, way, request, _p=policy):
            _p.set_rrpv(set_index, way, _p.rrpv_immediate)

        def on_insert(set_index, way, request, _p=policy):
            _p.set_rrpv(set_index, way, _p.insertion_rrpv(set_index, request))

        def select_victim(set_index, request, _p=policy):
            _p._check_set(set_index)
            rrpvs = _p._rrpv[set_index]
            while True:
                for way in range(_p.num_ways):
                    if rrpvs[way] >= _p.rrpv_distant:
                        return way
                for way in range(_p.num_ways):
                    rrpvs[way] = min(rrpvs[way] + 1, _p.rrpv_max)

        policy.on_hit = on_hit  # type: ignore[method-assign]
        policy.on_insert = on_insert  # type: ignore[method-assign]
        policy.select_victim = select_victim  # type: ignore[method-assign]
    return policy


class SeedCache(SetAssociativeCache):
    """Seed-revision cache: one :class:`CacheBlock` object per line, O(ways)
    linear probes, no tag index.

    The production base class keeps its state in flat columns now, so this
    replica rebuilds the seed's object-per-block storage (``self._sets``) and
    overrides every access path to use it; the inherited columns stay empty
    and unused.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stats = SeedCacheStats()
        self._sets: list[list[CacheBlock]] = [
            [CacheBlock() for _ in range(self.associativity)]
            for _ in range(self.num_sets)
        ]
        self._time = 0

    # Seed-revision divide-based address geometry.
    def set_index_of(self, address: int) -> int:
        return (address // self.line_size) % self.num_sets

    def tag_of(self, address: int) -> int:
        return address // self._tag_divisor

    def probe(self, address: int) -> Optional[int]:
        set_index = self.set_index_of(address)
        tag = self.tag_of(address)
        for way, block in enumerate(self._sets[set_index]):
            if block.valid and block.tag == tag:
                return way
        return None

    def contains(self, address: int) -> bool:
        return self.probe(address) is not None

    def access(self, request: MemoryRequest) -> bool:
        self._time += 1
        set_index = self.set_index_of(request.address)
        way = self.probe(request.address)
        hit = way is not None
        self._record_access(request, hit)
        if hit:
            block = self._sets[set_index][way]
            block.last_access_time = self._time
            block.access_count += 1
            if request.is_write:
                block.dirty = True
            self.policy.on_hit(set_index, way, request)
        return hit

    def _record_access(self, request: MemoryRequest, hit: bool) -> None:
        stats = self.stats
        if request.is_prefetch:
            stats.prefetch_accesses += 1
            if hit:
                stats.prefetch_hits += 1
            else:
                stats.prefetch_misses += 1
            return
        stats.demand_accesses += 1
        if hit:
            stats.demand_hits += 1
        else:
            stats.demand_misses += 1
        if request.is_instruction:
            stats.inst_accesses += 1
            if hit:
                stats.inst_hits += 1
            else:
                stats.inst_misses += 1
        else:
            stats.data_accesses += 1
            if hit:
                stats.data_hits += 1
            else:
                stats.data_misses += 1

    def fill(self, request: MemoryRequest) -> Optional[CacheBlock]:
        return self._seed_fill_impl(request, copy_victim=True)

    def fill_raw(self, request: MemoryRequest):
        return self._seed_fill_impl(request, copy_victim=False)

    def _seed_fill_impl(self, request: MemoryRequest, copy_victim: bool):
        self._time += 1
        set_index = self.set_index_of(request.address)
        tag = self.tag_of(request.address)
        blocks = self._sets[set_index]

        existing = self.probe(request.address)
        if existing is not None:
            block = blocks[existing]
            was_dirty = block.dirty
            self._install_block(block, request, tag)
            if was_dirty:
                block.dirty = True
            return None

        victim = None
        way = self._find_invalid_way(set_index)
        if way is None:
            way = self.policy.select_victim(set_index, request)
            block = blocks[way]
            if block.valid:
                victim = (
                    self._copy_block(block)
                    if copy_victim
                    else (block.address, block.is_instruction, block.pc)
                )
                self.stats.evictions += 1
                if block.dirty:
                    self.stats.writebacks += 1
                self.policy.on_evict(set_index, way, request)

        self._install_block(blocks[way], request, tag)
        self.stats.fills += 1
        if request.is_prefetch:
            self.stats.prefetch_fills += 1
        self.policy.on_insert(set_index, way, request)
        return victim

    def _find_invalid_way(self, set_index: int) -> Optional[int]:
        for way, block in enumerate(self._sets[set_index]):
            if not block.valid:
                return way
        return None

    def _install_block(self, block: CacheBlock, request: MemoryRequest, tag: int) -> None:
        address = request.address
        block.tag = tag
        block.address = address - address % self.line_size
        block.valid = True
        block.dirty = request.access_type is AccessType.DATA_STORE
        block.is_instruction = request.access_type is AccessType.INSTRUCTION_FETCH
        block.temperature = request.temperature
        block.pc = request.pc
        block.insertion_time = self._time
        block.last_access_time = self._time
        block.access_count = 0

    @staticmethod
    def _copy_block(block: CacheBlock) -> CacheBlock:
        return CacheBlock(
            tag=block.tag,
            address=block.address,
            valid=True,
            dirty=block.dirty,
            is_instruction=block.is_instruction,
            temperature=block.temperature,
            pc=block.pc,
            insertion_time=block.insertion_time,
            last_access_time=block.last_access_time,
            access_count=block.access_count,
        )

    def invalidate(self, address: int) -> bool:
        set_index = self.set_index_of(address)
        way = self.probe(address)
        if way is None:
            return False
        self.policy.on_evict(set_index, way, None)
        self._sets[set_index][way].invalidate()
        self.stats.invalidations += 1
        return True

    def reset(self) -> None:
        for blocks in self._sets:
            for block in blocks:
                block.invalidate()
        self.stats.reset()
        self.policy.reset()
        self._time = 0


class SeedStridePrefetcher(StridePrefetcher):
    """Seed-revision stride prefetcher: allocates a fresh list per call."""

    def observe(self, request: MemoryRequest, hit: bool):
        key = request.pc % self.table_entries if request.pc else (
            request.address // 4096
        ) % self.table_entries
        entry = self._table.get(key)
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.pop(next(iter(self._table)))
            from repro.cache.prefetch import _StrideEntry

            self._table[key] = _StrideEntry(last_address=request.address)
            return []

        stride = request.address - entry.last_address
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, self.threshold + 2)
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            entry.stride = stride
        entry.last_address = request.address

        if entry.confidence < self.threshold or entry.stride == 0:
            return []
        base = request.address
        prefetches = []
        for i in range(1, self.degree + 1):
            target = base + i * entry.stride
            if target >= 0:
                prefetches.append(line_address(target, self.line_size))
        return prefetches


def _build_seed_cache(name, cfg, line_size):
    num_sets = cfg.size_bytes // (cfg.associativity * line_size)
    if cfg.policy == "lru":
        policy = SeedLRUPolicy(num_sets, cfg.associativity)
    else:
        policy = _seed_rrip_hooks(
            create_policy(cfg.policy, num_sets, cfg.associativity, **cfg.policy_kwargs)
        )
    return SeedCache(
        name=name,
        size_bytes=cfg.size_bytes,
        associativity=cfg.associativity,
        policy=policy,
        line_size=line_size,
    )


def _seed_prefetcher(name: str, **kwargs):
    if name == "stride":
        return SeedStridePrefetcher(**kwargs)
    return make_prefetcher(name, **kwargs)


class SeedHierarchy(CacheHierarchy):
    """Seed-revision hierarchy walk: an ``AccessResult`` per level, list-based
    prefetch target collection, and ``replace``-style prefetch copies."""

    def __init__(self, config: HierarchyConfig) -> None:
        super().__init__(config)
        line = config.line_size
        self.l1i = _build_seed_cache("L1I", config.l1i, line)
        self.l1d = _build_seed_cache("L1D", config.l1d, line)
        self.l2 = _build_seed_cache("L2", config.l2, line)
        self.slc = _build_seed_cache("SLC", config.slc, line)
        self.l1i_prefetcher = _seed_prefetcher(
            config.l1i.prefetcher, **config.l1i.prefetcher_kwargs
        )
        self.l1d_prefetcher = _seed_prefetcher(
            config.l1d.prefetcher, **config.l1d.prefetcher_kwargs
        )
        self.l2_prefetcher = _seed_prefetcher(
            config.l2.prefetcher, **config.l2.prefetcher_kwargs
        )

    def _access(
        self,
        request: MemoryRequest,
        l1,
        l1_prefetcher,
        allow_prefetch: bool = True,
    ) -> AccessResult:
        demand = not request.is_prefetch
        if demand:
            if request.is_instruction:
                self.stats.instruction_fetches += 1
            else:
                self.stats.data_accesses += 1

        result = self._seed_walk(request, l1)

        if result.l2_miss and request.is_instruction:
            self.stats.l2_inst_misses += 1

        if demand:
            self.stats.total_latency += result.latency
            if not result.l1_hit:
                if request.is_instruction:
                    self.stats.l1i_misses += 1
                else:
                    self.stats.l1d_misses += 1
            if result.l2_miss and not request.is_instruction:
                self.stats.l2_data_misses += 1
            if not result.slc_hit and result.l2_miss:
                self.stats.slc_misses += 1
            if result.dram_access:
                self.stats.dram_accesses += 1

        if allow_prefetch and demand:
            targets = []
            targets.extend(l1_prefetcher.observe(request, result.l1_hit))
            targets.extend(self.l2_prefetcher.observe(request, result.l2_hit))
            for address in targets:
                self.stats.prefetches_issued += 1
                # The seed's as_prefetch used dataclasses.replace.
                prefetch = dataclasses.replace(
                    request, address=address, is_prefetch=True
                )
                self._access(prefetch, l1, l1_prefetcher, allow_prefetch=False)
        return result

    def _seed_walk(self, request: MemoryRequest, l1) -> AccessResult:
        cfg = self.config
        evicted: list[int] = []

        if l1.access(request):
            return AccessResult(
                request=request,
                hit_level=HitLevel.L1,
                latency=self._l1_latency(request),
                l1_hit=True,
            )
        latency = self._l1_latency(request)

        l2_hit = self.l2.access(request)
        if self.l2_access_observer is not None and not request.is_prefetch:
            self.l2_access_observer(request, l2_hit)
        if l2_hit:
            latency += cfg.l2.latency
            self._seed_fill(l1, request, evicted)
            return AccessResult(
                request=request,
                hit_level=HitLevel.L2,
                latency=latency,
                l2_hit=True,
                evicted_lines=tuple(evicted),
            )
        latency += cfg.l2.latency

        if self.slc.access(request):
            latency += cfg.slc.latency
            if cfg.slc_exclusive:
                self.slc.invalidate(request.address)
            self._seed_fill_l2(request, evicted)
            self._seed_fill(l1, request, evicted)
            return AccessResult(
                request=request,
                hit_level=HitLevel.SLC,
                latency=latency,
                slc_hit=True,
                evicted_lines=tuple(evicted),
            )
        latency += cfg.slc.latency

        latency += cfg.dram_latency
        self._seed_fill_l2(request, evicted)
        if not cfg.slc_exclusive:
            self.slc.fill(request)
        self._seed_fill(l1, request, evicted)
        return AccessResult(
            request=request,
            hit_level=HitLevel.DRAM,
            latency=latency,
            evicted_lines=tuple(evicted),
        )

    def _seed_fill(self, cache, request, evicted: list[int]) -> None:
        victim = cache.fill(request)
        if victim is not None:
            evicted.append(victim.address)

    def _seed_fill_l2(self, request, evicted: list[int]) -> None:
        victim = self.l2.fill(request)
        if victim is None:
            return
        evicted.append(victim.address)
        if self.config.l2_inclusive:
            self.l1i.invalidate(victim.address)
            self.l1d.invalidate(victim.address)
        if self.config.slc_exclusive:
            access_type = (
                AccessType.INSTRUCTION_FETCH
                if victim.is_instruction
                else AccessType.DATA_LOAD
            )
            self.slc.fill(
                MemoryRequest(
                    address=victim.address,
                    access_type=access_type,
                    pc=victim.pc,
                    is_prefetch=True,
                )
            )


def build_seed_core(config, translator=None) -> CoreModel:
    """A :class:`CoreModel` whose memory system is the seed-equivalent one.

    Replaying a list of :class:`TraceRecord` objects through
    ``build_seed_core(...).run(records)`` reproduces the seed engine's
    record-at-a-time loop: per-record dataclass consumption, linear cache
    probes and result-object construction at every level.
    """
    hierarchy = SeedHierarchy(config.hierarchy)
    return CoreModel(
        hierarchy,
        translator=translator,
        config=config.core,
        line_size=config.hierarchy.line_size,
    )
