"""Figure 7: coverage of costly instruction misses by TRRIP's hot section.

Reproduces: **Figure 7** of the paper — the percentage of the costliest
instruction-miss stall cycles (top 5/10/20/50%) that fall inside the
compiler's hot section, including (7a) and excluding (7b) external code.
CLI: ``repro run figure7``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.coverage import DEFAULT_PERCENTILES, CoverageResult, costly_miss_coverage
from repro.api.scenario import Scenario
from repro.api.session import Session
from repro.experiments.runner import BenchmarkRunner
from repro.sim.config import BASELINE_POLICY, SimulatorConfig
from repro.workloads.spec import PROXY_BENCHMARK_NAMES


@dataclass(frozen=True)
class CoverageRow:
    """Figure 7a (all code) and 7b (excluding external code) for a benchmark."""

    benchmark: str
    including_external: CoverageResult
    excluding_external: CoverageResult


def run_figure7(
    benchmarks: Sequence[str] | None = None,
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
    config: SimulatorConfig | None = None,
    runner: BenchmarkRunner | None = None,
    session: Session | None = None,
    jobs: int | None = None,
) -> list[CoverageRow]:
    """Measure costly-miss coverage under the SRRIP baseline."""
    session = Session.ensure(session, runner=runner, config=config)
    scenario = Scenario(
        benchmarks=tuple(benchmarks or PROXY_BENCHMARK_NAMES),
        policies=BASELINE_POLICY,
        label="figure7",
    )
    rows: list[CoverageRow] = []
    for request, artifacts in session.stream(scenario, jobs=jobs):
        benchmark = request.benchmark
        result = artifacts.result
        binary = artifacts.prepared.binary
        hot_ranges = binary.hot_section_ranges
        is_external = binary.image.is_external
        including = costly_miss_coverage(
            benchmark,
            result.line_stall_cycles,
            hot_ranges,
            is_external=is_external,
            percentiles=percentiles,
            exclude_external=False,
        )
        excluding = costly_miss_coverage(
            benchmark,
            result.line_stall_cycles,
            hot_ranges,
            is_external=is_external,
            percentiles=percentiles,
            exclude_external=True,
        )
        rows.append(
            CoverageRow(
                benchmark=benchmark,
                including_external=including,
                excluding_external=excluding,
            )
        )
    return rows


def format_figure7(rows: Sequence[CoverageRow]) -> str:
    if not rows:
        return "(no benchmarks)"
    percentiles = sorted(rows[0].including_external.coverage_percent)
    header = f"{'benchmark':12s} " + " ".join(f"{p:>5d}%" for p in percentiles)
    lines = ["Figure 7a: coverage including external code", header]
    for row in rows:
        lines.append(
            f"{row.benchmark:12s} "
            + " ".join(
                f"{row.including_external.coverage_percent[p]:6.1f}" for p in percentiles
            )
        )
    lines.append("")
    lines.append("Figure 7b: coverage excluding external code")
    lines.append(header)
    for row in rows:
        lines.append(
            f"{row.benchmark:12s} "
            + " ".join(
                f"{row.excluding_external.coverage_percent[p]:6.1f}" for p in percentiles
            )
        )
    return "\n".join(lines)
