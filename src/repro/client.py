"""Blocking JSON client for the ``repro serve`` daemon.

Stdlib-only (``http.client``), deliberately boring: one connection per
request, JSON in, JSON out, errors as typed exceptions.  This is the one
HTTP client in the tree — the CLI's ``repro submit|status|result`` and the
test-suite both go through it, so the wire protocol is exercised end to end
everywhere it is used.

Backpressure is first-class: a 429 raises :class:`ServerBusy` carrying the
server's ``Retry-After`` estimate, and :meth:`ReproClient.submit` can
optionally absorb it by sleeping and retrying (``busy_retries``), which is
what the CLI's ``repro submit --wait`` does.

Transport failures are retryable too: a :class:`RetryPolicy` re-issues a
request that died with :class:`ConnectionFailed` after a bounded,
deterministic exponential backoff (the same formula as the sweep
supervisor's :class:`~repro.experiments.supervisor.SupervisionPolicy`, so
chaos runs reproduce).  Every call the client retries is idempotent by
construction — GETs trivially, and ``POST /jobs`` because submissions are
content-addressed: a resubmission after a daemon restart attaches to (or
recreates) the same job key and never re-simulates a stored point.
:meth:`ReproClient.wait` additionally rides out a daemon *bounce* mid-poll:
a connection failure during polling counts against the wait deadline, not
as an error, because a journal-backed daemon comes back with the same job
ids.  The ``client.transport`` fault point (``REPRO_FAULTS``) injects
transport failures without touching a socket.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass
from http.client import HTTPConnection
from typing import Optional
from urllib.parse import urlsplit

from repro.common.errors import JobTimeout, ReproError
from repro.common.faults import fire_point

#: Default port of ``repro serve`` (and the ``repro submit|...`` commands).
DEFAULT_PORT = 8642

#: Environment override for the service URL used by the CLI client commands.
URL_ENV_VAR = "REPRO_SERVER_URL"

#: Job states the server reports as final.
TERMINAL_STATES = ("done", "failed")

#: Default total wait budget of :meth:`ReproClient.wait` (seconds).  Waits
#: are always bounded: a job adopted by another replica, or a daemon that
#: never comes back, must end in a :class:`~repro.common.errors.JobTimeout`
#: naming the job, not an indefinite poll loop.
DEFAULT_WAIT_TIMEOUT = 600.0


def default_url() -> str:
    """The service URL: ``$REPRO_SERVER_URL`` or localhost:8642."""
    return os.environ.get(URL_ENV_VAR) or f"http://127.0.0.1:{DEFAULT_PORT}"


class ConnectionFailed(ReproError):
    """The server could not be reached at all (refused, DNS, timeout).

    Wraps the underlying :class:`OSError` so callers — the CLI above all —
    get one structured "is the daemon running?" failure instead of a raw
    socket traceback.
    """

    def __init__(self, url: str, cause: OSError):
        super().__init__(
            f"cannot reach repro server at {url}: {cause} "
            "(is `repro serve` running?)"
        )
        self.url = url
        self.cause = cause


class MalformedResponse(ReproError):
    """The server answered, but the body was not valid JSON.

    Usually means the URL points at something that is not ``repro serve``
    (a proxy error page, a different service); :attr:`snippet` holds the
    start of the offending body for diagnosis.
    """

    def __init__(self, url: str, status: int, raw: bytes):
        snippet = raw[:120].decode("utf-8", errors="replace")
        super().__init__(
            f"server at {url} returned status {status} with a body that is "
            f"not JSON: {snippet!r}"
        )
        self.url = url
        self.status = status
        self.snippet = snippet


class ServiceError(ReproError):
    """The server answered with an error status."""

    def __init__(self, status: int, payload: dict):
        message = (
            payload.get("error")
            if isinstance(payload.get("error"), str)
            else json.dumps(payload.get("error") or payload)
        )
        super().__init__(f"server returned {status}: {message}")
        self.status = status
        self.payload = payload


class ServerBusy(ServiceError):
    """The job queue is full (HTTP 429); retry after :attr:`retry_after`."""

    def __init__(self, payload: dict, retry_after: int):
        super().__init__(429, payload)
        self.retry_after = retry_after


class JobFailed(ServiceError):
    """The job reached the ``failed`` state; :attr:`error` is structured."""

    def __init__(self, payload: dict):
        super().__init__(500, payload)
        self.job = payload.get("job")
        self.error = payload.get("error") or {}


@dataclass(frozen=True)
class RetryPolicy:
    """Transport-retry knobs for :class:`ReproClient`.

    The backoff formula is byte-for-byte the sweep supervisor's
    (:meth:`~repro.experiments.supervisor.SupervisionPolicy.backoff`):
    exponential growth from ``backoff_base`` capped at ``backoff_max``,
    with fractional jitter seeded per ``(seed, request ordinal, attempt)``
    — integer-keyed :class:`random.Random`, so delays are identical across
    processes and runs and chaos tests stay reproducible.
    """

    #: Retries after the first attempt (a request runs at most
    #: ``1 + retries`` times).  0 disables transport retry entirely.
    retries: int = 0
    backoff_base: float = 0.2
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    #: Fractional jitter (+/-) applied to each delay.
    jitter: float = 0.25
    seed: int = 0

    def backoff(self, ordinal: int, failed_attempt: int) -> float:
        """Delay before retrying request ``ordinal`` after ``failed_attempt``."""
        base = min(
            self.backoff_base * self.backoff_factor ** (failed_attempt - 1),
            self.backoff_max,
        )
        if base <= 0:
            return 0.0
        rng = random.Random((self.seed << 24) ^ (ordinal << 8) ^ failed_attempt)
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class ReproClient:
    """Blocking client for one ``repro serve`` endpoint.

    ``retry`` takes a :class:`RetryPolicy` (or a plain int, shorthand for
    ``RetryPolicy(retries=n)``); the default of zero retries preserves
    fail-fast behaviour for interactive use — the CLI passes ``--retries``.
    """

    def __init__(
        self,
        url: Optional[str] = None,
        timeout: float = 60.0,
        retry: "RetryPolicy | int | None" = None,
    ):
        self.url = (url or default_url()).rstrip("/")
        parsed = urlsplit(self.url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ReproError(
                f"service URL must look like http://host:port, got {self.url!r}"
            )
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self.timeout = timeout
        if retry is None:
            retry = RetryPolicy()
        elif isinstance(retry, int):
            retry = RetryPolicy(retries=retry)
        self.retry = retry
        self._ordinal = 0

    # ---------------------------------------------------------------- plumbing
    def _request_once(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple[int, dict, dict]:
        """One HTTP round trip; returns (status, headers, decoded body).

        Transport failures surface as :class:`ConnectionFailed`, non-JSON
        bodies as :class:`MalformedResponse` — callers never see raw socket
        or ``json`` tracebacks.
        """
        connection = HTTPConnection(self._host, self._port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                # The transport failure point: REPRO_FAULTS=
                # "client.transport:N=enospc" makes the N-th request this
                # process issues die exactly like a refused connection.
                fire_point("client.transport")
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except OSError as error:
                raise ConnectionFailed(self.url, error) from error
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError as error:
                raise MalformedResponse(
                    self.url, response.status, raw
                ) from error
            return response.status, dict(response.getheaders()), decoded
        finally:
            connection.close()

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        retry: bool = False,
    ) -> tuple[int, dict, dict]:
        """A round trip, optionally retried on :class:`ConnectionFailed`.

        Only ever called with ``retry=True`` for idempotent requests (all
        GETs, and submission POSTs — content-addressing makes resubmission
        attach, not duplicate).  The last failure propagates unchanged once
        the policy's budget is spent.
        """
        budget = self.retry.retries if retry else 0
        ordinal = self._ordinal
        self._ordinal += 1
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ConnectionFailed:
                attempt += 1
                if attempt > budget:
                    raise
                time.sleep(self.retry.backoff(ordinal, attempt))

    def _get(self, path: str) -> dict:
        status, _, payload = self._request("GET", path, retry=True)
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # --------------------------------------------------------------- protocol
    def submit(self, submission: dict, busy_retries: int = 0) -> dict:
        """POST a submission; returns the acceptance payload (``job`` id).

        ``busy_retries > 0`` absorbs that many 429 responses by sleeping for
        the server's ``Retry-After`` before retrying — dedup makes blind
        resubmission safe (an identical submission that got through in the
        meantime is attached to, never re-simulated).
        """
        for attempt in range(busy_retries + 1):
            status, headers, payload = self._request(
                "POST", "/jobs", submission, retry=True
            )
            if status == 429:
                retry_after = int(headers.get("Retry-After", "1"))
                if attempt < busy_retries:
                    time.sleep(retry_after)
                    continue
                raise ServerBusy(payload, retry_after)
            if status >= 400:
                raise ServiceError(status, payload)
            return payload
        raise AssertionError("unreachable")  # pragma: no cover

    def status(self, job_id: str) -> dict:
        """GET the status snapshot of a job."""
        return self._get(f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """GET the results of a finished job.

        Raises :class:`JobFailed` (with the structured server-side error)
        for failed jobs and :class:`ServiceError` with ``status=409`` when
        the job has not finished yet — poll via :meth:`wait` first.
        """
        status, _, payload = self._request(
            "GET", f"/jobs/{job_id}/result", retry=True
        )
        if status == 500 and payload.get("state") == "failed":
            raise JobFailed(payload)
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = DEFAULT_WAIT_TIMEOUT,
        poll: float = 0.2,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its status.

        The wait is bounded (:data:`DEFAULT_WAIT_TIMEOUT` unless
        overridden; ``timeout=None`` waits forever) and ends in a
        :class:`~repro.common.errors.JobTimeout` naming the job.  A daemon
        *bounce* mid-poll — connection refused while it restarts — is
        absorbed: a journal-backed daemon recovers the same job ids, so the
        poll simply resumes when it answers again, and the outage counts
        against the deadline rather than failing the wait.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        state = "unknown"
        while True:
            try:
                snapshot = self.status(job_id)
            except ConnectionFailed:
                if deadline is not None and time.monotonic() >= deadline:
                    raise JobTimeout(
                        f"job {job_id} still unconfirmed after {timeout}s: "
                        f"server at {self.url} is unreachable"
                    ) from None
                time.sleep(poll)
                continue
            state = snapshot.get("state")
            if state in TERMINAL_STATES:
                return snapshot
            if deadline is not None and time.monotonic() >= deadline:
                raise JobTimeout(
                    f"job {job_id} still {state!r} after {timeout}s"
                )
            time.sleep(poll)

    def run(
        self,
        submission: dict,
        timeout: Optional[float] = DEFAULT_WAIT_TIMEOUT,
        poll: float = 0.2,
        busy_retries: int = 0,
    ) -> dict:
        """Submit, wait, fetch: the blocking one-call shape.

        Survives a daemon restart mid-run: when the restarted daemon no
        longer knows the job id (it ran without a journal), the submission
        is re-posted once — content-addressing guarantees the resubmission
        reuses every stored point instead of re-simulating.
        """
        accepted = self.submit(submission, busy_retries=busy_retries)
        try:
            self.wait(accepted["job"], timeout=timeout, poll=poll)
            return self.result(accepted["job"])
        except ServiceError as error:
            if error.status != 404:
                raise
            accepted = self.submit(submission, busy_retries=busy_retries)
            self.wait(accepted["job"], timeout=timeout, poll=poll)
            return self.result(accepted["job"])

    # ------------------------------------------------------------- diagnostics
    def health(self) -> dict:
        return self._get("/healthz")

    def metrics(self) -> dict:
        return self._get("/metrics")

    def jobs(self) -> dict:
        """GET the compact listing of every job the daemon knows."""
        return self._get("/jobs")


__all__ = [
    "ConnectionFailed",
    "DEFAULT_PORT",
    "DEFAULT_WAIT_TIMEOUT",
    "JobFailed",
    "JobTimeout",
    "MalformedResponse",
    "ReproClient",
    "RetryPolicy",
    "ServerBusy",
    "ServiceError",
    "TERMINAL_STATES",
    "URL_ENV_VAR",
    "default_url",
]
