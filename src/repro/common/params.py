"""Generic typed-parameter machinery for registry-backed spec objects.

Both structured spec layers of the harness — replacement policies
(:mod:`repro.cache.replacement.spec`) and workload families
(:mod:`repro.workloads.families`) — describe their entries the same way: a
registry of named things, each accepting a handful of *typed* parameters
with defaults, addressable from the CLI as ``name:param=value,param=value``.
This module holds the shared pieces so the two registries validate, coerce
and render identically:

* :class:`TypedParam` — one declared parameter (name, type, default,
  description) with CLI-string coercion that raises
  :class:`~repro.common.errors.ConfigurationError` naming the owner and the
  expected type;
* :func:`parse_spec_token` — the ``name:param=value[,param=value...]``
  parser, shared so both syntaxes stay byte-compatible;
* :func:`render_param_value` — the canonical text form of a parameter value
  (stable across processes; content hashes and store keys depend on it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class TypedParam:
    """One typed parameter a registry entry accepts.

    ``kind`` names the registry the parameter belongs to ("policy",
    "workload family", ...) purely for error messages.
    """

    name: str
    type: type
    default: Any
    description: str = ""
    kind: str = "policy"

    def coerce(self, value: Any, owner: str) -> Any:
        """Convert ``value`` (possibly a CLI string) to the parameter type."""
        if isinstance(value, self.type) and not (
            self.type is not bool and isinstance(value, bool)
        ):
            return value
        if isinstance(value, str):
            try:
                if self.type is bool:
                    lowered = value.strip().lower()
                    if lowered in ("true", "1", "yes", "on"):
                        return True
                    if lowered in ("false", "0", "no", "off"):
                        return False
                    raise ValueError(value)
                return self.type(value)
            except ValueError:
                pass
        elif self.type is float and isinstance(value, int):
            return float(value)
        raise ConfigurationError(
            f"{self.kind} {owner!r}: parameter {self.name!r} expects "
            f"{self.type.__name__}, got {value!r}"
        )


def parse_spec_token(text: Any, kind: str) -> tuple[str, dict[str, str]]:
    """Split a ``name`` / ``name:param=value,param=value`` token.

    Returns ``(name, raw-parameter dict)``; values stay strings for the
    registry's :class:`TypedParam` entries to coerce.  Malformed tokens raise
    :class:`~repro.common.errors.ConfigurationError` naming ``kind``.
    """
    if not isinstance(text, str) or not text.strip():
        raise ConfigurationError(f"empty {kind} token {text!r}")
    name, _, rest = text.strip().partition(":")
    params: dict[str, str] = {}
    if rest:
        for token in rest.split(","):
            token = token.strip()
            if not token:
                continue
            key, sep, value = token.partition("=")
            if not sep or not key.strip() or not value.strip():
                raise ConfigurationError(
                    f"malformed {kind} parameter {token!r} in {text!r}; "
                    "expected name:param=value[,param=value...]"
                )
            params[key.strip()] = value.strip()
    return name, params


def render_param_value(value: Any) -> str:
    """Canonical text form of a parameter value (bools lowercase, floats
    via ``repr`` so e.g. ``1.2`` round-trips exactly)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value) if isinstance(value, float) else str(value)
