"""Deterministic fault injection for the fault-tolerance harness.

Recovery paths are only trustworthy if they can be exercised on demand, so
the execution layer is instrumented with named **failure points**: a call to
:func:`fire_point` at the top of a sweep work unit, before every result-store
write, after every completed sweep unit.  A failure point does nothing unless
a :class:`FaultPlan` arms it — normally via the ``REPRO_FAULTS`` environment
variable, which both the tests and the CI chaos job use because it crosses
process boundaries for free (worker processes inherit the environment).

Plan syntax (semicolon-separated directives)::

    REPRO_FAULTS="site:index=kind[:arg][*limit]"

    sweep.unit:1=kill            worker running unit 1 dies (os._exit) once
    sweep.unit:0=hang:30         unit 0 sleeps 30s on its first attempt
    sweep.unit:2=raise*          unit 2 raises InjectedFault on every attempt
    store.write:0=enospc         first store write of a process gets ENOSPC
    sweep.completed:2=abort      interrupt the sweep after 2 completed units

``index`` selects which occurrence of a site fires: the sweep-unit index for
``sweep.unit``, the per-process write ordinal for ``store.write``/
``trace.write``, the completed-unit count for ``sweep.completed``.  ``limit``
bounds the *attempt* numbers that fire (default 1, so a retried unit
succeeds; ``*`` alone means every attempt).  Everything is deterministic —
no randomness, no wall-clock — so a chaos run is exactly reproducible.

The kinds:

``raise``
    raise :class:`~repro.common.errors.InjectedFault` (a plain worker error);
``kill``
    ``os._exit(43)`` — the process dies without unwinding, modelling an
    OOM-kill or segfault;
``hang``
    sleep for ``arg`` seconds (default 3600), modelling a wedged worker;
``enospc``
    raise ``OSError(ENOSPC)``, modelling a full disk;
``abort``
    raise :class:`~repro.common.errors.SweepInterrupted`, modelling the
    whole sweep being stopped mid-flight (host reboot, CI shard eviction).

This module is deliberately import-light (only :mod:`repro.common.errors`)
so the store and the engine can call :func:`fire_point` without layering
cycles; :mod:`repro.testing` re-exports the public names for test code.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import (
    ConfigurationError,
    InjectedFault,
    SweepInterrupted,
)

#: Environment variable holding the active fault plan.
ENV_VAR = "REPRO_FAULTS"

#: The recognised failure kinds (see module docstring).
KINDS = ("raise", "kill", "hang", "enospc", "abort")

#: Exit code used by ``kill`` directives, distinctive in supervisor reports.
KILL_EXIT_CODE = 43


@dataclass(frozen=True)
class FaultDirective:
    """One armed failure: fire ``kind`` at occurrence ``index`` of ``site``."""

    site: str
    index: int
    kind: str
    #: Kind-specific argument (sleep seconds for ``hang``).
    arg: Optional[float] = None
    #: Fire only while the attempt number is <= limit; ``None`` = always.
    limit: Optional[int] = 1

    def fire(self) -> None:
        where = f"{self.site}:{self.index}"
        if self.kind == "raise":
            raise InjectedFault(f"injected failure at {where}")
        if self.kind == "kill":
            os._exit(KILL_EXIT_CODE)
        if self.kind == "hang":
            time.sleep(self.arg if self.arg is not None else 3600.0)
            return
        if self.kind == "enospc":
            raise OSError(
                errno.ENOSPC, f"No space left on device (injected at {where})"
            )
        if self.kind == "abort":
            raise SweepInterrupted(f"injected interruption at {where}")
        raise AssertionError(f"unknown fault kind {self.kind!r}")


class FaultPlan:
    """A parsed set of :class:`FaultDirective` entries."""

    def __init__(self, directives: tuple[FaultDirective, ...] = ()):
        self.directives = tuple(directives)

    def __bool__(self) -> bool:
        return bool(self.directives)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` plan string (see module docstring)."""
        directives = []
        for token in text.split(";"):
            token = token.strip()
            if not token:
                continue
            try:
                directives.append(_parse_directive(token))
            except ValueError as error:
                raise ConfigurationError(
                    f"bad {ENV_VAR} directive {token!r}: {error} "
                    "(expected site:index=kind[:arg][*limit])"
                ) from None
        return cls(tuple(directives))

    def directive(self, site: str, index: int) -> Optional[FaultDirective]:
        for directive in self.directives:
            if directive.site == site and directive.index == index:
                return directive
        return None


def _parse_directive(token: str) -> FaultDirective:
    left, sep, right = token.partition("=")
    if not sep or not right:
        raise ValueError("missing '=kind'")
    site, sep, index_text = left.partition(":")
    if not sep:
        raise ValueError("missing ':index' on the site")
    index = int(index_text)
    limit: Optional[int] = 1
    if "*" in right:
        right, _, limit_text = right.rpartition("*")
        limit = int(limit_text) if limit_text else None
    kind, _, arg_text = right.partition(":")
    if kind not in KINDS:
        raise ValueError(f"unknown kind {kind!r} (one of {', '.join(KINDS)})")
    arg = float(arg_text) if arg_text else None
    return FaultDirective(site=site, index=index, kind=kind, arg=arg, limit=limit)


# ------------------------------------------------------------- active plan
#: (raw env string, parsed plan) — re-parsed only when the raw text changes,
#: so failure points cost one dict lookup when no plan is armed.
_cached: tuple[str, FaultPlan] = ("", FaultPlan())

#: Per-process ordinal counters for sites fired without an explicit index
#: (``store.write`` counts writes, ``trace.write`` counts captures).
_counters: dict[str, int] = {}


def active_plan() -> FaultPlan:
    """The plan armed via ``REPRO_FAULTS`` (empty plan when unset)."""
    global _cached
    raw = os.environ.get(ENV_VAR, "")
    if raw != _cached[0]:
        _cached = (raw, FaultPlan.parse(raw))
    return _cached[1]


def reset_fault_counters() -> None:
    """Reset the per-process site ordinals (test isolation)."""
    _counters.clear()


def fire_point(
    site: str, index: Optional[int] = None, attempt: int = 1
) -> None:
    """A named failure point: a no-op unless the active plan arms it.

    ``index=None`` sites auto-number their occurrences per process (the
    ordinal advances whether or not a plan is armed, so arming a plan never
    shifts which occurrence a directive names).
    """
    if index is None:
        index = _counters.get(site, 0)
        _counters[site] = index + 1
    plan = active_plan()
    if not plan:
        return
    directive = plan.directive(site, index)
    if directive is None:
        return
    if directive.limit is not None and attempt > directive.limit:
        return
    directive.fire()


# ------------------------------------------------------------ test helpers
def corrupt_file(path, keep_bytes: int = 16) -> None:
    """Truncate ``path`` to ``keep_bytes`` bytes, simulating a torn write.

    Used by fault-injection tests and the CI chaos job to damage a store
    entry, trace capture or journal in place.
    """
    payload = os.stat(path).st_size
    with open(path, "r+b") as handle:
        handle.truncate(min(keep_bytes, payload))
