"""Memory request and access-result value objects.

A :class:`MemoryRequest` is what travels from the CPU frontend/backend through
the MMU into the cache hierarchy.  Besides the address it carries the metadata
the evaluated replacement policies consume:

* ``temperature`` — the PBHA-style code temperature bits attached by the MMU
  (TRRIP, Section 3.4 of the paper);
* ``pc`` — the program counter, used by SHiP signatures and stride prefetch;
* ``starvation_hint`` — Emissary's "this line previously caused decode
  starvation" bit (Section 4.3);
* ``is_prefetch`` — demand vs. prefetch, so MPKI only counts demand misses;
* ``core`` — the issuing core's index, so shared-cache policies (static way
  partitioning) can attribute requests in multi-core interleaved runs.
  Single-core paths leave it at 0.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.common.temperature import Temperature


class AccessType(enum.Enum):
    """Kind of memory access issued by the core."""

    INSTRUCTION_FETCH = "ifetch"
    DATA_LOAD = "load"
    DATA_STORE = "store"

    @property
    def is_instruction(self) -> bool:
        return self is AccessType.INSTRUCTION_FETCH

    @property
    def is_write(self) -> bool:
        return self is AccessType.DATA_STORE


class HitLevel(enum.IntEnum):
    """Deepest level of the hierarchy that had to service an access."""

    L1 = 1
    L2 = 2
    SLC = 3
    DRAM = 4

    @property
    def is_l2_miss(self) -> bool:
        """True when the access missed in the L2 (serviced by SLC or DRAM)."""
        return self >= HitLevel.SLC


@dataclass(frozen=True, slots=True)
class MemoryRequest:
    """A single memory access presented to the cache hierarchy."""

    address: int
    access_type: AccessType
    pc: int = 0
    temperature: Temperature = Temperature.NONE
    starvation_hint: bool = False
    is_prefetch: bool = False
    core: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")

    @property
    def is_instruction(self) -> bool:
        return self.access_type.is_instruction

    @property
    def is_write(self) -> bool:
        return self.access_type.is_write

    def as_prefetch(self, address: int | None = None) -> "MemoryRequest":
        """Return a prefetch copy of this request (optionally retargeted)."""
        # Direct construction: this runs once per issued prefetch, and
        # ``dataclasses.replace`` costs several times a plain ``__init__``.
        return MemoryRequest(
            address=self.address if address is None else address,
            access_type=self.access_type,
            pc=self.pc,
            temperature=self.temperature,
            starvation_hint=self.starvation_hint,
            is_prefetch=True,
            core=self.core,
        )

    def with_temperature(self, temperature: Temperature) -> "MemoryRequest":
        """Return a copy with the temperature attribute set (MMU tagging)."""
        return replace(self, temperature=temperature)

    def with_starvation_hint(self, hint: bool = True) -> "MemoryRequest":
        """Return a copy carrying Emissary's starvation hint."""
        return replace(self, starvation_hint=hint)


class ScratchRequest:
    """Mutable, reusable stand-in for :class:`MemoryRequest`.

    The packed-trace replay loop issues one data request per memory
    instruction; allocating a frozen dataclass for each dominates the L1-hit
    fast path.  A single ``ScratchRequest`` is reused instead: it exposes the
    same attribute surface (so caches, replacement policies, prefetchers and
    observers read identical values) but is overwritten in place between
    accesses.  Consumers therefore must never retain a reference past the
    access — every built-in consumer only reads field values.
    """

    __slots__ = (
        "address",
        "access_type",
        "pc",
        "temperature",
        "starvation_hint",
        "is_prefetch",
        "core",
    )

    def __init__(self) -> None:
        self.address = 0
        self.access_type = AccessType.DATA_LOAD
        self.pc = 0
        self.temperature = Temperature.NONE
        self.starvation_hint = False
        self.is_prefetch = False
        self.core = 0

    @property
    def is_instruction(self) -> bool:
        return self.access_type.is_instruction

    @property
    def is_write(self) -> bool:
        return self.access_type.is_write

    def as_prefetch(self, address: int | None = None) -> MemoryRequest:
        """Materialise a real (immutable) prefetch request from this one."""
        return MemoryRequest(
            address=self.address if address is None else address,
            access_type=self.access_type,
            pc=self.pc,
            temperature=self.temperature,
            starvation_hint=self.starvation_hint,
            is_prefetch=True,
            core=self.core,
        )


@dataclass(slots=True)
class AccessResult:
    """Outcome of presenting a request to the cache hierarchy."""

    request: MemoryRequest
    hit_level: HitLevel
    latency: int
    l1_hit: bool = False
    l2_hit: bool = False
    slc_hit: bool = False
    evicted_lines: tuple[int, ...] = field(default_factory=tuple)

    @property
    def l2_miss(self) -> bool:
        """Whether the access had to go past the L2 (demand L2 miss)."""
        return self.hit_level.is_l2_miss

    @property
    def dram_access(self) -> bool:
        return self.hit_level is HitLevel.DRAM
