"""Address translation protocol.

The CPU model fetches instructions through an address translator (the MMU in
the full co-designed system).  The translator maps a virtual address to a
physical address and returns the temperature attribute stored in the page's
PTE — that is the whole software-to-hardware interface TRRIP relies on.

:class:`IdentityTranslator` is used when no OS model is present (pure cache
studies, unit tests): physical = virtual and nothing is tagged.
"""

from __future__ import annotations

from typing import Protocol

from repro.common.temperature import Temperature


class AddressTranslator(Protocol):
    """Minimal interface the CPU model needs from the MMU."""

    def translate_instruction(self, vaddr: int) -> tuple[int, Temperature]:
        """Translate an instruction fetch address; return (paddr, temperature)."""
        ...

    def translate_data(self, vaddr: int) -> tuple[int, Temperature]:
        """Translate a data access address; return (paddr, temperature)."""
        ...


class IdentityTranslator:
    """Translator used when no OS/page-table model is attached."""

    def translate_instruction(self, vaddr: int) -> tuple[int, Temperature]:
        return vaddr, Temperature.NONE

    def translate_data(self, vaddr: int) -> tuple[int, Temperature]:
        return vaddr, Temperature.NONE

    def translate_data_addr(self, vaddr: int) -> int:
        """Address-only data translation (optional fast-path protocol hook)."""
        return vaddr
