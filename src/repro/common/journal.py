"""Append-only JSONL journals with torn-tail-tolerant replay.

Two subsystems keep crash-durable, human-greppable logs of accepted work:
the checkpointed sweep scheduler
(:class:`~repro.experiments.sweep.SweepJournal`) and the ``repro serve``
daemon's submission journal
(:class:`~repro.server.journal.SubmissionJournal`).  Both share one write
and replay discipline, implemented here once:

* **writing** — one JSON object per line, appended, flushed and fsynced, so
  a crashed process (SIGKILL included) leaves at most one torn final line;
* **replay** — every intact line, oldest first; a torn or otherwise
  undecodable line is skipped, because an event that never hit the disk
  whole never happened.

The journal is an *audit log with recovery hints*: correctness never rests
on it alone — the content-addressed result store remains the source of
truth for what is durably done, which is why replaying a journal can only
re-enqueue work, never corrupt results.

This module is deliberately import-light (stdlib only) so both the
experiments layer and the server can use it without layering cycles.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


class AppendOnlyJournal:
    """One append-only JSONL event log (see module docstring).

    The write handle opens lazily on the first :meth:`record` and stays
    open until :meth:`close`; replay reads are independent of the handle,
    so another process (or a restarted one) can replay a journal that is
    still being written.
    """

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._handle = None

    def exists(self) -> bool:
        return self.path.exists()

    # --------------------------------------------------------------- writing
    def record(self, event: str, **fields) -> None:
        """Append one event line (crash-durable: flush + fsync)."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps({"event": event, **fields}) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # --------------------------------------------------------------- reading
    def replay(self) -> list[dict]:
        """Every intact event line, oldest first (a torn tail is skipped)."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        events = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn write mid-line: the event never happened
            if isinstance(entry, dict) and "event" in entry:
                events.append(entry)
        return events


__all__ = ["AppendOnlyJournal"]
