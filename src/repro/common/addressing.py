"""Address arithmetic helpers shared by the cache, OS and workload models.

All addresses in the library are plain integers (byte addresses in a flat
virtual or physical address space).  Cache lines are 64 bytes, matching the
simulator configuration in Table 1 of the paper.
"""

from __future__ import annotations

#: Cache line size in bytes used throughout the hierarchy.
CACHE_LINE_SIZE = 64

#: Default page size (4 kB) used by the OS model unless overridden.
DEFAULT_PAGE_SIZE = 4096


def line_address(address: int, line_size: int = CACHE_LINE_SIZE) -> int:
    """Return the base address of the cache line containing ``address``."""
    return address - (address % line_size)


def line_index(address: int, line_size: int = CACHE_LINE_SIZE) -> int:
    """Return the line number (address divided by the line size)."""
    return address // line_size


def line_offset(address: int, line_size: int = CACHE_LINE_SIZE) -> int:
    """Return the byte offset of ``address`` within its cache line."""
    return address % line_size


def page_number(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the page number containing ``address``."""
    return address // page_size


def page_offset(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the byte offset of ``address`` within its page."""
    return address % page_size


def align_down(address: int, alignment: int) -> int:
    """Round ``address`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return address - (address % alignment)


def align_up(address: int, alignment: int) -> int:
    """Round ``address`` up to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    remainder = address % alignment
    if remainder == 0:
        return address
    return address + alignment - remainder


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
