"""Exception hierarchy for the TRRIP reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """Raised when a simulator, cache or workload configuration is invalid."""


class SimulationError(ReproError):
    """Raised when the simulator reaches an inconsistent state."""


class WorkloadError(ReproError):
    """Raised when a workload specification or trace cannot be produced."""


class CompilationError(ReproError):
    """Raised by the synthetic compiler/PGO pipeline."""


class LoaderError(ReproError):
    """Raised by the OS model when an ELF image cannot be mapped."""
