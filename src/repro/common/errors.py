"""Exception hierarchy for the TRRIP reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """Raised when a simulator, cache or workload configuration is invalid."""


class SimulationError(ReproError):
    """Raised when the simulator reaches an inconsistent state."""


class WorkloadError(ReproError):
    """Raised when a workload specification or trace cannot be produced."""


class CompilationError(ReproError):
    """Raised by the synthetic compiler/PGO pipeline."""


class InjectedFault(ReproError):
    """Raised by an armed fault-injection point (see :mod:`repro.common.faults`).

    Only ever raised when the ``REPRO_FAULTS`` knob (or a programmatic
    :class:`~repro.common.faults.FaultPlan`) arms a ``raise`` directive, so
    seeing this outside a test or the CI chaos job means the knob leaked
    into a real environment.
    """


class SweepInterrupted(ReproError):
    """A checkpointed sweep stopped mid-flight (injected abort or operator
    stop).  Completed units are durable in the result store and journal;
    ``repro sweep --resume`` re-plans only the missing ones."""


class SweepExecutionError(ReproError):
    """A checkpointed sweep finished with failed units (retries exhausted)."""


class JobTimeout(ReproError, TimeoutError):
    """A served job did not reach a terminal state within the wait budget.

    Raised by :meth:`repro.server.jobs.JobManager.wait` and
    :meth:`repro.client.ReproClient.wait` instead of spinning forever — a
    job adopted by another replica (or a daemon that never comes back) must
    surface as a bounded, named failure.  Subclasses :class:`TimeoutError`
    so pre-existing ``except TimeoutError`` call sites keep working.
    """


class LoaderError(ReproError):
    """Raised by the OS model when an ELF image cannot be mapped."""
