"""Code temperature values.

The paper classifies code regions into *hot*, *warm* and *cold* using PGO
profile counters (Section 3.2 and Section 4.7).  The classification travels
from the compiler (ELF section attributes) through the OS (PTE bits) to the
hardware (memory requests), so the enum lives in the dependency-free
``repro.common`` package.

The encoding mirrors the paper's use of two implementation-defined PTE bits
(ARM PBHA / x86 AVL): ``NONE`` means the page carries no valid temperature and
the replacement policy must fall back to default RRIP behaviour.
"""

from __future__ import annotations

import enum


class Temperature(enum.IntEnum):
    """Two-bit code temperature attribute carried with memory requests."""

    NONE = 0
    HOT = 1
    WARM = 2
    COLD = 3

    @property
    def is_tagged(self) -> bool:
        """Whether the value represents valid temperature information."""
        return self is not Temperature.NONE

    @classmethod
    def from_bits(cls, bits: int) -> "Temperature":
        """Decode a two-bit PTE attribute field into a temperature."""
        if not 0 <= bits <= 3:
            raise ValueError(f"temperature bits must be in [0, 3], got {bits}")
        return cls(bits)

    def to_bits(self) -> int:
        """Encode the temperature into the two-bit PTE attribute field."""
        return int(self)

    @classmethod
    def order(cls) -> tuple["Temperature", ...]:
        """Temperatures ordered from most to least frequently executed."""
        return (cls.HOT, cls.WARM, cls.COLD)


#: Human readable names used by reports and experiment tables.
TEMPERATURE_NAMES = {
    Temperature.NONE: "none",
    Temperature.HOT: "hot",
    Temperature.WARM: "warm",
    Temperature.COLD: "cold",
}
