"""Instruction trace records and the packed column-oriented trace format.

The simulator is trace-driven (like the paper's Sniper/Pin setup): the
workload generators emit a stream of dynamic instructions which the CPU model
consumes.  Two representations exist:

* :class:`TraceRecord` — one frozen dataclass per dynamic instruction.  This
  is the readable, validated interchange format used by unit tests and by
  callers that inspect individual instructions.
* :class:`PackedTrace` — a column-oriented store (parallel ``array`` columns
  for pc, flags, memory address, stall annotations).  Replaying millions of
  instructions through :class:`~repro.cpu.core.CoreModel` is dominated by
  Python object overhead when every instruction is a dataclass; the packed
  format keeps one machine integer per field per instruction and lets the hot
  loop read plain ints.  ``PackedTrace`` iterates as ``TraceRecord`` objects,
  so the two formats are interchangeable everywhere a trace is consumed.

A record describes one dynamic instruction — its PC, control-flow behaviour
and optional memory operand — plus two small synthetic stall annotations
(``depend_stall`` and ``issue_stall``) that stand in for the backend
dependency/issue-queue stalls a detailed OoO model would produce.  Those
annotations only shape the Top-Down breakdowns of Figures 1 and 2; the
headline results (MPKI, speedup) come from the cache hierarchy.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

#: Bit positions of the packed per-instruction flag word.
FLAG_BRANCH = 1
FLAG_TAKEN = 2
FLAG_INDIRECT = 4
FLAG_CALL = 8
FLAG_RETURN = 16
FLAG_MEM = 32
FLAG_STORE = 64
FLAG_DEPEND = 128
FLAG_ISSUE = 256


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One dynamic instruction in a workload trace."""

    pc: int
    size: int = 4
    is_branch: bool = False
    branch_taken: bool = False
    branch_target: int = 0
    is_indirect: bool = False
    is_call: bool = False
    is_return: bool = False
    mem_address: Optional[int] = None
    is_store: bool = False
    depend_stall: int = 0
    issue_stall: int = 0

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ValueError(f"pc must be non-negative, got {self.pc}")
        if self.size <= 0:
            raise ValueError(f"instruction size must be positive, got {self.size}")

    @property
    def is_memory(self) -> bool:
        """Whether the instruction has a data memory operand."""
        return self.mem_address is not None

    def packed_flags(self) -> int:
        """The flag word this record carries in the packed representation."""
        flags = 0
        if self.is_branch:
            flags |= FLAG_BRANCH
        if self.branch_taken:
            flags |= FLAG_TAKEN
        if self.is_indirect:
            flags |= FLAG_INDIRECT
        if self.is_call:
            flags |= FLAG_CALL
        if self.is_return:
            flags |= FLAG_RETURN
        if self.mem_address is not None:
            flags |= FLAG_MEM
        if self.is_store:
            flags |= FLAG_STORE
        if self.depend_stall:
            flags |= FLAG_DEPEND
        if self.issue_stall:
            flags |= FLAG_ISSUE
        return flags


class PackedTrace:
    """Column-oriented instruction trace.

    Each per-instruction field lives in its own ``array`` column; columns are
    always the same length, with zero entries for fields an instruction does
    not use (the flag word says which fields are meaningful).  The layout costs
    ~36 bytes per instruction against several hundred for a ``TraceRecord``,
    and — more importantly for replay speed — reading a field is a C-level
    index instead of a Python attribute lookup on a per-instruction object.
    """

    __slots__ = (
        "pc",
        "size",
        "flags",
        "branch_target",
        "mem_address",
        "depend_stall",
        "issue_stall",
        "_events_cache",
        "_mem_lines_cache",
    )

    def __init__(self) -> None:
        self.pc = array("Q")
        self.size = array("H")
        self.flags = array("H")
        self.branch_target = array("Q")
        self.mem_address = array("Q")
        self.depend_stall = array("I")
        self.issue_stall = array("I")
        #: ``line_size -> (trace length at build time, event column tuple)``.
        self._events_cache: dict[int, tuple[int, tuple]] = {}
        #: ``line_size -> (trace length at build time, mem line numbers)``.
        self._mem_lines_cache: dict[int, tuple[int, array]] = {}

    # ------------------------------------------------------------ construction
    def append_raw(
        self,
        pc: int,
        size: int,
        flags: int,
        branch_target: int,
        mem_address: int,
        depend_stall: int,
        issue_stall: int,
    ) -> None:
        """Append one instruction from already-packed column values.

        ``mem_address`` is only meaningful when ``flags`` has :data:`FLAG_MEM`
        set (use 0 otherwise).  The ``array`` columns reject negative values,
        so the ``TraceRecord`` validation invariants hold by construction.
        """
        self.pc.append(pc)
        self.size.append(size)
        self.flags.append(flags)
        self.branch_target.append(branch_target)
        self.mem_address.append(mem_address)
        self.depend_stall.append(depend_stall)
        self.issue_stall.append(issue_stall)

    def append_record(self, record: TraceRecord) -> None:
        """Append one :class:`TraceRecord`."""
        mem = record.mem_address
        self.append_raw(
            record.pc,
            record.size,
            record.packed_flags(),
            record.branch_target,
            mem if mem is not None else 0,
            record.depend_stall,
            record.issue_stall,
        )

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "PackedTrace":
        """Pack an iterable of records into a new column-oriented trace."""
        packed = cls()
        for record in records:
            packed.append_record(record)
        return packed

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return len(self.pc)

    def record(self, index: int) -> TraceRecord:
        """Materialise the instruction at ``index`` as a :class:`TraceRecord`."""
        flags = self.flags[index]
        return TraceRecord(
            pc=self.pc[index],
            size=self.size[index],
            is_branch=bool(flags & FLAG_BRANCH),
            branch_taken=bool(flags & FLAG_TAKEN),
            branch_target=self.branch_target[index],
            is_indirect=bool(flags & FLAG_INDIRECT),
            is_call=bool(flags & FLAG_CALL),
            is_return=bool(flags & FLAG_RETURN),
            mem_address=self.mem_address[index] if flags & FLAG_MEM else None,
            is_store=bool(flags & FLAG_STORE),
            depend_stall=self.depend_stall[index],
            issue_stall=self.issue_stall[index],
        )

    def __getitem__(self, index: int) -> TraceRecord:
        if not isinstance(index, int):
            raise TypeError("PackedTrace indices must be integers")
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("PackedTrace index out of range")
        return self.record(index)

    def __iter__(self) -> Iterator[TraceRecord]:
        for index in range(len(self)):
            yield self.record(index)

    def to_records(self) -> list[TraceRecord]:
        """Materialise the whole trace as a list of records."""
        return list(self)

    # ------------------------------------------------------------------ replay
    def fetch_events(self, line_size: int) -> tuple[array, array, array, array]:
        """Replay events: ``(indices, pcs, flag_words, fetch_lines)`` of
        state-touching instructions.

        An instruction is an *event* when it carries any flag (branch, memory
        operand, stall annotation), or when its fetch crosses into a new cache
        line — either because the PC leaves the previous instruction's line or
        because the previous instruction was a taken branch (which redirects
        fetch).  Every other instruction only retires, so the replay loop can
        skip it entirely and account its retire bandwidth in bulk.  The pc and
        flag columns are duplicated per event — and the line-aligned fetch
        address is precomputed per event — so the loop zips plain machine
        integers instead of performing indexed loads and shift/mask work.

        The result depends only on the stored columns and ``line_size``; it is
        computed lazily and cached (and recomputed if the trace grew since).
        Captured trace archives persist these columns, so replayed traces
        skip the whole pass (see :mod:`repro.workloads.capture`).
        """
        cached = self._events_cache.get(line_size)
        if cached is not None and cached[0] == len(self.pc):
            return cached[1]
        indices = array("I")
        event_pcs = array("Q")
        event_flags = array("H")
        event_lines = array("Q")
        redirect_mask = FLAG_BRANCH | FLAG_TAKEN
        prev_line = -1
        redirected = True
        index = 0
        for pc, flags in zip(self.pc, self.flags):
            line = pc - pc % line_size
            if flags or redirected or line != prev_line:
                indices.append(index)
                event_pcs.append(pc)
                event_flags.append(flags)
                event_lines.append(line)
            prev_line = line
            redirected = flags & redirect_mask == redirect_mask
            index += 1
        events = (indices, event_pcs, event_flags, event_lines)
        self._events_cache[line_size] = (len(self.pc), events)
        return events

    def event_windows(
        self, line_size: int, window: int
    ) -> Iterator[tuple[array, array, array, array]]:
        """Yield the replay-event columns in consecutive ``window``-sized
        slices: ``(indices, pcs, flag_words, fetch_lines)`` per window.

        The vector kernel replays one window at a time — probing the caches
        for the whole window in a batch, then applying the ops in order — so
        the slicing boundary is *events*, not instructions.  The final window
        is short when the event count is not a multiple of ``window``.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        indices, pcs, flags, lines = self.fetch_events(line_size)
        total = len(indices)
        for start in range(0, total, window):
            stop = start + window
            yield (
                indices[start:stop],
                pcs[start:stop],
                flags[start:stop],
                lines[start:stop],
            )

    def mem_lines(self, line_size: int) -> array:
        """Per-instruction *virtual line numbers* of the memory operands.

        ``mem_lines(L)[i] == mem_address[i] // L`` for instructions carrying
        :data:`FLAG_MEM` (0 otherwise).  The replay loop hands these to the
        backend so that, under identity translation, the whole shift/mask
        address-geometry work of a data access is a precomputed column read.
        Computed once per ``line_size`` and cached; captured trace archives
        persist the column.
        """
        cached = self._mem_lines_cache.get(line_size)
        if cached is not None and cached[0] == len(self.pc):
            return cached[1]
        shift = line_size.bit_length() - 1
        if line_size == (1 << shift):
            lines = array("Q", (address >> shift for address in self.mem_address))
        else:
            lines = array("Q", (address // line_size for address in self.mem_address))
        self._mem_lines_cache[line_size] = (len(self.pc), lines)
        return lines

    def adopt_geometry(
        self,
        line_size: int,
        events: tuple[array, array, array, array],
        mem_lines: array,
    ) -> None:
        """Seed the geometry caches with columns restored from an archive.

        The columns must describe exactly this trace at its current length —
        the caller (the trace archive) guarantees that by keying the file on
        the content hash of the generating spec.
        """
        self._events_cache[line_size] = (len(self.pc), tuple(events))
        self._mem_lines_cache[line_size] = (len(self.pc), mem_lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedTrace({len(self)} instructions)"
