"""Instruction trace records.

The simulator is trace-driven (like the paper's Sniper/Pin setup): the
workload generators emit a stream of :class:`TraceRecord` objects which the
CPU model consumes.  A record describes one dynamic instruction — its PC,
control-flow behaviour and optional memory operand — plus two small synthetic
stall annotations (``depend_stall`` and ``issue_stall``) that stand in for the
backend dependency/issue-queue stalls a detailed OoO model would produce.
Those annotations only shape the Top-Down breakdowns of Figures 1 and 2; the
headline results (MPKI, speedup) come from the cache hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TraceRecord:
    """One dynamic instruction in a workload trace."""

    pc: int
    size: int = 4
    is_branch: bool = False
    branch_taken: bool = False
    branch_target: int = 0
    is_indirect: bool = False
    is_call: bool = False
    is_return: bool = False
    mem_address: Optional[int] = None
    is_store: bool = False
    depend_stall: int = 0
    issue_stall: int = 0

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ValueError(f"pc must be non-negative, got {self.pc}")
        if self.size <= 0:
            raise ValueError(f"instruction size must be positive, got {self.size}")

    @property
    def is_memory(self) -> bool:
        """Whether the instruction has a data memory operand."""
        return self.mem_address is not None
