"""Shared value types used across every TRRIP subsystem.

The common package intentionally has no dependencies on the rest of the
library so that the cache, CPU, compiler, OS and workload substrates can all
exchange :class:`~repro.common.request.MemoryRequest` objects and
:class:`~repro.common.temperature.Temperature` values without import cycles.
"""

from repro.common.temperature import Temperature
from repro.common.request import AccessType, HitLevel, MemoryRequest, AccessResult
from repro.common.addressing import (
    CACHE_LINE_SIZE,
    line_address,
    line_index,
    line_offset,
    page_number,
    page_offset,
    align_down,
    align_up,
)
from repro.common.errors import (
    ReproError,
    ConfigurationError,
    SimulationError,
    WorkloadError,
)

__all__ = [
    "Temperature",
    "AccessType",
    "HitLevel",
    "MemoryRequest",
    "AccessResult",
    "CACHE_LINE_SIZE",
    "line_address",
    "line_index",
    "line_offset",
    "page_number",
    "page_offset",
    "align_down",
    "align_up",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "WorkloadError",
]
