"""Stable content hashing for configuration objects.

The result store keys cached simulations by a content hash of everything
that determines the outcome of a run: the resolved
:class:`~repro.workloads.spec.WorkloadSpec`, the replacement policy, the
:class:`~repro.sim.config.SimulatorConfig` and the
:class:`~repro.core.pipeline.PipelineOptions`.  For those keys to survive a
process restart (and to be identical across worker processes) the hash must
be computed over a *canonical* representation: dataclasses become sorted
dicts, enums their values, tuples become lists, and dict keys are coerced to
strings before sorting.  Anything else (sets, arbitrary objects) is rejected
loudly rather than hashed ambiguously.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any


def canonical_payload(obj: Any, strict: bool = True) -> Any:
    """Reduce ``obj`` to JSON-serialisable primitives, deterministically.

    ``strict=True`` (hashing) rejects unknown types loudly; ``strict=False``
    (display/report serialisation) falls back to ``str(obj)``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical_payload(getattr(obj, f.name), strict)
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return canonical_payload(obj.value, strict)
    if isinstance(obj, dict):
        return {
            _canonical_key(key): canonical_payload(value, strict)
            for key, value in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(item, strict) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if strict:
        raise TypeError(f"cannot canonicalise {type(obj).__name__!r} for hashing")
    return str(obj)


def _canonical_key(key: Any) -> str:
    if isinstance(key, enum.Enum):
        key = key.value
    return str(key)


def canonical_json(obj: Any) -> str:
    """Canonical JSON text of ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(
        canonical_payload(obj), sort_keys=True, separators=(",", ":")
    )


def stable_hash(obj: Any) -> str:
    """Hex SHA-256 of the canonical JSON representation of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
