"""Cache block (line) bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.temperature import Temperature


@dataclass(slots=True)
class CacheBlock:
    """View of one cache line resident in a set-associative cache.

    The production cache stores no block objects — per-line state lives in
    the flat columns of :class:`repro.cache.cache.SetAssociativeCache` — so
    this class is a materialised *snapshot*: ``blocks_in_set`` and ``fill``
    build instances from the columns for tests, analysis code and the seed
    baseline engine (which still stores real block objects per line).

    Only the fields a real tag array would hold (tag/valid/dirty) influence
    behaviour; the rest (``is_instruction``, ``temperature``, ``pc``) are
    simulation metadata used by victim fills and back-invalidation.  The
    timestamp fields (``insertion_time``, ``last_access_time``,
    ``access_count``) are maintained only by the seed baseline; the flat
    cache reports them as zero.  Replacement policies keep their own state
    and never read these fields, mirroring the paper's claim that TRRIP needs
    no extra per-line storage.
    """

    tag: int = 0
    address: int = 0
    valid: bool = False
    dirty: bool = False
    is_instruction: bool = False
    temperature: Temperature = Temperature.NONE
    pc: int = 0
    insertion_time: int = 0
    last_access_time: int = 0
    access_count: int = 0

    def invalidate(self) -> None:
        """Clear the block back to its power-on state."""
        self.tag = 0
        self.address = 0
        self.valid = False
        self.dirty = False
        self.is_instruction = False
        self.temperature = Temperature.NONE
        self.pc = 0
        self.insertion_time = 0
        self.last_access_time = 0
        self.access_count = 0
