"""Cache hierarchy model: L1-I, L1-D, unified L2, SLC and DRAM.

The structure matches Table 1 of the paper: private L1 instruction and data
caches, a shared unified L2 (inclusive of the L1s) where the evaluated
replacement policies are applied, a shared unified SLC (exclusive,
victim-filled from L2 evictions) and a fixed-latency DRAM backend.  Each level
can host a stride/next-line prefetcher.

The miss-path walk operates directly on the flat columns of
:class:`~repro.cache.cache.SetAssociativeCache`: the request's line number is
computed once and shared by every level (set index and tag are shift/mask
derivations per level), L2/SLC lookups are inlined rather than dispatched,
and SLC victim fills travel as one reused scratch request.  All statistics
updates and replacement-policy hook invocations happen in exactly the order
of the historical per-level ``access``/``fill`` calls, which is what keeps
results bit-identical (``tests/test_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.prefetch import NullPrefetcher, Prefetcher, make_prefetcher
from repro.cache.replacement.factory import create_policy
from repro.cache.stats import HierarchyStats
from repro.common.addressing import CACHE_LINE_SIZE
from repro.common.errors import ConfigurationError
from repro.common.request import (
    AccessResult,
    AccessType,
    HitLevel,
    MemoryRequest,
    ScratchRequest,
)

_IFETCH = AccessType.INSTRUCTION_FETCH
_LOAD = AccessType.DATA_LOAD
_STORE = AccessType.DATA_STORE


@dataclass
class CacheLevelConfig:
    """Configuration of one cache level."""

    size_bytes: int
    associativity: int
    latency: int
    policy: str = "lru"
    policy_kwargs: dict = field(default_factory=dict)
    prefetcher: str = "none"
    prefetcher_kwargs: dict = field(default_factory=dict)

    def validate(self, name: str) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"{name}: size must be positive")
        if self.associativity <= 0:
            raise ConfigurationError(f"{name}: associativity must be positive")
        if self.latency < 0:
            raise ConfigurationError(f"{name}: latency must be non-negative")


@dataclass
class HierarchyConfig:
    """Configuration of the whole cache hierarchy (Table 1 shape)."""

    l1i: CacheLevelConfig
    l1d: CacheLevelConfig
    l2: CacheLevelConfig
    slc: CacheLevelConfig
    dram_latency: int = 400
    line_size: int = CACHE_LINE_SIZE
    l2_inclusive: bool = True
    slc_exclusive: bool = True

    def validate(self) -> None:
        for name in ("l1i", "l1d", "l2", "slc"):
            getattr(self, name).validate(name)
        if self.dram_latency < 0:
            raise ConfigurationError("dram_latency must be non-negative")
        if self.line_size <= 0:
            raise ConfigurationError("line_size must be positive")


def _build_cache(name: str, cfg: CacheLevelConfig, line_size: int) -> SetAssociativeCache:
    num_sets = cfg.size_bytes // (cfg.associativity * line_size)
    policy = create_policy(cfg.policy, num_sets, cfg.associativity, **cfg.policy_kwargs)
    return SetAssociativeCache(
        name=name,
        size_bytes=cfg.size_bytes,
        associativity=cfg.associativity,
        policy=policy,
        line_size=line_size,
    )


class SharedCacheSystem:
    """One L2 + SLC instance shared by several per-core hierarchies.

    The multi-core interleaved mode gives each core a private
    :class:`CacheHierarchy` (its own L1s and prefetchers) constructed over
    this object, so every core's miss path lands in the *same* L2/SLC arrays
    and replacement-policy state.  Besides the caches it keeps the sharing
    bookkeeping the contention experiments report:

    * ``owners`` — L2 line number -> index of the core that last filled it
      (occupancy attribution);
    * ``inter_core_evictions[c]`` — lines core ``c`` owned that another core
      evicted (how much core ``c`` suffered);
    * ``evictions_caused[c]`` — lines of *other* cores that core ``c``'s
      fills evicted (how much core ``c`` inflicted).

    Back-invalidation is cross-core: an inclusive-L2 victim is invalidated in
    every registered core's L1s, not just the filler's.  With a single
    registered core the shared walk performs exactly the private walk's state
    transitions, which is what keeps an N=1 multi-core run bit-identical to
    the single-core path (``tests/test_multicore.py``).
    """

    def __init__(self, config: HierarchyConfig) -> None:
        config.validate()
        self.config = config
        line = config.line_size
        self.l2 = _build_cache("L2", config.l2, line)
        self.slc = _build_cache("SLC", config.slc, line)
        #: L2 line number -> core index of the last filler.
        self.owners: dict[int, int] = {}
        #: Core index -> L2 lines it owned that another core evicted.
        self.inter_core_evictions: dict[int, int] = {}
        #: Core index -> other cores' L2 lines its fills evicted.
        self.evictions_caused: dict[int, int] = {}
        #: Per-core L1 views for cross-core back-invalidation, appended by
        #: :meth:`register`.  The list object is identity-stable: walk
        #: closures built before later cores register still see them.
        self._l1_registry: list[tuple[dict, dict, object, object]] = []

    def register(self, core_id: int, hierarchy: "CacheHierarchy") -> None:
        """Attach one core's private hierarchy to the shared levels."""
        cfg = hierarchy.config
        if (
            cfg.l2 != self.config.l2
            or cfg.slc != self.config.slc
            or cfg.line_size != self.config.line_size
            or cfg.l2_inclusive != self.config.l2_inclusive
            or cfg.slc_exclusive != self.config.slc_exclusive
        ):
            raise ConfigurationError(
                "shared-cache cores must agree on L2/SLC geometry, line size "
                "and inclusion flags"
            )
        if core_id in self.inter_core_evictions:
            raise ConfigurationError(f"core {core_id} registered twice")
        self.inter_core_evictions[core_id] = 0
        self.evictions_caused[core_id] = 0
        self._l1_registry.append(
            (
                hierarchy.l1i._line_map,
                hierarchy.l1d._line_map,
                hierarchy.l1i.invalidate_line,
                hierarchy.l1d.invalidate_line,
            )
        )

    def occupancy(self) -> dict[int, int]:
        """Resident L2 lines per owning core (cores with none report 0)."""
        counts = {core: 0 for core in sorted(self.inter_core_evictions)}
        for core in self.owners.values():
            counts[core] = counts.get(core, 0) + 1
        return counts

    def reset_sharing_stats(self) -> None:
        """Zero the eviction counters while keeping ownership state.

        Called after warm-up, mirroring ``reset_stats`` on the caches: the
        measured window starts with warmed contents (owners persist) but
        clean counters.
        """
        for core in self.inter_core_evictions:
            self.inter_core_evictions[core] = 0
        for core in self.evictions_caused:
            self.evictions_caused[core] = 0


class CacheHierarchy:
    """Drives memory requests through the modelled cache hierarchy.

    With ``shared`` set, the L2 and SLC are the shared system's instances
    (multi-core interleaved mode) and the below-L1 walk adds ownership
    tracking plus cross-core back-invalidation; otherwise the hierarchy is
    fully private and behaves exactly as before.
    """

    def __init__(
        self,
        config: HierarchyConfig,
        shared: Optional[SharedCacheSystem] = None,
        core_id: int = 0,
    ) -> None:
        config.validate()
        self.config = config
        self.shared = shared
        self.core_id = core_id
        line = config.line_size
        self.l1i = _build_cache("L1I", config.l1i, line)
        self.l1d = _build_cache("L1D", config.l1d, line)
        if shared is None:
            self.l2 = _build_cache("L2", config.l2, line)
            self.slc = _build_cache("SLC", config.slc, line)
        else:
            self.l2 = shared.l2
            self.slc = shared.slc
        self.l1i_prefetcher: Prefetcher = make_prefetcher(
            config.l1i.prefetcher, **config.l1i.prefetcher_kwargs
        )
        self.l1d_prefetcher: Prefetcher = make_prefetcher(
            config.l1d.prefetcher, **config.l1d.prefetcher_kwargs
        )
        self.l2_prefetcher: Prefetcher = make_prefetcher(
            config.l2.prefetcher, **config.l2.prefetcher_kwargs
        )
        self.stats = HierarchyStats()
        #: Optional hook invoked as ``observer(request, hit)`` for every
        #: *demand* access that reaches the L2 (i.e. every L1 miss).  Used by
        #: the reuse-distance analysis (Figure 3) without perturbing timing.
        #: Observers must read the request during the callback and not retain
        #: it (fast-path requests are reused scratch objects).
        self.l2_access_observer = None
        self._prefetch_scratch = ScratchRequest()
        self._prefetch_scratch.is_prefetch = True
        self._prefetch_scratch.core = core_id
        #: Reused request for SLC victim fills (temperature NONE, no
        #: starvation hint, prefetch-flagged — the values a fresh
        #: ``MemoryRequest`` would carry); every consumer on the fill path
        #: only reads field values.
        self._slc_scratch = ScratchRequest()
        self._slc_scratch.is_prefetch = True
        self._slc_scratch.core = core_id
        # ---- precomputed geometry and latencies for the walk hot path ----
        self._line_shift = self.l1i._line_shift
        self._lat_l1i = config.l1i.latency
        self._lat_l1d = config.l1d.latency
        self._lat_l2 = config.l2.latency
        self._lat_slc = config.slc.latency
        self._lat_dram = config.dram_latency
        self._l2_inclusive = config.l2_inclusive
        self._slc_exclusive = config.slc_exclusive
        # Null prefetchers are skipped entirely on the demand paths.
        self._l1i_observe = self._active_observe(self.l1i_prefetcher)
        self._l1d_observe = self._active_observe(self.l1d_prefetcher)
        self._l2_observe = self._active_observe(self.l2_prefetcher)
        #: The hot paths as closures over the (identity-stable) caches built
        #: above; see _make_walk/_make_instruction_fast/_make_data_fast.  The
        #: seed baseline replaces the caches after construction but never
        #: uses these paths — it overrides the whole access path.
        if shared is not None:
            shared.register(core_id, self)
            self._walk_below_l1 = self._make_walk_shared()
        else:
            self._walk_below_l1 = self._make_walk()
        self._issue_targets = self._make_issue_targets()
        self.access_instruction_fast = self._make_instruction_fast()
        self.access_data_fast = self._make_data_fast()

    @staticmethod
    def _active_observe(prefetcher: Prefetcher):
        """``prefetcher.observe`` pre-bound, or ``None`` for the null engine."""
        if isinstance(prefetcher, NullPrefetcher):
            return None
        return prefetcher.observe

    # ----------------------------------------------------------- public API
    def access_instruction(self, request: MemoryRequest) -> AccessResult:
        """Service an instruction fetch (or instruction prefetch)."""
        if not request.is_instruction:
            raise ValueError("access_instruction requires an instruction request")
        return self._access(request, self.l1i, self.l1i_prefetcher)

    def access_data(self, request: MemoryRequest) -> AccessResult:
        """Service a data load/store (or data prefetch)."""
        if request.is_instruction:
            raise ValueError("access_data requires a data request")
        return self._access(request, self.l1d, self.l1d_prefetcher)

    def access(self, request: MemoryRequest) -> AccessResult:
        """Dispatch a request to the instruction or data path."""
        if request.is_instruction:
            return self.access_instruction(request)
        return self.access_data(request)

    def reset(self) -> None:
        for cache in (self.l1i, self.l1d, self.l2, self.slc):
            cache.reset()
        for prefetcher in (self.l1i_prefetcher, self.l1d_prefetcher, self.l2_prefetcher):
            prefetcher.reset()
        self.stats.reset()

    def reset_stats(self) -> None:
        """Clear statistics while keeping cache contents and policy state.

        Used after the warm-up (fast-forward) phase so that only the measured
        window contributes to MPKI and latency counters.
        """
        for cache in (self.l1i, self.l1d, self.l2, self.slc):
            cache.stats.reset()
        self.stats.reset()

    # ------------------------------------------------------------ fast paths
    def _make_instruction_fast(self):
        """Build the demand instruction-fetch fast path as a closure.

        Returns ``(latency, l2_miss)``.  L1-I hits — the overwhelmingly
        common case on repeat fetches of a resident line — skip the full
        hierarchy walk and the :class:`AccessResult` allocation while
        performing exactly the same state updates (cache stats, replacement
        hooks, prefetcher observations) as :meth:`access_instruction`.
        ``line_no`` is the request's precomputed line number when the caller
        already knows it.
        """
        stats = self.stats
        l1 = self.l1i
        l1_stats = l1.stats
        l1_map = l1._line_map
        l1_set_mask = l1._set_mask
        touch_kind = l1._touch_kind
        touch_rows = l1._touch_rows
        touch_arg = l1._touch_arg
        policy_touch = l1._policy_touch
        on_hit = l1.policy.on_hit
        lat_l1i = self._lat_l1i
        line_shift = self._line_shift
        walk = self._walk_below_l1
        l1i_observe = self._l1i_observe
        l2_observe = self._l2_observe
        issue_targets = self._issue_targets

        def access_instruction_fast(
            request: MemoryRequest, line_no: int = -1
        ) -> tuple[int, bool]:
            stats.instruction_fetches += 1
            if line_no < 0:
                line_no = request.address >> line_shift
            # Inlined L1-I demand hit (mirrors access_line for an ifetch).
            way = l1_map.get(line_no)
            if way is not None:
                l1_stats.inst_hits += 1
                set_index = line_no & l1_set_mask
                if touch_kind == 2:
                    clock = touch_arg[0] + 1
                    touch_arg[0] = clock
                    touch_rows[set_index][way] = clock
                elif touch_kind == 1:
                    touch_rows[set_index][way] = touch_arg
                elif touch_kind == 0:
                    if policy_touch is not None:
                        policy_touch(set_index, way)
                    else:
                        on_hit(set_index, way, request)
                stats.total_latency += lat_l1i
                if l1i_observe is not None:
                    targets = l1i_observe(request, True)
                    if targets:
                        issue_targets(request, l1, targets)
                if l2_observe is not None:
                    targets = l2_observe(request, False)
                    if targets:
                        issue_targets(request, l1, targets)
                return lat_l1i, False
            l1_stats.inst_misses += 1
            latency, level = walk(request, l1, None, line_no)
            # Inlined _account for a demand instruction L1 miss.
            l2_miss = level >= 3
            if l2_miss:
                stats.l2_inst_misses += 1
            stats.total_latency += latency
            stats.l1i_misses += 1
            if level == 4:
                stats.slc_misses += 1
                stats.dram_accesses += 1
            if l1i_observe is not None:
                targets = l1i_observe(request, False)
                if targets:
                    issue_targets(request, l1, targets)
            if l2_observe is not None:
                targets = l2_observe(request, level == 2)
                if targets:
                    issue_targets(request, l1, targets)
            return latency, l2_miss

        return access_instruction_fast

    def _make_data_fast(self):
        """Build the demand data-access fast path as a closure.

        Returns the access latency; state updates match :meth:`access_data`.
        """
        stats = self.stats
        l1 = self.l1d
        l1_stats = l1.stats
        l1_map = l1._line_map
        l1_set_mask = l1._set_mask
        l1_ways = l1.associativity
        l1_dirty = l1._dirty
        touch_kind = l1._touch_kind
        touch_rows = l1._touch_rows
        touch_arg = l1._touch_arg
        policy_touch = l1._policy_touch
        on_hit = l1.policy.on_hit
        lat_l1d = self._lat_l1d
        line_shift = self._line_shift
        walk = self._walk_below_l1
        l1d_observe = self._l1d_observe
        l2_observe = self._l2_observe
        issue_targets = self._issue_targets

        def access_data_fast(request: MemoryRequest, line_no: int = -1) -> int:
            stats.data_accesses += 1
            if line_no < 0:
                line_no = request.address >> line_shift
            # Inlined L1-D demand hit (mirrors access_line for a data access).
            way = l1_map.get(line_no)
            if way is not None:
                l1_stats.data_hits += 1
                set_index = line_no & l1_set_mask
                if request.access_type is _STORE:
                    l1_dirty[set_index * l1_ways + way] = 1
                if touch_kind == 2:
                    clock = touch_arg[0] + 1
                    touch_arg[0] = clock
                    touch_rows[set_index][way] = clock
                elif touch_kind == 1:
                    touch_rows[set_index][way] = touch_arg
                elif touch_kind == 0:
                    if policy_touch is not None:
                        policy_touch(set_index, way)
                    else:
                        on_hit(set_index, way, request)
                stats.total_latency += lat_l1d
                if l1d_observe is not None:
                    targets = l1d_observe(request, True)
                    if targets:
                        issue_targets(request, l1, targets)
                if l2_observe is not None:
                    targets = l2_observe(request, False)
                    if targets:
                        issue_targets(request, l1, targets)
                return lat_l1d
            l1_stats.data_misses += 1
            latency, level = walk(request, l1, None, line_no)
            # Inlined _account for a demand data L1 miss.
            stats.total_latency += latency
            stats.l1d_misses += 1
            if level >= 3:
                stats.l2_data_misses += 1
                if level == 4:
                    stats.slc_misses += 1
                    stats.dram_accesses += 1
            if l1d_observe is not None:
                targets = l1d_observe(request, False)
                if targets:
                    issue_targets(request, l1, targets)
            if l2_observe is not None:
                targets = l2_observe(request, level == 2)
                if targets:
                    issue_targets(request, l1, targets)
            return latency

        return access_data_fast

    # -------------------------------------------------------------- internals
    def _access(
        self,
        request: MemoryRequest,
        l1: SetAssociativeCache,
        l1_prefetcher: Prefetcher,
        allow_prefetch: bool = True,
    ) -> AccessResult:
        demand = not request.is_prefetch
        if demand:
            if request.access_type is _IFETCH:
                self.stats.instruction_fetches += 1
            else:
                self.stats.data_accesses += 1

        line_no = request.address >> self._line_shift
        if l1.access_line(request, line_no):
            latency = self._l1_latency(request)
            result = AccessResult(
                request=request,
                hit_level=HitLevel.L1,
                latency=latency,
                l1_hit=True,
            )
            self._account(request, latency, 1, True, demand)
        else:
            evicted: list[int] = []
            latency, level = self._walk_below_l1(request, l1, evicted, line_no)
            result = AccessResult(
                request=request,
                hit_level=HitLevel(level),
                latency=latency,
                l2_hit=level == 2,
                slc_hit=level == 3,
                evicted_lines=tuple(evicted),
            )
            self._account(request, latency, level, False, demand)

        if allow_prefetch and demand:
            self._run_prefetchers(
                request, l1, l1_prefetcher, result.l1_hit, result.l2_hit
            )
        return result

    def _account(
        self,
        request: MemoryRequest,
        latency: int,
        level: int,
        l1_hit: bool,
        demand: bool,
    ) -> None:
        """Update hierarchy counters for an access serviced at ``level``.

        ``level`` is the integer value of the servicing :class:`HitLevel`
        (1=L1 … 4=DRAM); an L2 miss therefore is ``level >= 3``.
        """
        stats = self.stats
        is_instruction = request.access_type is _IFETCH
        l2_miss = level >= 3
        # Instruction-side L2 misses are counted for demand fetches *and* for
        # FDIP instruction prefetches: with a decoupled frontend the run-ahead
        # prefetcher issues the demand stream early, so its misses are the
        # instruction misses the program pays for (the later demand fetch then
        # hits the L1-I).  Data prefetches stay excluded from MPKI.
        if l2_miss and is_instruction:
            stats.l2_inst_misses += 1

        if demand:
            stats.total_latency += latency
            if not l1_hit:
                if is_instruction:
                    stats.l1i_misses += 1
                else:
                    stats.l1d_misses += 1
            if l2_miss and not is_instruction:
                stats.l2_data_misses += 1
            if level == 4:
                # Serviced by DRAM: missed the SLC as well as the L2.
                stats.slc_misses += 1
                stats.dram_accesses += 1

    def _make_walk(self):
        """Build the below-L1 walk as a closure over stable hierarchy state.

        The walk continues after an L1 miss has already been recorded and
        returns ``(latency, level)`` with ``level`` the integer
        :class:`~repro.common.request.HitLevel` that serviced the access.
        ``evicted`` collects the addresses of lines evicted by the fills when
        a list is supplied (the compat path exposes them through
        ``AccessResult.evicted_lines``; the fast paths pass ``None``).

        The L2 and SLC lookups are inlined copies of
        :meth:`SetAssociativeCache.access_line`, and the L2 victim handling
        (back-invalidation, exclusive-SLC victim fill) is inlined as well —
        statistics, dirty-bit and replacement-hook updates happen in exactly
        the order of the historical per-level ``access``/``fill`` calls.
        Every captured object is identity-stable for the hierarchy lifetime
        (caches reset in place); the one dynamic attribute,
        ``l2_access_observer``, is read through ``self`` per call.
        """
        hier = self
        l1i_map = self.l1i._line_map
        l1d_map = self.l1d._line_map
        l1i_invalidate = self.l1i.invalidate_line
        l1d_invalidate = self.l1d.invalidate_line
        l2 = self.l2
        slc = self.slc
        l2_map = l2._line_map
        slc_map = slc._line_map
        l2_stats = l2.stats
        slc_stats = slc.stats
        l2_dirty = l2._dirty
        slc_dirty = slc._dirty
        l2_ways = l2.associativity
        slc_ways = slc.associativity
        l2_set_mask = l2._set_mask
        slc_set_mask = slc._set_mask
        l2_touch_kind = l2._touch_kind
        l2_touch_rows = l2._touch_rows
        l2_touch_arg = l2._touch_arg
        l2_policy_touch = l2._policy_touch
        l2_on_hit = l2.policy.on_hit
        slc_touch_kind = slc._touch_kind
        slc_touch_rows = slc._touch_rows
        slc_touch_arg = slc._touch_arg
        slc_policy_touch = slc._policy_touch
        slc_on_hit = slc.policy.on_hit
        l2_fill = l2._fill_scalars
        slc_fill = slc._fill_scalars
        slc_invalidate = slc.invalidate_line
        temp_none = self._slc_scratch.temperature
        lat_l1i = self._lat_l1i
        lat_l1d = self._lat_l1d
        lat_l2 = self._lat_l2
        lat_slc = self._lat_slc
        lat_slc_dram = self._lat_slc + self._lat_dram
        l2_inclusive = self._l2_inclusive
        slc_exclusive = self._slc_exclusive
        line_shift = self._line_shift
        scratch = self._slc_scratch

        def walk(
            request: MemoryRequest,
            l1: SetAssociativeCache,
            evicted: Optional[list[int]],
            line_no: int = -1,
        ) -> tuple[int, int]:
            if line_no < 0:
                line_no = request.address >> line_shift
            access_type = request.access_type
            is_ifetch = access_type is _IFETCH
            is_prefetch = request.is_prefetch
            latency = (lat_l1i if is_ifetch else lat_l1d) + lat_l2
            observer = hier.l2_access_observer
            # Scalar request fields, extracted once and shared by every
            # level's fill (see SetAssociativeCache._fill_scalars).
            l1_fill = l1._fill_scalars
            dirty_new = 1 if access_type is _STORE else 0
            instr_new = 1 if is_ifetch else 0
            temperature = request.temperature
            pc = request.pc

            # L2 lookup (the level whose policy is under evaluation).
            way = l2_map.get(line_no)
            if way is not None:
                if is_prefetch:
                    l2_stats.prefetch_hits += 1
                elif is_ifetch:
                    l2_stats.inst_hits += 1
                else:
                    l2_stats.data_hits += 1
                set_index = line_no & l2_set_mask
                if access_type is _STORE:
                    l2_dirty[set_index * l2_ways + way] = 1
                if l2_touch_kind == 1:
                    l2_touch_rows[set_index][way] = l2_touch_arg
                elif l2_touch_kind == 2:
                    clock = l2_touch_arg[0] + 1
                    l2_touch_arg[0] = clock
                    l2_touch_rows[set_index][way] = clock
                elif l2_touch_kind == 0:
                    if l2_policy_touch is not None:
                        l2_policy_touch(set_index, way)
                    else:
                        l2_on_hit(set_index, way, request)
                if observer is not None and not is_prefetch:
                    observer(request, True)
                if evicted is None:
                    l1_fill(
                        line_no, 0, False, dirty_new, instr_new,
                        temperature, pc, is_prefetch, request,
                    )
                else:
                    victim = l1_fill(
                        line_no, 1, False, dirty_new, instr_new,
                        temperature, pc, is_prefetch, request,
                    )
                    if victim is not None:
                        evicted.append(victim[0] << line_shift)
                return latency, 2
            if is_prefetch:
                l2_stats.prefetch_misses += 1
            elif is_ifetch:
                l2_stats.inst_misses += 1
            else:
                l2_stats.data_misses += 1
            if observer is not None and not is_prefetch:
                observer(request, False)

            # SLC lookup.
            way = slc_map.get(line_no)
            if way is not None:
                if is_prefetch:
                    slc_stats.prefetch_hits += 1
                elif is_ifetch:
                    slc_stats.inst_hits += 1
                else:
                    slc_stats.data_hits += 1
                set_index = line_no & slc_set_mask
                if access_type is _STORE:
                    slc_dirty[set_index * slc_ways + way] = 1
                if slc_touch_kind == 2:
                    clock = slc_touch_arg[0] + 1
                    slc_touch_arg[0] = clock
                    slc_touch_rows[set_index][way] = clock
                elif slc_touch_kind == 1:
                    slc_touch_rows[set_index][way] = slc_touch_arg
                elif slc_touch_kind == 0:
                    if slc_policy_touch is not None:
                        slc_policy_touch(set_index, way)
                    else:
                        slc_on_hit(set_index, way, request)
                latency += lat_slc
                if slc_exclusive:
                    slc_invalidate(line_no)
                # L2 fill + victim handling (back-inval, SLC victim fill).
                victim = l2_fill(
                    line_no, 1, False, dirty_new, instr_new,
                    temperature, pc, is_prefetch, request,
                )
                if victim is not None:
                    victim_line, victim_instr, victim_pc = victim
                    if evicted is not None:
                        evicted.append(victim_line << line_shift)
                    if l2_inclusive:
                        if victim_line in l1i_map:
                            l1i_invalidate(victim_line)
                        if victim_line in l1d_map:
                            l1d_invalidate(victim_line)
                    if slc_exclusive:
                        scratch.address = victim_line << line_shift
                        scratch.access_type = _IFETCH if victim_instr else _LOAD
                        scratch.pc = victim_pc
                        slc_fill(
                            victim_line, 0, False, 0,
                            1 if victim_instr else 0,
                            temp_none, victim_pc, True, scratch,
                        )
                if evicted is None:
                    l1_fill(
                        line_no, 0, False, dirty_new, instr_new,
                        temperature, pc, is_prefetch, request,
                    )
                else:
                    victim = l1_fill(
                        line_no, 1, False, dirty_new, instr_new,
                        temperature, pc, is_prefetch, request,
                    )
                    if victim is not None:
                        evicted.append(victim[0] << line_shift)
                return latency, 3
            if is_prefetch:
                slc_stats.prefetch_misses += 1
            elif is_ifetch:
                slc_stats.inst_misses += 1
            else:
                slc_stats.data_misses += 1

            # DRAM.
            latency += lat_slc_dram
            victim = l2_fill(
                line_no, 1, False, dirty_new, instr_new,
                temperature, pc, is_prefetch, request,
            )
            if victim is not None:
                victim_line, victim_instr, victim_pc = victim
                if evicted is not None:
                    evicted.append(victim_line << line_shift)
                if l2_inclusive:
                    if victim_line in l1i_map:
                        l1i_invalidate(victim_line)
                    if victim_line in l1d_map:
                        l1d_invalidate(victim_line)
                if slc_exclusive:
                    scratch.address = victim_line << line_shift
                    scratch.access_type = _IFETCH if victim_instr else _LOAD
                    scratch.pc = victim_pc
                    slc_fill(
                        victim_line, 0, False, 0,
                        1 if victim_instr else 0,
                        temp_none, victim_pc, True, scratch,
                    )
            if not slc_exclusive:
                slc_fill(
                    line_no, 0, False, dirty_new, instr_new,
                    temperature, pc, is_prefetch, request,
                )
            if evicted is None:
                l1_fill(
                    line_no, 0, False, dirty_new, instr_new,
                    temperature, pc, is_prefetch, request,
                )
            else:
                victim = l1_fill(
                    line_no, 1, False, dirty_new, instr_new,
                    temperature, pc, is_prefetch, request,
                )
                if victim is not None:
                    evicted.append(victim[0] << line_shift)
            return latency, 4

        return walk

    def _make_walk_shared(self):
        """The below-L1 walk for a core attached to a :class:`SharedCacheSystem`.

        Identical to :meth:`_make_walk` in every lookup, statistic and
        replacement-hook transition, with two sharing extensions at the L2
        fill sites: the owner map records this core as the filler, and an
        evicted line owned by *another* core bumps the inter-core eviction
        counters.  Back-invalidation consults every registered core's L1s
        through the shared registry (for one registered core that is exactly
        the private walk's behaviour, so N=1 stays bit-identical).
        """
        hier = self
        shared = self.shared
        core_id = self.core_id
        owners = shared.owners
        inter_core = shared.inter_core_evictions
        caused = shared.evictions_caused
        l1_registry = shared._l1_registry
        l2 = self.l2
        slc = self.slc
        l2_map = l2._line_map
        slc_map = slc._line_map
        l2_stats = l2.stats
        slc_stats = slc.stats
        l2_dirty = l2._dirty
        slc_dirty = slc._dirty
        l2_ways = l2.associativity
        slc_ways = slc.associativity
        l2_set_mask = l2._set_mask
        slc_set_mask = slc._set_mask
        l2_touch_kind = l2._touch_kind
        l2_touch_rows = l2._touch_rows
        l2_touch_arg = l2._touch_arg
        l2_policy_touch = l2._policy_touch
        l2_on_hit = l2.policy.on_hit
        slc_touch_kind = slc._touch_kind
        slc_touch_rows = slc._touch_rows
        slc_touch_arg = slc._touch_arg
        slc_policy_touch = slc._policy_touch
        slc_on_hit = slc.policy.on_hit
        l2_fill = l2._fill_scalars
        slc_fill = slc._fill_scalars
        slc_invalidate = slc.invalidate_line
        temp_none = self._slc_scratch.temperature
        lat_l1i = self._lat_l1i
        lat_l1d = self._lat_l1d
        lat_l2 = self._lat_l2
        lat_slc = self._lat_slc
        lat_slc_dram = self._lat_slc + self._lat_dram
        l2_inclusive = self._l2_inclusive
        slc_exclusive = self._slc_exclusive
        line_shift = self._line_shift
        scratch = self._slc_scratch

        def walk(
            request: MemoryRequest,
            l1: SetAssociativeCache,
            evicted: Optional[list[int]],
            line_no: int = -1,
        ) -> tuple[int, int]:
            if line_no < 0:
                line_no = request.address >> line_shift
            access_type = request.access_type
            is_ifetch = access_type is _IFETCH
            is_prefetch = request.is_prefetch
            latency = (lat_l1i if is_ifetch else lat_l1d) + lat_l2
            observer = hier.l2_access_observer
            l1_fill = l1._fill_scalars
            dirty_new = 1 if access_type is _STORE else 0
            instr_new = 1 if is_ifetch else 0
            temperature = request.temperature
            pc = request.pc

            # L2 lookup (shared instance).
            way = l2_map.get(line_no)
            if way is not None:
                if is_prefetch:
                    l2_stats.prefetch_hits += 1
                elif is_ifetch:
                    l2_stats.inst_hits += 1
                else:
                    l2_stats.data_hits += 1
                set_index = line_no & l2_set_mask
                if access_type is _STORE:
                    l2_dirty[set_index * l2_ways + way] = 1
                if l2_touch_kind == 1:
                    l2_touch_rows[set_index][way] = l2_touch_arg
                elif l2_touch_kind == 2:
                    clock = l2_touch_arg[0] + 1
                    l2_touch_arg[0] = clock
                    l2_touch_rows[set_index][way] = clock
                elif l2_touch_kind == 0:
                    if l2_policy_touch is not None:
                        l2_policy_touch(set_index, way)
                    else:
                        l2_on_hit(set_index, way, request)
                if observer is not None and not is_prefetch:
                    observer(request, True)
                if evicted is None:
                    l1_fill(
                        line_no, 0, False, dirty_new, instr_new,
                        temperature, pc, is_prefetch, request,
                    )
                else:
                    victim = l1_fill(
                        line_no, 1, False, dirty_new, instr_new,
                        temperature, pc, is_prefetch, request,
                    )
                    if victim is not None:
                        evicted.append(victim[0] << line_shift)
                return latency, 2
            if is_prefetch:
                l2_stats.prefetch_misses += 1
            elif is_ifetch:
                l2_stats.inst_misses += 1
            else:
                l2_stats.data_misses += 1
            if observer is not None and not is_prefetch:
                observer(request, False)

            # SLC lookup (shared instance).
            way = slc_map.get(line_no)
            if way is not None:
                if is_prefetch:
                    slc_stats.prefetch_hits += 1
                elif is_ifetch:
                    slc_stats.inst_hits += 1
                else:
                    slc_stats.data_hits += 1
                set_index = line_no & slc_set_mask
                if access_type is _STORE:
                    slc_dirty[set_index * slc_ways + way] = 1
                if slc_touch_kind == 2:
                    clock = slc_touch_arg[0] + 1
                    slc_touch_arg[0] = clock
                    slc_touch_rows[set_index][way] = clock
                elif slc_touch_kind == 1:
                    slc_touch_rows[set_index][way] = slc_touch_arg
                elif slc_touch_kind == 0:
                    if slc_policy_touch is not None:
                        slc_policy_touch(set_index, way)
                    else:
                        slc_on_hit(set_index, way, request)
                latency += lat_slc
                if slc_exclusive:
                    slc_invalidate(line_no)
                victim = l2_fill(
                    line_no, 1, False, dirty_new, instr_new,
                    temperature, pc, is_prefetch, request,
                )
                owners[line_no] = core_id
                if victim is not None:
                    victim_line, victim_instr, victim_pc = victim
                    owner = owners.pop(victim_line, core_id)
                    if owner != core_id:
                        inter_core[owner] += 1
                        caused[core_id] += 1
                    if evicted is not None:
                        evicted.append(victim_line << line_shift)
                    if l2_inclusive:
                        for l1i_map, l1d_map, l1i_inv, l1d_inv in l1_registry:
                            if victim_line in l1i_map:
                                l1i_inv(victim_line)
                            if victim_line in l1d_map:
                                l1d_inv(victim_line)
                    if slc_exclusive:
                        scratch.address = victim_line << line_shift
                        scratch.access_type = _IFETCH if victim_instr else _LOAD
                        scratch.pc = victim_pc
                        slc_fill(
                            victim_line, 0, False, 0,
                            1 if victim_instr else 0,
                            temp_none, victim_pc, True, scratch,
                        )
                if evicted is None:
                    l1_fill(
                        line_no, 0, False, dirty_new, instr_new,
                        temperature, pc, is_prefetch, request,
                    )
                else:
                    victim = l1_fill(
                        line_no, 1, False, dirty_new, instr_new,
                        temperature, pc, is_prefetch, request,
                    )
                    if victim is not None:
                        evicted.append(victim[0] << line_shift)
                return latency, 3
            if is_prefetch:
                slc_stats.prefetch_misses += 1
            elif is_ifetch:
                slc_stats.inst_misses += 1
            else:
                slc_stats.data_misses += 1

            # DRAM.
            latency += lat_slc_dram
            victim = l2_fill(
                line_no, 1, False, dirty_new, instr_new,
                temperature, pc, is_prefetch, request,
            )
            owners[line_no] = core_id
            if victim is not None:
                victim_line, victim_instr, victim_pc = victim
                owner = owners.pop(victim_line, core_id)
                if owner != core_id:
                    inter_core[owner] += 1
                    caused[core_id] += 1
                if evicted is not None:
                    evicted.append(victim_line << line_shift)
                if l2_inclusive:
                    for l1i_map, l1d_map, l1i_inv, l1d_inv in l1_registry:
                        if victim_line in l1i_map:
                            l1i_inv(victim_line)
                        if victim_line in l1d_map:
                            l1d_inv(victim_line)
                if slc_exclusive:
                    scratch.address = victim_line << line_shift
                    scratch.access_type = _IFETCH if victim_instr else _LOAD
                    scratch.pc = victim_pc
                    slc_fill(
                        victim_line, 0, False, 0,
                        1 if victim_instr else 0,
                        temp_none, victim_pc, True, scratch,
                    )
            if not slc_exclusive:
                slc_fill(
                    line_no, 0, False, dirty_new, instr_new,
                    temperature, pc, is_prefetch, request,
                )
            if evicted is None:
                l1_fill(
                    line_no, 0, False, dirty_new, instr_new,
                    temperature, pc, is_prefetch, request,
                )
            else:
                victim = l1_fill(
                    line_no, 1, False, dirty_new, instr_new,
                    temperature, pc, is_prefetch, request,
                )
                if victim is not None:
                    evicted.append(victim[0] << line_shift)
            return latency, 4

        return walk

    def _l1_latency(self, request: MemoryRequest) -> int:
        if request.access_type is _IFETCH:
            return self._lat_l1i
        return self._lat_l1d

    def _run_prefetchers(
        self,
        request: MemoryRequest,
        l1: SetAssociativeCache,
        l1_prefetcher: Prefetcher,
        l1_hit: bool,
        l2_hit: bool,
    ) -> None:
        if l1_prefetcher is self.l1i_prefetcher:
            observe = self._l1i_observe
        elif l1_prefetcher is self.l1d_prefetcher:
            observe = self._l1d_observe
        else:
            observe = self._active_observe(l1_prefetcher)
        if observe is not None:
            targets = observe(request, l1_hit)
            if targets:
                self._issue_targets(request, l1, targets)
        observe = self._l2_observe
        if observe is not None:
            targets = observe(request, l2_hit)
            if targets:
                self._issue_targets(request, l1, targets)

    def _make_issue_targets(self):
        """Build the prefetch-issue path as a closure.

        Issues prefetches for the targets derived from a demand request.  The
        prefetch requests travel as one reused
        :class:`~repro.common.request.ScratchRequest` — every consumer on the
        prefetch walk (cache stats, fills, replacement hooks) only reads field
        values, so a mutable request carrying the same values is
        indistinguishable from a fresh frozen one.  Each target is equivalent
        to ``_access(target, ..., allow_prefetch=False)``: no demand
        counters, no nested prefetching, only the instruction-prefetch
        L2-miss accounting; the L1 probe is inlined.
        """
        scratch = self._prefetch_scratch
        stats = self.stats
        walk = self._walk_below_l1
        line_shift = self._line_shift

        def issue_targets(request, l1: SetAssociativeCache, targets) -> None:
            scratch.access_type = access_type = request.access_type
            scratch.pc = request.pc
            scratch.temperature = request.temperature
            scratch.starvation_hint = request.starvation_hint
            l1_map = l1._line_map
            for address in targets:
                stats.prefetches_issued += 1
                scratch.address = address
                line_no = address >> line_shift
                way = l1_map.get(line_no)
                if way is not None:
                    # A prefetch L1 hit updates no hierarchy counters
                    # (inlined access_line for a prefetch hit).
                    l1.stats.prefetch_hits += 1
                    set_index = line_no & l1._set_mask
                    if access_type is _STORE:
                        l1._dirty[set_index * l1.associativity + way] = 1
                    kind = l1._touch_kind
                    if kind == 2:
                        cell = l1._touch_arg
                        clock = cell[0] + 1
                        cell[0] = clock
                        l1._touch_rows[set_index][way] = clock
                    elif kind == 1:
                        l1._touch_rows[set_index][way] = l1._touch_arg
                    elif kind == 0:
                        touch = l1._policy_touch
                        if touch is not None:
                            touch(set_index, way)
                        else:
                            l1.policy.on_hit(set_index, way, scratch)
                    continue
                l1.stats.prefetch_misses += 1
                latency, level = walk(scratch, l1, None, line_no)
                if level >= 3 and access_type is _IFETCH:
                    stats.l2_inst_misses += 1

        return issue_targets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheHierarchy(l1i={self.l1i.size_bytes}, l1d={self.l1d.size_bytes}, "
            f"l2={self.l2.size_bytes}/{self.l2.policy.name}, slc={self.slc.size_bytes})"
        )
