"""Cache hierarchy model: L1-I, L1-D, unified L2, SLC and DRAM.

The structure matches Table 1 of the paper: private L1 instruction and data
caches, a shared unified L2 (inclusive of the L1s) where the evaluated
replacement policies are applied, a shared unified SLC (exclusive,
victim-filled from L2 evictions) and a fixed-latency DRAM backend.  Each level
can host a stride/next-line prefetcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.prefetch import Prefetcher, make_prefetcher
from repro.cache.replacement.factory import create_policy
from repro.cache.stats import HierarchyStats
from repro.common.addressing import CACHE_LINE_SIZE
from repro.common.errors import ConfigurationError
from repro.common.request import (
    AccessResult,
    AccessType,
    HitLevel,
    MemoryRequest,
    ScratchRequest,
)


@dataclass
class CacheLevelConfig:
    """Configuration of one cache level."""

    size_bytes: int
    associativity: int
    latency: int
    policy: str = "lru"
    policy_kwargs: dict = field(default_factory=dict)
    prefetcher: str = "none"
    prefetcher_kwargs: dict = field(default_factory=dict)

    def validate(self, name: str) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"{name}: size must be positive")
        if self.associativity <= 0:
            raise ConfigurationError(f"{name}: associativity must be positive")
        if self.latency < 0:
            raise ConfigurationError(f"{name}: latency must be non-negative")


@dataclass
class HierarchyConfig:
    """Configuration of the whole cache hierarchy (Table 1 shape)."""

    l1i: CacheLevelConfig
    l1d: CacheLevelConfig
    l2: CacheLevelConfig
    slc: CacheLevelConfig
    dram_latency: int = 400
    line_size: int = CACHE_LINE_SIZE
    l2_inclusive: bool = True
    slc_exclusive: bool = True

    def validate(self) -> None:
        for name in ("l1i", "l1d", "l2", "slc"):
            getattr(self, name).validate(name)
        if self.dram_latency < 0:
            raise ConfigurationError("dram_latency must be non-negative")
        if self.line_size <= 0:
            raise ConfigurationError("line_size must be positive")


def _build_cache(name: str, cfg: CacheLevelConfig, line_size: int) -> SetAssociativeCache:
    num_sets = cfg.size_bytes // (cfg.associativity * line_size)
    policy = create_policy(cfg.policy, num_sets, cfg.associativity, **cfg.policy_kwargs)
    return SetAssociativeCache(
        name=name,
        size_bytes=cfg.size_bytes,
        associativity=cfg.associativity,
        policy=policy,
        line_size=line_size,
    )


class CacheHierarchy:
    """Drives memory requests through the modelled cache hierarchy."""

    def __init__(self, config: HierarchyConfig) -> None:
        config.validate()
        self.config = config
        line = config.line_size
        self.l1i = _build_cache("L1I", config.l1i, line)
        self.l1d = _build_cache("L1D", config.l1d, line)
        self.l2 = _build_cache("L2", config.l2, line)
        self.slc = _build_cache("SLC", config.slc, line)
        self.l1i_prefetcher: Prefetcher = make_prefetcher(
            config.l1i.prefetcher, **config.l1i.prefetcher_kwargs
        )
        self.l1d_prefetcher: Prefetcher = make_prefetcher(
            config.l1d.prefetcher, **config.l1d.prefetcher_kwargs
        )
        self.l2_prefetcher: Prefetcher = make_prefetcher(
            config.l2.prefetcher, **config.l2.prefetcher_kwargs
        )
        self.stats = HierarchyStats()
        #: Optional hook invoked as ``observer(request, hit)`` for every
        #: *demand* access that reaches the L2 (i.e. every L1 miss).  Used by
        #: the reuse-distance analysis (Figure 3) without perturbing timing.
        #: Observers must read the request during the callback and not retain
        #: it (fast-path requests are reused scratch objects).
        self.l2_access_observer = None
        self._prefetch_scratch = ScratchRequest()
        self._prefetch_scratch.is_prefetch = True

    # ----------------------------------------------------------- public API
    def access_instruction(self, request: MemoryRequest) -> AccessResult:
        """Service an instruction fetch (or instruction prefetch)."""
        if not request.is_instruction:
            raise ValueError("access_instruction requires an instruction request")
        return self._access(request, self.l1i, self.l1i_prefetcher)

    def access_data(self, request: MemoryRequest) -> AccessResult:
        """Service a data load/store (or data prefetch)."""
        if request.is_instruction:
            raise ValueError("access_data requires a data request")
        return self._access(request, self.l1d, self.l1d_prefetcher)

    def access(self, request: MemoryRequest) -> AccessResult:
        """Dispatch a request to the instruction or data path."""
        if request.is_instruction:
            return self.access_instruction(request)
        return self.access_data(request)

    def reset(self) -> None:
        for cache in (self.l1i, self.l1d, self.l2, self.slc):
            cache.reset()
        for prefetcher in (self.l1i_prefetcher, self.l1d_prefetcher, self.l2_prefetcher):
            prefetcher.reset()
        self.stats.reset()

    def reset_stats(self) -> None:
        """Clear statistics while keeping cache contents and policy state.

        Used after the warm-up (fast-forward) phase so that only the measured
        window contributes to MPKI and latency counters.
        """
        for cache in (self.l1i, self.l1d, self.l2, self.slc):
            cache.stats.reset()
        self.stats.reset()

    # ------------------------------------------------------------ fast paths
    def access_instruction_fast(self, request: MemoryRequest) -> tuple[int, bool]:
        """Demand instruction fetch without result-object construction.

        Returns ``(latency, l2_miss)``.  L1-I hits — the overwhelmingly common
        case on repeat fetches of a resident line — skip the full hierarchy
        walk and the :class:`AccessResult` allocation while performing exactly
        the same state updates (cache stats, replacement hooks, prefetcher
        observations) as :meth:`access_instruction`.
        """
        stats = self.stats
        stats.instruction_fetches += 1
        l1 = self.l1i
        # Inlined L1-I demand hit (the code below mirrors
        # SetAssociativeCache.access for a demand instruction fetch).
        time = l1._time + 1
        l1._time = time
        address = request.address
        set_index = (address // l1.line_size) % l1.num_sets
        way = l1._tag_maps[set_index].get(address // l1._tag_divisor)
        if way is not None:
            l1.stats.inst_hits += 1
            block = l1._sets[set_index][way]
            block.last_access_time = time
            block.access_count += 1
            l1.policy.on_hit(set_index, way, request)
            latency = self.config.l1i.latency
            stats.total_latency += latency
            targets = self.l1i_prefetcher.observe(request, True)
            if targets:
                self._issue_targets(request, l1, targets)
            targets = self.l2_prefetcher.observe(request, False)
            if targets:
                self._issue_targets(request, l1, targets)
            return latency, False
        l1.stats.inst_misses += 1
        latency, level = self._walk_below_l1(request, l1, None)
        self._account(request, latency, level, False, True)
        self._run_prefetchers(request, l1, self.l1i_prefetcher, False, level == 2)
        return latency, level >= 3

    def access_data_fast(self, request: MemoryRequest) -> int:
        """Demand data access without result-object construction.

        Returns the access latency; state updates match :meth:`access_data`.
        """
        stats = self.stats
        stats.data_accesses += 1
        l1 = self.l1d
        # Inlined L1-D demand hit (mirrors SetAssociativeCache.access for a
        # demand data access).
        time = l1._time + 1
        l1._time = time
        address = request.address
        set_index = (address // l1.line_size) % l1.num_sets
        way = l1._tag_maps[set_index].get(address // l1._tag_divisor)
        if way is not None:
            l1.stats.data_hits += 1
            block = l1._sets[set_index][way]
            block.last_access_time = time
            block.access_count += 1
            if request.access_type is AccessType.DATA_STORE:
                block.dirty = True
            l1.policy.on_hit(set_index, way, request)
            latency = self.config.l1d.latency
            stats.total_latency += latency
            targets = self.l1d_prefetcher.observe(request, True)
            if targets:
                self._issue_targets(request, l1, targets)
            targets = self.l2_prefetcher.observe(request, False)
            if targets:
                self._issue_targets(request, l1, targets)
            return latency
        l1.stats.data_misses += 1
        latency, level = self._walk_below_l1(request, l1, None)
        self._account(request, latency, level, False, True)
        self._run_prefetchers(request, l1, self.l1d_prefetcher, False, level == 2)
        return latency

    # -------------------------------------------------------------- internals
    def _access(
        self,
        request: MemoryRequest,
        l1: SetAssociativeCache,
        l1_prefetcher: Prefetcher,
        allow_prefetch: bool = True,
    ) -> AccessResult:
        demand = not request.is_prefetch
        if demand:
            if request.access_type is AccessType.INSTRUCTION_FETCH:
                self.stats.instruction_fetches += 1
            else:
                self.stats.data_accesses += 1

        if l1.access(request):
            latency = self._l1_latency(request)
            result = AccessResult(
                request=request,
                hit_level=HitLevel.L1,
                latency=latency,
                l1_hit=True,
            )
            self._account(request, latency, 1, True, demand)
        else:
            evicted: list[int] = []
            latency, level = self._walk_below_l1(request, l1, evicted)
            result = AccessResult(
                request=request,
                hit_level=HitLevel(level),
                latency=latency,
                l2_hit=level == 2,
                slc_hit=level == 3,
                evicted_lines=tuple(evicted),
            )
            self._account(request, latency, level, False, demand)

        if allow_prefetch and demand:
            self._run_prefetchers(
                request, l1, l1_prefetcher, result.l1_hit, result.l2_hit
            )
        return result

    def _account(
        self,
        request: MemoryRequest,
        latency: int,
        level: int,
        l1_hit: bool,
        demand: bool,
    ) -> None:
        """Update hierarchy counters for an access serviced at ``level``.

        ``level`` is the integer value of the servicing :class:`HitLevel`
        (1=L1 … 4=DRAM); an L2 miss therefore is ``level >= 3``.
        """
        stats = self.stats
        is_instruction = request.access_type is AccessType.INSTRUCTION_FETCH
        l2_miss = level >= 3
        # Instruction-side L2 misses are counted for demand fetches *and* for
        # FDIP instruction prefetches: with a decoupled frontend the run-ahead
        # prefetcher issues the demand stream early, so its misses are the
        # instruction misses the program pays for (the later demand fetch then
        # hits the L1-I).  Data prefetches stay excluded from MPKI.
        if l2_miss and is_instruction:
            stats.l2_inst_misses += 1

        if demand:
            stats.total_latency += latency
            if not l1_hit:
                if is_instruction:
                    stats.l1i_misses += 1
                else:
                    stats.l1d_misses += 1
            if l2_miss and not is_instruction:
                stats.l2_data_misses += 1
            if level == 4:
                # Serviced by DRAM: missed the SLC as well as the L2.
                stats.slc_misses += 1
                stats.dram_accesses += 1

    def _walk_below_l1(
        self,
        request: MemoryRequest,
        l1: SetAssociativeCache,
        evicted: Optional[list[int]],
    ) -> tuple[int, int]:
        """Continue the walk after an L1 miss has already been recorded.

        Returns ``(latency, level)`` with ``level`` the integer
        :class:`HitLevel` that serviced the access.  ``evicted`` collects the
        addresses of lines evicted by the fills when a list is supplied (the
        compat path exposes them through ``AccessResult.evicted_lines``; the
        fast paths pass ``None``).
        """
        cfg = self.config
        latency = self._l1_latency(request)

        # L2 lookup (the level whose replacement policy is under evaluation).
        l2_hit = self.l2.access(request)
        if self.l2_access_observer is not None and not request.is_prefetch:
            self.l2_access_observer(request, l2_hit)
        latency += cfg.l2.latency
        if l2_hit:
            self._fill(l1, request, evicted)
            return latency, 2

        # SLC lookup.
        if self.slc.access(request):
            latency += cfg.slc.latency
            if cfg.slc_exclusive:
                self.slc.invalidate(request.address)
            self._fill_l2(request, evicted)
            self._fill(l1, request, evicted)
            return latency, 3

        # DRAM.
        latency += cfg.slc.latency + cfg.dram_latency
        self._fill_l2(request, evicted)
        if not cfg.slc_exclusive:
            self.slc.fill_raw(request)
        self._fill(l1, request, evicted)
        return latency, 4

    def _l1_latency(self, request: MemoryRequest) -> int:
        if request.access_type is AccessType.INSTRUCTION_FETCH:
            return self.config.l1i.latency
        return self.config.l1d.latency

    def _fill(
        self,
        cache: SetAssociativeCache,
        request: MemoryRequest,
        evicted: Optional[list[int]],
    ) -> None:
        victim = cache.fill_raw(request)
        if victim is not None and evicted is not None:
            evicted.append(victim[0])

    def _fill_l2(self, request: MemoryRequest, evicted: Optional[list[int]]) -> None:
        victim = self.l2.fill_raw(request)
        if victim is None:
            return
        address, is_instruction, pc = victim
        if evicted is not None:
            evicted.append(address)
        if self.config.l2_inclusive:
            # Back-invalidate the victim from the private L1s.
            self.l1i.invalidate(address)
            self.l1d.invalidate(address)
        if self.config.slc_exclusive:
            # Exclusive SLC acts as a victim cache for L2 evictions.
            self.slc.fill_raw(
                MemoryRequest(
                    address=address,
                    access_type=(
                        AccessType.INSTRUCTION_FETCH
                        if is_instruction
                        else AccessType.DATA_LOAD
                    ),
                    pc=pc,
                    is_prefetch=True,
                )
            )

    def _run_prefetchers(
        self,
        request: MemoryRequest,
        l1: SetAssociativeCache,
        l1_prefetcher: Prefetcher,
        l1_hit: bool,
        l2_hit: bool,
    ) -> None:
        targets = l1_prefetcher.observe(request, l1_hit)
        if targets:
            self._issue_targets(request, l1, targets)
        targets = self.l2_prefetcher.observe(request, l2_hit)
        if targets:
            self._issue_targets(request, l1, targets)

    def _issue_targets(self, request, l1: SetAssociativeCache, targets) -> None:
        """Issue prefetches for ``targets`` derived from a demand ``request``.

        The prefetch requests travel as one reused
        :class:`~repro.common.request.ScratchRequest` — every consumer on the
        prefetch walk (cache stats, fills, replacement hooks) only reads field
        values, so a mutable request carrying the same values is
        indistinguishable from a fresh frozen one.
        """
        scratch = self._prefetch_scratch
        scratch.access_type = request.access_type
        scratch.pc = request.pc
        scratch.temperature = request.temperature
        scratch.starvation_hint = request.starvation_hint
        stats = self.stats
        for address in targets:
            stats.prefetches_issued += 1
            scratch.address = address
            self._issue_prefetch(scratch, l1)

    def _issue_prefetch(self, request: MemoryRequest, l1: SetAssociativeCache) -> None:
        """Walk a prefetch through the hierarchy without building a result.

        Equivalent to ``_access(request, ..., allow_prefetch=False)`` for a
        prefetch request: no demand counters, no nested prefetching, only the
        instruction-prefetch L2-miss accounting.
        """
        if l1.access(request):
            # A prefetch L1 hit updates no hierarchy counters.
            return
        latency, level = self._walk_below_l1(request, l1, None)
        if level >= 3 and request.access_type is AccessType.INSTRUCTION_FETCH:
            self.stats.l2_inst_misses += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheHierarchy(l1i={self.l1i.size_bytes}, l1d={self.l1d.size_bytes}, "
            f"l2={self.l2.size_bytes}/{self.l2.policy.name}, slc={self.slc.size_bytes})"
        )
