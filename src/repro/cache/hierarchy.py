"""Cache hierarchy model: L1-I, L1-D, unified L2, SLC and DRAM.

The structure matches Table 1 of the paper: private L1 instruction and data
caches, a shared unified L2 (inclusive of the L1s) where the evaluated
replacement policies are applied, a shared unified SLC (exclusive,
victim-filled from L2 evictions) and a fixed-latency DRAM backend.  Each level
can host a stride/next-line prefetcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.block import CacheBlock
from repro.cache.cache import SetAssociativeCache
from repro.cache.prefetch import Prefetcher, make_prefetcher
from repro.cache.replacement.factory import create_policy
from repro.cache.stats import HierarchyStats
from repro.common.addressing import CACHE_LINE_SIZE
from repro.common.errors import ConfigurationError
from repro.common.request import AccessResult, AccessType, HitLevel, MemoryRequest


@dataclass
class CacheLevelConfig:
    """Configuration of one cache level."""

    size_bytes: int
    associativity: int
    latency: int
    policy: str = "lru"
    policy_kwargs: dict = field(default_factory=dict)
    prefetcher: str = "none"
    prefetcher_kwargs: dict = field(default_factory=dict)

    def validate(self, name: str) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"{name}: size must be positive")
        if self.associativity <= 0:
            raise ConfigurationError(f"{name}: associativity must be positive")
        if self.latency < 0:
            raise ConfigurationError(f"{name}: latency must be non-negative")


@dataclass
class HierarchyConfig:
    """Configuration of the whole cache hierarchy (Table 1 shape)."""

    l1i: CacheLevelConfig
    l1d: CacheLevelConfig
    l2: CacheLevelConfig
    slc: CacheLevelConfig
    dram_latency: int = 400
    line_size: int = CACHE_LINE_SIZE
    l2_inclusive: bool = True
    slc_exclusive: bool = True

    def validate(self) -> None:
        for name in ("l1i", "l1d", "l2", "slc"):
            getattr(self, name).validate(name)
        if self.dram_latency < 0:
            raise ConfigurationError("dram_latency must be non-negative")
        if self.line_size <= 0:
            raise ConfigurationError("line_size must be positive")


def _build_cache(name: str, cfg: CacheLevelConfig, line_size: int) -> SetAssociativeCache:
    num_sets = cfg.size_bytes // (cfg.associativity * line_size)
    policy = create_policy(cfg.policy, num_sets, cfg.associativity, **cfg.policy_kwargs)
    return SetAssociativeCache(
        name=name,
        size_bytes=cfg.size_bytes,
        associativity=cfg.associativity,
        policy=policy,
        line_size=line_size,
    )


class CacheHierarchy:
    """Drives memory requests through the modelled cache hierarchy."""

    def __init__(self, config: HierarchyConfig) -> None:
        config.validate()
        self.config = config
        line = config.line_size
        self.l1i = _build_cache("L1I", config.l1i, line)
        self.l1d = _build_cache("L1D", config.l1d, line)
        self.l2 = _build_cache("L2", config.l2, line)
        self.slc = _build_cache("SLC", config.slc, line)
        self.l1i_prefetcher: Prefetcher = make_prefetcher(
            config.l1i.prefetcher, **config.l1i.prefetcher_kwargs
        )
        self.l1d_prefetcher: Prefetcher = make_prefetcher(
            config.l1d.prefetcher, **config.l1d.prefetcher_kwargs
        )
        self.l2_prefetcher: Prefetcher = make_prefetcher(
            config.l2.prefetcher, **config.l2.prefetcher_kwargs
        )
        self.stats = HierarchyStats()
        #: Optional hook invoked as ``observer(request, hit)`` for every
        #: *demand* access that reaches the L2 (i.e. every L1 miss).  Used by
        #: the reuse-distance analysis (Figure 3) without perturbing timing.
        self.l2_access_observer = None

    # ----------------------------------------------------------- public API
    def access_instruction(self, request: MemoryRequest) -> AccessResult:
        """Service an instruction fetch (or instruction prefetch)."""
        if not request.is_instruction:
            raise ValueError("access_instruction requires an instruction request")
        return self._access(request, self.l1i, self.l1i_prefetcher)

    def access_data(self, request: MemoryRequest) -> AccessResult:
        """Service a data load/store (or data prefetch)."""
        if request.is_instruction:
            raise ValueError("access_data requires a data request")
        return self._access(request, self.l1d, self.l1d_prefetcher)

    def access(self, request: MemoryRequest) -> AccessResult:
        """Dispatch a request to the instruction or data path."""
        if request.is_instruction:
            return self.access_instruction(request)
        return self.access_data(request)

    def reset(self) -> None:
        for cache in (self.l1i, self.l1d, self.l2, self.slc):
            cache.reset()
        for prefetcher in (self.l1i_prefetcher, self.l1d_prefetcher, self.l2_prefetcher):
            prefetcher.reset()
        self.stats.reset()

    def reset_stats(self) -> None:
        """Clear statistics while keeping cache contents and policy state.

        Used after the warm-up (fast-forward) phase so that only the measured
        window contributes to MPKI and latency counters.
        """
        for cache in (self.l1i, self.l1d, self.l2, self.slc):
            cache.stats.reset()
        self.stats.reset()

    # -------------------------------------------------------------- internals
    def _access(
        self,
        request: MemoryRequest,
        l1: SetAssociativeCache,
        l1_prefetcher: Prefetcher,
        allow_prefetch: bool = True,
    ) -> AccessResult:
        demand = not request.is_prefetch
        if demand:
            if request.is_instruction:
                self.stats.instruction_fetches += 1
            else:
                self.stats.data_accesses += 1

        result = self._walk_hierarchy(request, l1)

        # Instruction-side L2 misses are counted for demand fetches *and* for
        # FDIP instruction prefetches: with a decoupled frontend the run-ahead
        # prefetcher issues the demand stream early, so its misses are the
        # instruction misses the program pays for (the later demand fetch then
        # hits the L1-I).  Data prefetches stay excluded from MPKI.
        if result.l2_miss and request.is_instruction:
            self.stats.l2_inst_misses += 1

        if demand:
            self.stats.total_latency += result.latency
            if not result.l1_hit:
                if request.is_instruction:
                    self.stats.l1i_misses += 1
                else:
                    self.stats.l1d_misses += 1
            if result.l2_miss and not request.is_instruction:
                self.stats.l2_data_misses += 1
            if not result.slc_hit and result.l2_miss:
                self.stats.slc_misses += 1
            if result.dram_access:
                self.stats.dram_accesses += 1

        if allow_prefetch and demand:
            self._run_prefetchers(request, result, l1, l1_prefetcher)
        return result

    def _walk_hierarchy(
        self, request: MemoryRequest, l1: SetAssociativeCache
    ) -> AccessResult:
        cfg = self.config
        evicted: list[int] = []

        # L1 lookup.
        if l1.access(request):
            latency = self._l1_latency(request)
            return AccessResult(
                request=request,
                hit_level=HitLevel.L1,
                latency=latency,
                l1_hit=True,
            )
        latency = self._l1_latency(request)

        # L2 lookup (the level whose replacement policy is under evaluation).
        l2_hit = self.l2.access(request)
        if self.l2_access_observer is not None and not request.is_prefetch:
            self.l2_access_observer(request, l2_hit)
        if l2_hit:
            latency += cfg.l2.latency
            self._fill(l1, request, evicted)
            return AccessResult(
                request=request,
                hit_level=HitLevel.L2,
                latency=latency,
                l2_hit=True,
                evicted_lines=tuple(evicted),
            )
        latency += cfg.l2.latency

        # SLC lookup.
        if self.slc.access(request):
            latency += cfg.slc.latency
            if cfg.slc_exclusive:
                self.slc.invalidate(request.address)
            self._fill_l2(request, evicted)
            self._fill(l1, request, evicted)
            return AccessResult(
                request=request,
                hit_level=HitLevel.SLC,
                latency=latency,
                slc_hit=True,
                evicted_lines=tuple(evicted),
            )
        latency += cfg.slc.latency

        # DRAM.
        latency += cfg.dram_latency
        self._fill_l2(request, evicted)
        if not cfg.slc_exclusive:
            self.slc.fill(request)
        self._fill(l1, request, evicted)
        return AccessResult(
            request=request,
            hit_level=HitLevel.DRAM,
            latency=latency,
            evicted_lines=tuple(evicted),
        )

    def _l1_latency(self, request: MemoryRequest) -> int:
        if request.is_instruction:
            return self.config.l1i.latency
        return self.config.l1d.latency

    def _fill(
        self,
        cache: SetAssociativeCache,
        request: MemoryRequest,
        evicted: list[int],
    ) -> None:
        victim = cache.fill(request)
        if victim is not None:
            evicted.append(victim.address)

    def _fill_l2(self, request: MemoryRequest, evicted: list[int]) -> None:
        victim = self.l2.fill(request)
        if victim is None:
            return
        evicted.append(victim.address)
        if self.config.l2_inclusive:
            # Back-invalidate the victim from the private L1s.
            self.l1i.invalidate(victim.address)
            self.l1d.invalidate(victim.address)
        if self.config.slc_exclusive:
            # Exclusive SLC acts as a victim cache for L2 evictions.
            self.slc.fill(self._victim_request(victim))

    @staticmethod
    def _victim_request(victim: CacheBlock) -> MemoryRequest:
        access_type = (
            AccessType.INSTRUCTION_FETCH
            if victim.is_instruction
            else AccessType.DATA_LOAD
        )
        return MemoryRequest(
            address=victim.address,
            access_type=access_type,
            pc=victim.pc,
            is_prefetch=True,
        )

    def _run_prefetchers(
        self,
        request: MemoryRequest,
        result: AccessResult,
        l1: SetAssociativeCache,
        l1_prefetcher: Prefetcher,
    ) -> None:
        targets: list[int] = []
        targets.extend(l1_prefetcher.observe(request, result.l1_hit))
        targets.extend(self.l2_prefetcher.observe(request, result.l2_hit))
        for address in targets:
            self.stats.prefetches_issued += 1
            prefetch = request.as_prefetch(address)
            self._access(prefetch, l1, l1_prefetcher, allow_prefetch=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheHierarchy(l1i={self.l1i.size_bytes}, l1d={self.l1d.size_bytes}, "
            f"l2={self.l2.size_bytes}/{self.l2.policy.name}, slc={self.slc.size_bytes})"
        )
