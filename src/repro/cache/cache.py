"""Set-associative cache model with pluggable replacement policies.

The cache stores no per-line objects: every tag-array field lives in a flat
column (one entry per ``(set, way)`` slot), mirroring the structure-of-arrays
tag stores of C++ simulators (gem5's tag arrays, ChampSim's per-set integer
state).  See :class:`SetAssociativeCache` for the layout.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.block import CacheBlock
from repro.cache.replacement.base import (
    ReplacementPolicy,
    inherited_feature_is_exact,
    is_request_free_hit,
    is_request_free_insert,
    is_request_free_victim,
)
from repro.cache.stats import CacheStats
from repro.common.addressing import CACHE_LINE_SIZE, is_power_of_two
from repro.common.errors import ConfigurationError
from repro.common.request import AccessType, MemoryRequest
from repro.common.temperature import Temperature

_IFETCH = AccessType.INSTRUCTION_FETCH
_STORE = AccessType.DATA_STORE


class SetAssociativeCache:
    """A single level of set-associative cache.

    The cache only models tags and replacement state — no data payloads — so a
    "hit" answers *would the line be resident*, which is all the paper's
    metrics (MPKI, stall cycles) need.

    The allocation decision (when to fill which level) is made by
    :class:`repro.cache.hierarchy.CacheHierarchy`; this class exposes
    ``access`` (lookup + replacement-state update on hits), ``fill`` (insert a
    line, returning the evicted block if any), ``invalidate`` and ``probe``
    (side-effect free lookup).

    Data layout
    -----------

    All per-line state lives in flat parallel columns indexed by
    ``slot = set_index * associativity + way``:

    * ``_lines`` — the resident line's global *line number*
      (``address >> _line_shift``), which encodes both tag and set index
      (``tag = line >> _set_bits``, ``set = line & _set_mask``,
      ``address = line << _line_shift``);
    * ``_valid`` — a valid-bit vector (``bytearray``, for the C-speed
      invalid-way scan); ``_dirty`` / ``_instr`` — 0/1 flag columns;
    * ``_temps`` / ``_pcs`` — temperature and fill-PC metadata consumed by
      victim fills and the TRRIP analysis.

    Residency is answered by one dict per cache, ``_line_map``, mapping the
    resident line number to its way — a single hash probe per lookup with no
    per-level shift/mask work, kept consistent by ``fill`` / ``invalidate`` /
    ``reset``.  Address geometry is precomputed shift/mask state, and the
    ``*_line`` entry points accept an already-computed line number so one
    shift per request is shared by every level of the hierarchy walk.

    The historical object-per-line view remains available through
    :meth:`blocks_in_set`, which materialises :class:`CacheBlock` snapshots
    from the columns for tests and analysis code.  The flat cache does not
    maintain the seed engine's per-line timestamps (``insertion_time``,
    ``last_access_time``, ``access_count``) — nothing behavioural ever read
    them, and dropping the bookkeeping removes three column writes from the
    hottest paths; snapshots report them as zero.
    """

    __slots__ = (
        "name",
        "size_bytes",
        "associativity",
        "line_size",
        "num_sets",
        "policy",
        "stats",
        "_lines",
        "_valid",
        "_dirty",
        "_instr",
        "_pcs",
        "_temps",
        "_columns",
        "_line_map",
        "_valid_counts",
        "_line_shift",
        "_set_mask",
        "_set_bits",
        "_tag_divisor",
        "_time",
        "_policy_touch",
        "_policy_victim",
        "_policy_insert",
        "_policy_replace",
        "_touch_kind",
        "_touch_rows",
        "_touch_arg",
        "_replace_kind",
        "_replace_rows",
        "_replace_a",
        "_replace_b",
        "_evict_rows",
        "_evict_arg",
        "_fill",
        "_fill_scalars",
    )

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        policy: ReplacementPolicy,
        line_size: int = CACHE_LINE_SIZE,
    ) -> None:
        if size_bytes <= 0 or associativity <= 0 or line_size <= 0:
            raise ConfigurationError(
                f"{name}: size, associativity and line size must be positive"
            )
        if not is_power_of_two(line_size):
            raise ConfigurationError(
                f"{name}: line size must be a power of two, got {line_size}"
            )
        if size_bytes % (associativity * line_size) != 0:
            raise ConfigurationError(
                f"{name}: size {size_bytes} is not divisible by "
                f"associativity*line_size = {associativity * line_size}"
            )
        num_sets = size_bytes // (associativity * line_size)
        if not is_power_of_two(num_sets):
            raise ConfigurationError(
                f"{name}: number of sets must be a power of two, got {num_sets}"
            )
        if policy.num_sets != num_sets or policy.num_ways != associativity:
            raise ConfigurationError(
                f"{name}: policy geometry {policy.num_sets}x{policy.num_ways} does "
                f"not match cache geometry {num_sets}x{associativity}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.num_sets = num_sets
        self.policy = policy
        self.stats = CacheStats()
        slots = num_sets * associativity
        #: Plain lists rather than ``array``/``bytearray``: CPython list
        #: indexing is measurably cheaper than buffer-backed indexing on the
        #: fill/touch hot paths, which dominates the occasional ndarray
        #: snapshot the vector kernel takes per window (``tag_arrays``).
        self._lines: list[int] = [0] * slots
        self._valid = bytearray(slots)
        self._dirty: list[int] = [0] * slots
        self._instr: list[int] = [0] * slots
        self._pcs: list[int] = [0] * slots
        self._temps: list[Temperature] = [Temperature.NONE] * slots
        #: The metadata columns bundled for one-attribute-load unpacking on
        #: the fill hot path (identity-stable: reset() clears in place).
        self._columns = (
            self._lines,
            self._dirty,
            self._instr,
            self._temps,
            self._pcs,
        )
        #: ``resident line number -> way`` over the whole cache: the single
        #: authoritative residency index.
        self._line_map: dict[int, int] = {}
        #: Number of valid slots per set (skips the invalid-way scan once a
        #: set is full, which is the steady state after warm-up).
        self._valid_counts: list[int] = [0] * num_sets
        #: Precomputed address geometry (shift/mask; both powers of two).
        self._line_shift = line_size.bit_length() - 1
        self._set_mask = num_sets - 1
        self._set_bits = num_sets.bit_length() - 1
        #: Divisor that turns a byte address into a tag (kept for analysis
        #: code and the seed baseline, which still use the divide form).
        self._tag_divisor = line_size * num_sets
        self._time = 0
        self._bind_policy_hooks()

    def _bind_policy_hooks(self) -> None:
        """Pre-bind the array-state protocol where the policy allows it.

        Request-free policies (see :mod:`repro.cache.replacement.base`) are
        entered through ``touch``/``victim``/``replace`` directly — or, when
        the policy declares its hit update as data, with no call at all;
        ``None`` means the request-aware hook must be used.
        """
        policy = self.policy
        request_free_hit = is_request_free_hit(policy)
        self._policy_touch = policy.touch if request_free_hit else None
        self._policy_victim = (
            policy.victim if is_request_free_victim(policy) else None
        )
        self._policy_insert = (
            policy.touch if is_request_free_insert(policy) else None
        )
        #: Fused victim+evict+insert, when the policy offers one (see
        #: ``ReplacementPolicy.replace``); one hook call per eviction-fill
        #: instead of three.  Every fused/declarative feature is trusted only
        #: when the concrete policy class leaves the hooks it summarises
        #: untouched (``inherited_feature_is_exact``) — a subclass overriding
        #: e.g. ``select_victim`` falls back to the plain hook sequence.
        self._policy_replace = (
            policy.replace
            if policy.replace is not None
            and inherited_feature_is_exact(policy, "replace")
            else None
        )
        #: Declarative hit update (see ``ReplacementPolicy.hit_update_spec``):
        #: kind 0 = call ``touch``/``on_hit``, 1 = ``rows[set][way] = arg``,
        #: 2 = ``arg[0] += 1; rows[set][way] = arg[0]``, 3 = no-op.  Kinds
        #: 1-3 let every hit site write the policy array inline, with zero
        #: Python calls.
        spec = (
            policy.hit_update_spec()
            if request_free_hit
            and inherited_feature_is_exact(policy, "hit_update_spec")
            else None
        )
        if spec is None:
            self._touch_kind = 0
            self._touch_rows = None
            self._touch_arg = None
        elif spec[0] == "const":
            self._touch_kind = 1
            self._touch_rows = spec[1]
            self._touch_arg = spec[2]
        elif spec[0] == "clock":
            self._touch_kind = 2
            self._touch_rows = spec[1]
            self._touch_arg = spec[2]
        elif spec[0] == "noop":
            self._touch_kind = 3
            self._touch_rows = None
            self._touch_arg = None
        else:  # pragma: no cover - defensive
            raise ConfigurationError(
                f"{self.name}: unknown hit_update_spec {spec!r}"
            )
        #: Declarative fused replacement (see
        #: ``ReplacementPolicy.replace_spec``): kind 0 = call ``replace``/
        #: ``victim``/``select_victim``, 1 = LRU clock restamp, 2 = static
        #: RRIP aging.  Kinds 1-2 run the whole eviction+insertion policy
        #: update inline in the fill closure, with zero Python calls.
        rspec = (
            policy.replace_spec()
            if inherited_feature_is_exact(policy, "replace_spec")
            else None
        )
        if rspec is None:
            self._replace_kind = 0
            self._replace_rows = None
            self._replace_a = None
            self._replace_b = None
        elif rspec[0] == "lru":
            self._replace_kind = 1
            self._replace_rows = rspec[1]
            self._replace_a = rspec[2]
            self._replace_b = None
        elif rspec[0] == "rrip":
            self._replace_kind = 2
            self._replace_rows = rspec[1]
            self._replace_a = rspec[2]
            self._replace_b = rspec[3]
        else:  # pragma: no cover - defensive
            raise ConfigurationError(
                f"{self.name}: unknown replace_spec {rspec!r}"
            )
        #: Declarative eviction update (``rows[set][way] = value``), or None.
        espec = (
            policy.evict_update_spec()
            if inherited_feature_is_exact(policy, "evict_update_spec")
            else None
        )
        if espec is None:
            self._evict_rows = None
            self._evict_arg = None
        elif espec[0] == "const":
            self._evict_rows = espec[1]
            self._evict_arg = espec[2]
        else:  # pragma: no cover - defensive
            raise ConfigurationError(
                f"{self.name}: unknown evict_update_spec {espec!r}"
            )
        #: The fill hot path as closures over the cache's stable state (all
        #: captured objects keep their identity across reset(), which clears
        #: them in place).  Closure-variable loads replace the ~15 attribute
        #: loads a method body would pay per fill; ``_fill_scalars`` is the
        #: core taking pre-extracted request fields (the walk's form), and
        #: ``_fill`` the request-object wrapper.
        self._fill, self._fill_scalars = self._make_fill()

    # -------------------------------------------------------------- indexing
    def set_index_of(self, address: int) -> int:
        """Set index for a byte address."""
        return (address >> self._line_shift) & self._set_mask

    def tag_of(self, address: int) -> int:
        """Tag for a byte address."""
        return address >> (self._line_shift + self._set_bits)

    def blocks_in_set(self, set_index: int) -> list[CacheBlock]:
        """Snapshot of one set as :class:`CacheBlock` views.

        The blocks are materialised from the flat columns on demand (for
        analysis and tests); mutating them does not write back to the cache.
        """
        base = set_index * self.associativity
        set_bits = self._set_bits
        line_shift = self._line_shift
        blocks = []
        for slot in range(base, base + self.associativity):
            if self._valid[slot]:
                line = self._lines[slot]
                blocks.append(
                    CacheBlock(
                        tag=line >> set_bits,
                        address=line << line_shift,
                        valid=True,
                        dirty=bool(self._dirty[slot]),
                        is_instruction=bool(self._instr[slot]),
                        temperature=self._temps[slot],
                        pc=self._pcs[slot],
                    )
                )
            else:
                blocks.append(CacheBlock())
        return blocks

    def tag_map_of(self, set_index: int) -> dict[int, int]:
        """The ``tag -> way`` view of one set (exposed for invariant tests)."""
        set_bits = self._set_bits
        mask = self._set_mask
        return {
            line >> set_bits: way
            for line, way in self._line_map.items()
            if line & mask == set_index
        }

    def tag_arrays(self):
        """NumPy copies of the tag columns at this instant, ``(lines, valid)``.

        ``lines`` is an int64 snapshot of the resident-line column and
        ``valid`` a uint8 snapshot of the valid bits, both indexed by
        ``slot = set_index * associativity + way``.  The vector kernel takes
        one snapshot per cache per replay window for batched tag matching
        (gather + compare across all ways of the addressed sets); the copy of
        a few thousand slots is noise next to the window's probe work.

        NumPy is imported lazily: the scalar engine never needs it.
        """
        import numpy

        return (
            numpy.array(self._lines, dtype=numpy.int64),
            numpy.frombuffer(self._valid, dtype=numpy.uint8),
        )

    # -------------------------------------------------------------- lookups
    def probe(self, address: int) -> Optional[int]:
        """Return the way holding ``address`` without touching any state."""
        return self._line_map.get(address >> self._line_shift)

    def contains(self, address: int) -> bool:
        """Whether the line containing ``address`` is resident."""
        return (address >> self._line_shift) in self._line_map

    # -------------------------------------------------------------- accesses
    def access(self, request: MemoryRequest) -> bool:
        """Look up a request; update stats and replacement state on a hit.

        Returns ``True`` on a hit.  Misses do **not** allocate — the hierarchy
        decides where fills go.
        """
        return self.access_line(request, request.address >> self._line_shift)

    def access_line(self, request: MemoryRequest, line_no: int) -> bool:
        """Like :meth:`access` with the request's line number precomputed.

        The hierarchy walk computes ``address >> _line_shift`` once per
        request and shares it with every level (all levels have the same line
        size by construction).
        """
        way = self._line_map.get(line_no)
        stats = self.stats
        access_type = request.access_type
        if way is not None:
            if request.is_prefetch:
                stats.prefetch_hits += 1
            elif access_type is _IFETCH:
                stats.inst_hits += 1
            else:
                stats.data_hits += 1
            set_index = line_no & self._set_mask
            if access_type is _STORE:
                self._dirty[set_index * self.associativity + way] = 1
            kind = self._touch_kind
            if kind == 2:
                cell = self._touch_arg
                clock = cell[0] + 1
                cell[0] = clock
                self._touch_rows[set_index][way] = clock
            elif kind == 1:
                self._touch_rows[set_index][way] = self._touch_arg
            elif kind == 0:
                touch = self._policy_touch
                if touch is not None:
                    touch(set_index, way)
                else:
                    self.policy.on_hit(set_index, way, request)
            return True
        if request.is_prefetch:
            stats.prefetch_misses += 1
        elif access_type is _IFETCH:
            stats.inst_misses += 1
        else:
            stats.data_misses += 1
        return False

    def fill(self, request: MemoryRequest) -> Optional[CacheBlock]:
        """Insert the line for ``request``; return the evicted block, if any.

        Filling a line that is already resident refreshes its metadata without
        evicting anything (this happens with overlapping prefetches).  The
        refresh keeps the line's dirty bit: a clean refill must not discard a
        pending writeback.
        """
        return self._fill(request, request.address >> self._line_shift, 2)

    def fill_raw(self, request: MemoryRequest) -> Optional[tuple[int, int, int]]:
        """Like :meth:`fill`, but the victim is ``(address, is_instruction,
        pc)`` instead of a copied :class:`CacheBlock`.

        The hierarchy only needs those three victim fields (back-invalidation
        and SLC victim fills); skipping the block-view construction matters on
        eviction-heavy workloads.
        """
        victim = self._fill(request, request.address >> self._line_shift, 1)
        if victim is None:
            return None
        return (victim[0] << self._line_shift, victim[1], victim[2])

    def fill_line(
        self, request: MemoryRequest, line_no: int
    ) -> Optional[tuple[int, int, int]]:
        """Raw fill with the request's line number precomputed.

        The victim triple is ``(line number, is_instruction, pc)`` — the
        line-number form every internal consumer wants (back-invalidation and
        victim fills key on line numbers; an address is one shift away).
        """
        return self._fill(request, line_no, 1)

    def _make_fill(self):
        """Build the fill hot path as a closure over stable cache state.

        The fill is the single hottest function on memory-bound replays
        (every miss fills 2-4 levels), so it runs as one flat body whose
        state — columns, residency map, stats, pre-bound policy hooks — is
        captured in closure cells instead of being re-fetched through
        ``self`` on every call.  Signature of the returned callable:
        ``fill(request, line_no, victim_mode, check_existing=True)``.

        * ``victim_mode``: 0 = caller discards the victim, 1 = victim as a
          ``(line number, is_instruction, pc)`` triple, 2 = victim as a
          :class:`CacheBlock`.
        * ``check_existing=False`` is the hierarchy walk's contract: a walk
          only ever fills the line it just *missed* on at every level, so
          the resident-refresh probe is provably a miss and is skipped.
          Every public entry point keeps the probe (overlapping prefetch
          refreshes arrive through ``fill``/``fill_raw``).
        """
        line_map = self._line_map
        set_mask = self._set_mask
        set_bits = self._set_bits
        line_shift = self._line_shift
        ways = self.associativity
        lines, dirty, instr, temps, pcs = self._columns
        valid = self._valid
        valid_counts = self._valid_counts
        stats = self.stats
        policy = self.policy
        policy_replace = self._policy_replace
        policy_victim = self._policy_victim
        policy_insert = self._policy_insert
        policy_select = policy.select_victim
        policy_evict = policy.on_evict
        policy_on_insert = policy.on_insert
        replace_kind = self._replace_kind
        replace_rows = self._replace_rows
        replace_a = self._replace_a
        replace_b = self._replace_b
        evict_rows = self._evict_rows
        evict_arg = self._evict_arg
        way_range = range(ways)

        def fill_scalars(
            line_no: int,
            victim_mode: int,
            check_existing: bool,
            dirty_new: int,
            instr_new: int,
            temperature,
            pc: int,
            is_prefetch: bool,
            request,
        ):
            # Core fill body over scalar request fields: the hierarchy walk
            # extracts them once per miss and reuses them for every level's
            # fill.  ``request`` is only consulted by non-declarative policy
            # hooks.
            set_index = line_no & set_mask
            base = set_index * ways

            if check_existing:
                existing = line_map.get(line_no)
                if existing is not None:
                    # Refresh in place; the slot keeps a pending writeback.
                    slot = base + existing
                    if not dirty[slot]:
                        dirty[slot] = dirty_new
                    instr[slot] = instr_new
                    temps[slot] = temperature
                    pcs[slot] = pc
                    return None

            victim = None
            hooked = False
            if valid_counts[set_index] < ways:
                # An invalid slot exists; bytearray.find scans at C speed.
                way = valid.find(0, base, base + ways) - base
                slot = base + way
                valid[slot] = 1
                valid_counts[set_index] += 1
            else:
                if replace_kind == 1:
                    # Declarative fused LRU replace: evict min stamp, restamp
                    # MRU from the policy clock — no Python call at all.
                    stamps = replace_rows[set_index]
                    way = stamps.index(min(stamps))
                    clock = replace_a[0] + 1
                    replace_a[0] = clock
                    stamps[way] = clock
                    hooked = True
                elif replace_kind == 2:
                    # Declarative fused static-RRIP replace: collapse the
                    # aging loop, evict the first Distant way, insert at the
                    # static prediction (see RRIPBase.victim for why the
                    # delta step is exact).
                    rrpvs = replace_rows[set_index]
                    oldest = max(rrpvs)
                    if oldest < replace_a:
                        delta = replace_a - oldest
                        for w in way_range:
                            rrpvs[w] += delta
                    way = rrpvs.index(replace_a)
                    rrpvs[way] = replace_b
                    hooked = True
                elif policy_replace is not None:
                    # Fused victim+evict+insert hook: the policy state is
                    # fully updated in one call (ReplacementPolicy.replace).
                    way = policy_replace(set_index)
                    hooked = True
                elif policy_victim is not None:
                    way = policy_victim(set_index)
                else:
                    way = policy_select(set_index, request)
                slot = base + way
                # The set is full: the chosen slot is always a valid line.
                if victim_mode:
                    if victim_mode == 1:
                        victim = (lines[slot], instr[slot], pcs[slot])
                    else:
                        line = lines[slot]
                        victim = CacheBlock(
                            tag=line >> set_bits,
                            address=line << line_shift,
                            valid=True,
                            dirty=bool(dirty[slot]),
                            is_instruction=bool(instr[slot]),
                            temperature=temps[slot],
                            pc=pcs[slot],
                        )
                del line_map[lines[slot]]
                stats.evictions += 1
                if dirty[slot]:
                    stats.writebacks += 1
                if not hooked:
                    if evict_rows is not None:
                        evict_rows[set_index][way] = evict_arg
                    else:
                        policy_evict(set_index, way, request)

            lines[slot] = line_no
            dirty[slot] = dirty_new
            instr[slot] = instr_new
            temps[slot] = temperature
            pcs[slot] = pc
            line_map[line_no] = way
            stats.fills += 1
            if is_prefetch:
                stats.prefetch_fills += 1
            if not hooked:
                if policy_insert is not None:
                    policy_insert(set_index, way)
                else:
                    policy_on_insert(set_index, way, request)
            return victim

        def fill(
            request: MemoryRequest,
            line_no: int,
            victim_mode: int,
            check_existing: bool = True,
        ):
            access_type = request.access_type
            return fill_scalars(
                line_no,
                victim_mode,
                check_existing,
                1 if access_type is _STORE else 0,
                1 if access_type is _IFETCH else 0,
                request.temperature,
                request.pc,
                request.is_prefetch,
                request,
            )

        return fill, fill_scalars

    def invalidate(self, address: int) -> bool:
        """Remove the line containing ``address`` (back-invalidation)."""
        return self.invalidate_line(address >> self._line_shift)

    def invalidate_line(self, line_no: int) -> bool:
        """Like :meth:`invalidate` with the line number precomputed."""
        way = self._line_map.pop(line_no, None)
        if way is None:
            return False
        set_index = line_no & self._set_mask
        evict_rows = self._evict_rows
        if evict_rows is not None:
            evict_rows[set_index][way] = self._evict_arg
        else:
            self.policy.on_evict(set_index, way, None)
        self._valid_counts[set_index] -= 1
        # Only the valid bit needs clearing: every other column is dead while
        # the slot is invalid (victim reads and block views guard on valid,
        # and a refill overwrites all of them).
        self._valid[set_index * self.associativity + way] = 0
        self.stats.invalidations += 1
        return True

    def reset(self) -> None:
        """Clear contents, statistics and replacement state.

        Columns are cleared in place: their identity is stable for the whole
        cache lifetime (the fill hot path and the hierarchy rely on that).
        """
        slots = self.num_sets * self.associativity
        self._lines[:] = [0] * slots
        self._valid[:] = bytes(slots)
        self._dirty[:] = [0] * slots
        self._instr[:] = [0] * slots
        self._pcs[:] = [0] * slots
        self._temps[:] = [Temperature.NONE] * slots
        self._line_map.clear()
        for set_index in range(self.num_sets):
            self._valid_counts[set_index] = 0
        self.stats.reset()
        self.policy.reset()
        self._time = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(name={self.name!r}, size={self.size_bytes}, "
            f"ways={self.associativity}, sets={self.num_sets}, "
            f"policy={self.policy.name})"
        )
