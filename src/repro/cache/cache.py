"""Set-associative cache model with pluggable replacement policies."""

from __future__ import annotations

from typing import Optional

from repro.cache.block import CacheBlock
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.common.addressing import CACHE_LINE_SIZE, is_power_of_two
from repro.common.errors import ConfigurationError
from repro.common.request import AccessType, MemoryRequest

_IFETCH = AccessType.INSTRUCTION_FETCH
_STORE = AccessType.DATA_STORE


class SetAssociativeCache:
    """A single level of set-associative cache.

    The cache only models tags and replacement state — no data payloads — so a
    "hit" answers *would the line be resident*, which is all the paper's
    metrics (MPKI, stall cycles) need.

    The allocation decision (when to fill which level) is made by
    :class:`repro.cache.hierarchy.CacheHierarchy`; this class exposes
    ``access`` (lookup + replacement-state update on hits), ``fill`` (insert a
    line, returning the evicted block if any), ``invalidate`` and ``probe``
    (side-effect free lookup).

    Lookups are O(1): each set maintains a ``tag -> way`` dict alongside the
    block array, kept consistent by ``fill``/``invalidate``/``reset``.  The
    dict is authoritative for residency; the block array remains the source of
    per-line metadata (dirty bits, timestamps) that statistics and the
    analysis modules read.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        policy: ReplacementPolicy,
        line_size: int = CACHE_LINE_SIZE,
    ) -> None:
        if size_bytes <= 0 or associativity <= 0 or line_size <= 0:
            raise ConfigurationError(
                f"{name}: size, associativity and line size must be positive"
            )
        if size_bytes % (associativity * line_size) != 0:
            raise ConfigurationError(
                f"{name}: size {size_bytes} is not divisible by "
                f"associativity*line_size = {associativity * line_size}"
            )
        num_sets = size_bytes // (associativity * line_size)
        if not is_power_of_two(num_sets):
            raise ConfigurationError(
                f"{name}: number of sets must be a power of two, got {num_sets}"
            )
        if policy.num_sets != num_sets or policy.num_ways != associativity:
            raise ConfigurationError(
                f"{name}: policy geometry {policy.num_sets}x{policy.num_ways} does "
                f"not match cache geometry {num_sets}x{associativity}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.num_sets = num_sets
        self.policy = policy
        self.stats = CacheStats()
        self._sets: list[list[CacheBlock]] = [
            [CacheBlock() for _ in range(associativity)] for _ in range(num_sets)
        ]
        #: Per-set ``tag -> way`` index over the *valid* blocks of the set.
        self._tag_maps: list[dict[int, int]] = [{} for _ in range(num_sets)]
        #: Number of valid blocks per set (skips the invalid-way scan once a
        #: set is full, which is the steady state after warm-up).
        self._valid_counts: list[int] = [0] * num_sets
        #: Divisor that turns a byte address into a tag.
        self._tag_divisor = line_size * num_sets
        self._time = 0

    # -------------------------------------------------------------- indexing
    def set_index_of(self, address: int) -> int:
        """Set index for a byte address."""
        return (address // self.line_size) % self.num_sets

    def tag_of(self, address: int) -> int:
        """Tag for a byte address."""
        return address // self._tag_divisor

    def blocks_in_set(self, set_index: int) -> list[CacheBlock]:
        """The blocks of one set (exposed for analysis and tests)."""
        return self._sets[set_index]

    def tag_map_of(self, set_index: int) -> dict[int, int]:
        """The ``tag -> way`` index of one set (exposed for invariant tests)."""
        return dict(self._tag_maps[set_index])

    # -------------------------------------------------------------- lookups
    def probe(self, address: int) -> Optional[int]:
        """Return the way holding ``address`` without touching any state."""
        set_index = (address // self.line_size) % self.num_sets
        return self._tag_maps[set_index].get(address // self._tag_divisor)

    def contains(self, address: int) -> bool:
        """Whether the line containing ``address`` is resident."""
        return self.probe(address) is not None

    # -------------------------------------------------------------- accesses
    def access(self, request: MemoryRequest) -> bool:
        """Look up a request; update stats and replacement state on a hit.

        Returns ``True`` on a hit.  Misses do **not** allocate — the hierarchy
        decides where fills go.  (The statistics updates of
        ``_record_access`` are inlined here: this method runs several times
        per simulated instruction.)
        """
        time = self._time + 1
        self._time = time
        address = request.address
        set_index = (address // self.line_size) % self.num_sets
        way = self._tag_maps[set_index].get(address // self._tag_divisor)
        stats = self.stats
        if way is not None:
            if request.is_prefetch:
                stats.prefetch_hits += 1
            elif request.access_type is _IFETCH:
                stats.inst_hits += 1
            else:
                stats.data_hits += 1
            block = self._sets[set_index][way]
            block.last_access_time = time
            block.access_count += 1
            if request.access_type is _STORE:
                block.dirty = True
            self.policy.on_hit(set_index, way, request)
            return True
        if request.is_prefetch:
            stats.prefetch_misses += 1
        elif request.access_type is _IFETCH:
            stats.inst_misses += 1
        else:
            stats.data_misses += 1
        return False

    def fill(self, request: MemoryRequest) -> Optional[CacheBlock]:
        """Insert the line for ``request``; return the evicted block, if any.

        Filling a line that is already resident refreshes its metadata without
        evicting anything (this happens with overlapping prefetches).  The
        refresh keeps the line's dirty bit: a clean refill must not discard a
        pending writeback.
        """
        return self._fill_impl(request, copy_victim=True)

    def fill_raw(self, request: MemoryRequest) -> Optional[tuple[int, bool, int]]:
        """Like :meth:`fill`, but the victim is ``(address, is_instruction,
        pc)`` instead of a copied :class:`CacheBlock`.

        The hierarchy only needs those three victim fields (back-invalidation
        and SLC victim fills); skipping the ten-field block copy matters on
        eviction-heavy workloads.
        """
        return self._fill_impl(request, copy_victim=False)

    def _fill_impl(self, request: MemoryRequest, copy_victim: bool):
        self._time += 1
        address = request.address
        set_index = (address // self.line_size) % self.num_sets
        tag = address // self._tag_divisor
        blocks = self._sets[set_index]
        tag_map = self._tag_maps[set_index]

        existing = tag_map.get(tag)
        if existing is not None:
            block = blocks[existing]
            was_dirty = block.dirty
            self._install(block, request, tag)
            if was_dirty:
                block.dirty = True
            return None

        victim = None
        way: Optional[int] = None
        if self._valid_counts[set_index] < self.associativity:
            way = self._find_invalid_way(set_index)
        if way is None:
            way = self.policy.select_victim(set_index, request)
            block = blocks[way]
            if block.valid:
                victim = (
                    self._copy_block(block)
                    if copy_victim
                    else (block.address, block.is_instruction, block.pc)
                )
                del tag_map[block.tag]
                self._valid_counts[set_index] -= 1
                self.stats.evictions += 1
                if block.dirty:
                    self.stats.writebacks += 1
                self.policy.on_evict(set_index, way, request)

        self._install(blocks[way], request, tag)
        tag_map[tag] = way
        self._valid_counts[set_index] += 1
        self.stats.fills += 1
        if request.is_prefetch:
            self.stats.prefetch_fills += 1
        self.policy.on_insert(set_index, way, request)
        return victim

    def invalidate(self, address: int) -> bool:
        """Remove the line containing ``address`` (back-invalidation)."""
        set_index = (address // self.line_size) % self.num_sets
        tag = address // self._tag_divisor
        tag_map = self._tag_maps[set_index]
        way = tag_map.get(tag)
        if way is None:
            return False
        self.policy.on_evict(set_index, way, None)
        del tag_map[tag]
        self._valid_counts[set_index] -= 1
        self._sets[set_index][way].invalidate()
        self.stats.invalidations += 1
        return True

    def reset(self) -> None:
        """Clear contents, statistics and replacement state."""
        for blocks in self._sets:
            for block in blocks:
                block.invalidate()
        for tag_map in self._tag_maps:
            tag_map.clear()
        for set_index in range(self.num_sets):
            self._valid_counts[set_index] = 0
        self.stats.reset()
        self.policy.reset()
        self._time = 0

    # -------------------------------------------------------------- helpers
    def _find_invalid_way(self, set_index: int) -> Optional[int]:
        for way, block in enumerate(self._sets[set_index]):
            if not block.valid:
                return way
        return None

    def _install(self, block: CacheBlock, request: MemoryRequest, tag: int) -> None:
        address = request.address
        block.tag = tag
        block.address = address - address % self.line_size
        block.valid = True
        block.dirty = request.access_type is _STORE
        block.is_instruction = request.access_type is _IFETCH
        block.temperature = request.temperature
        block.pc = request.pc
        block.insertion_time = self._time
        block.last_access_time = self._time
        block.access_count = 0

    @staticmethod
    def _copy_block(block: CacheBlock) -> CacheBlock:
        return CacheBlock(
            tag=block.tag,
            address=block.address,
            valid=True,
            dirty=block.dirty,
            is_instruction=block.is_instruction,
            temperature=block.temperature,
            pc=block.pc,
            insertion_time=block.insertion_time,
            last_access_time=block.last_access_time,
            access_count=block.access_count,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(name={self.name!r}, size={self.size_bytes}, "
            f"ways={self.associativity}, sets={self.num_sets}, "
            f"policy={self.policy.name})"
        )
