"""Set-associative cache model with pluggable replacement policies."""

from __future__ import annotations

from typing import Optional

from repro.cache.block import CacheBlock
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.common.addressing import CACHE_LINE_SIZE, is_power_of_two, line_address
from repro.common.errors import ConfigurationError
from repro.common.request import MemoryRequest


class SetAssociativeCache:
    """A single level of set-associative cache.

    The cache only models tags and replacement state — no data payloads — so a
    "hit" answers *would the line be resident*, which is all the paper's
    metrics (MPKI, stall cycles) need.

    The allocation decision (when to fill which level) is made by
    :class:`repro.cache.hierarchy.CacheHierarchy`; this class exposes
    ``access`` (lookup + replacement-state update on hits), ``fill`` (insert a
    line, returning the evicted block if any), ``invalidate`` and ``probe``
    (side-effect free lookup).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        policy: ReplacementPolicy,
        line_size: int = CACHE_LINE_SIZE,
    ) -> None:
        if size_bytes <= 0 or associativity <= 0 or line_size <= 0:
            raise ConfigurationError(
                f"{name}: size, associativity and line size must be positive"
            )
        if size_bytes % (associativity * line_size) != 0:
            raise ConfigurationError(
                f"{name}: size {size_bytes} is not divisible by "
                f"associativity*line_size = {associativity * line_size}"
            )
        num_sets = size_bytes // (associativity * line_size)
        if not is_power_of_two(num_sets):
            raise ConfigurationError(
                f"{name}: number of sets must be a power of two, got {num_sets}"
            )
        if policy.num_sets != num_sets or policy.num_ways != associativity:
            raise ConfigurationError(
                f"{name}: policy geometry {policy.num_sets}x{policy.num_ways} does "
                f"not match cache geometry {num_sets}x{associativity}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.num_sets = num_sets
        self.policy = policy
        self.stats = CacheStats()
        self._sets: list[list[CacheBlock]] = [
            [CacheBlock() for _ in range(associativity)] for _ in range(num_sets)
        ]
        self._time = 0

    # -------------------------------------------------------------- indexing
    def set_index_of(self, address: int) -> int:
        """Set index for a byte address."""
        return (address // self.line_size) % self.num_sets

    def tag_of(self, address: int) -> int:
        """Tag for a byte address."""
        return address // (self.line_size * self.num_sets)

    def blocks_in_set(self, set_index: int) -> list[CacheBlock]:
        """The blocks of one set (exposed for analysis and tests)."""
        return self._sets[set_index]

    # -------------------------------------------------------------- lookups
    def probe(self, address: int) -> Optional[int]:
        """Return the way holding ``address`` without touching any state."""
        set_index = self.set_index_of(address)
        tag = self.tag_of(address)
        for way, block in enumerate(self._sets[set_index]):
            if block.valid and block.tag == tag:
                return way
        return None

    def contains(self, address: int) -> bool:
        """Whether the line containing ``address`` is resident."""
        return self.probe(address) is not None

    # -------------------------------------------------------------- accesses
    def access(self, request: MemoryRequest) -> bool:
        """Look up a request; update stats and replacement state on a hit.

        Returns ``True`` on a hit.  Misses do **not** allocate — the hierarchy
        decides where fills go.
        """
        self._time += 1
        set_index = self.set_index_of(request.address)
        way = self.probe(request.address)
        hit = way is not None
        self._record_access(request, hit)
        if hit:
            block = self._sets[set_index][way]
            block.last_access_time = self._time
            block.access_count += 1
            if request.is_write:
                block.dirty = True
            self.policy.on_hit(set_index, way, request)
        return hit

    def fill(self, request: MemoryRequest) -> Optional[CacheBlock]:
        """Insert the line for ``request``; return the evicted block, if any.

        Filling a line that is already resident refreshes its metadata without
        evicting anything (this happens with overlapping prefetches).
        """
        self._time += 1
        set_index = self.set_index_of(request.address)
        tag = self.tag_of(request.address)
        blocks = self._sets[set_index]

        existing = self.probe(request.address)
        if existing is not None:
            self._install(blocks[existing], request, tag)
            return None

        victim_block: Optional[CacheBlock] = None
        way = self._find_invalid_way(set_index)
        if way is None:
            way = self.policy.select_victim(set_index, request)
            block = blocks[way]
            if block.valid:
                victim_block = self._copy_block(block)
                self.stats.evictions += 1
                if block.dirty:
                    self.stats.writebacks += 1
                self.policy.on_evict(set_index, way, request)

        self._install(blocks[way], request, tag)
        self.stats.fills += 1
        if request.is_prefetch:
            self.stats.prefetch_fills += 1
        self.policy.on_insert(set_index, way, request)
        return victim_block

    def invalidate(self, address: int) -> bool:
        """Remove the line containing ``address`` (back-invalidation)."""
        set_index = self.set_index_of(address)
        way = self.probe(address)
        if way is None:
            return False
        self.policy.on_evict(set_index, way, None)
        self._sets[set_index][way].invalidate()
        self.stats.invalidations += 1
        return True

    def reset(self) -> None:
        """Clear contents, statistics and replacement state."""
        for blocks in self._sets:
            for block in blocks:
                block.invalidate()
        self.stats.reset()
        self.policy.reset()
        self._time = 0

    # -------------------------------------------------------------- helpers
    def _find_invalid_way(self, set_index: int) -> Optional[int]:
        for way, block in enumerate(self._sets[set_index]):
            if not block.valid:
                return way
        return None

    def _install(self, block: CacheBlock, request: MemoryRequest, tag: int) -> None:
        block.tag = tag
        block.address = line_address(request.address, self.line_size)
        block.valid = True
        block.dirty = request.is_write
        block.is_instruction = request.is_instruction
        block.temperature = request.temperature
        block.pc = request.pc
        block.insertion_time = self._time
        block.last_access_time = self._time
        block.access_count = 0

    @staticmethod
    def _copy_block(block: CacheBlock) -> CacheBlock:
        return CacheBlock(
            tag=block.tag,
            address=block.address,
            valid=True,
            dirty=block.dirty,
            is_instruction=block.is_instruction,
            temperature=block.temperature,
            pc=block.pc,
            insertion_time=block.insertion_time,
            last_access_time=block.last_access_time,
            access_count=block.access_count,
        )

    def _record_access(self, request: MemoryRequest, hit: bool) -> None:
        stats = self.stats
        if request.is_prefetch:
            stats.prefetch_accesses += 1
            if hit:
                stats.prefetch_hits += 1
            else:
                stats.prefetch_misses += 1
            return
        stats.demand_accesses += 1
        if hit:
            stats.demand_hits += 1
        else:
            stats.demand_misses += 1
        if request.is_instruction:
            stats.inst_accesses += 1
            if hit:
                stats.inst_hits += 1
            else:
                stats.inst_misses += 1
        else:
            stats.data_accesses += 1
            if hit:
                stats.data_hits += 1
            else:
                stats.data_misses += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(name={self.name!r}, size={self.size_bytes}, "
            f"ways={self.associativity}, sets={self.num_sets}, "
            f"policy={self.policy.name})"
        )
