"""Set-dueling infrastructure shared by DRRIP and CLIP.

Set dueling [Qureshi et al., ISCA 2007] dedicates a small number of *leader*
sets to each of two competing policies and lets the remaining *follower* sets
adopt whichever leader group currently misses less, as tracked by a saturating
PSEL counter.  The paper's configuration (Section 4.3) uses 32 leader sets per
policy and a 10-bit PSEL counter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Constituency(enum.Enum):
    """Which dueling group a cache set belongs to."""

    LEADER_A = "leader_a"
    LEADER_B = "leader_b"
    FOLLOWER = "follower"


@dataclass
class SaturatingCounter:
    """An n-bit saturating counter (the PSEL register)."""

    bits: int
    value: int = 0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"counter width must be >= 1, got {self.bits}")
        self.max_value = (1 << self.bits) - 1
        self.midpoint = 1 << (self.bits - 1)
        if not 0 <= self.value <= self.max_value:
            raise ValueError(f"initial value {self.value} out of range")

    def increment(self) -> None:
        self.value = min(self.value + 1, self.max_value)

    def decrement(self) -> None:
        self.value = max(self.value - 1, 0)

    @property
    def favors_a(self) -> bool:
        """True when the counter indicates policy A misses less."""
        return self.value < self.midpoint


class SetDuelingController:
    """Assigns leader/follower sets and maintains the PSEL counter.

    Leader sets are spread evenly across the index space using a fixed stride,
    which mirrors the usual hash-free hardware mapping and keeps behaviour
    deterministic.
    """

    def __init__(
        self,
        num_sets: int,
        leader_sets_per_policy: int = 32,
        psel_bits: int = 10,
    ) -> None:
        if num_sets <= 0:
            raise ValueError(f"num_sets must be positive, got {num_sets}")
        if leader_sets_per_policy < 1:
            raise ValueError("need at least one leader set per policy")
        leader_sets_per_policy = min(leader_sets_per_policy, num_sets // 2)
        leader_sets_per_policy = max(leader_sets_per_policy, 1)
        self.num_sets = num_sets
        self.leader_sets_per_policy = leader_sets_per_policy
        self.psel = SaturatingCounter(psel_bits, value=1 << (psel_bits - 1))

        stride = max(num_sets // (2 * leader_sets_per_policy), 1)
        self._constituency: dict[int, Constituency] = {}
        for i in range(leader_sets_per_policy):
            index_a = (2 * i * stride) % num_sets
            index_b = ((2 * i + 1) * stride) % num_sets
            self._constituency.setdefault(index_a, Constituency.LEADER_A)
            self._constituency.setdefault(index_b, Constituency.LEADER_B)

    def constituency(self, set_index: int) -> Constituency:
        """Return the dueling group of ``set_index``."""
        if not 0 <= set_index < self.num_sets:
            raise IndexError(f"set index {set_index} out of range")
        return self._constituency.get(set_index, Constituency.FOLLOWER)

    def record_miss(self, set_index: int) -> None:
        """Update PSEL on a miss in a leader set.

        A miss in an A-leader set is evidence against policy A, so it moves
        the counter towards B (increment); symmetrically for B.
        """
        group = self.constituency(set_index)
        if group is Constituency.LEADER_A:
            self.psel.increment()
        elif group is Constituency.LEADER_B:
            self.psel.decrement()

    def use_policy_a(self, set_index: int) -> bool:
        """Which policy a set should apply right now."""
        group = self.constituency(set_index)
        if group is Constituency.LEADER_A:
            return True
        if group is Constituency.LEADER_B:
            return False
        return self.psel.favors_a

    def reset(self) -> None:
        self.psel.value = self.psel.midpoint
