"""Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion.

DRRIP [Jaleel et al., ISCA 2010] dedicates leader sets to SRRIP (policy A) and
BRRIP (policy B) and lets follower sets adopt the winner according to a PSEL
counter (Section 4.3 of the paper: 32 sampling sets per policy, 10-bit PSEL).
"""

from __future__ import annotations

from repro.cache.replacement.dueling import SetDuelingController
from repro.cache.replacement.rrip import RRIPBase
from repro.common.request import MemoryRequest


class DRRIPPolicy(RRIPBase):
    """Dynamic RRIP (SRRIP vs. BRRIP set dueling)."""

    name = "drrip"

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        rrpv_bits: int = 2,
        leader_sets: int = 32,
        psel_bits: int = 10,
        bimodal_interval: int = 32,
    ) -> None:
        super().__init__(num_sets, num_ways, rrpv_bits)
        self.bimodal_interval = bimodal_interval
        self._insert_counter = 0
        self.dueling = SetDuelingController(
            num_sets, leader_sets_per_policy=leader_sets, psel_bits=psel_bits
        )

    def _brrip_insertion(self) -> int:
        self._insert_counter += 1
        if self._insert_counter % self.bimodal_interval == 0:
            return self.rrpv_intermediate
        return self.rrpv_distant

    def insertion_rrpv(self, set_index: int, request: MemoryRequest) -> int:
        if self.dueling.use_policy_a(set_index):
            return self.rrpv_intermediate  # SRRIP insertion
        return self._brrip_insertion()  # BRRIP insertion

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        # An insertion corresponds to a miss; demand misses in leader sets
        # steer the PSEL counter.
        if not request.is_prefetch:
            self.dueling.record_miss(set_index)
        super().on_insert(set_index, way, request)

    def reset(self) -> None:
        super().reset()
        self._insert_counter = 0
        self.dueling.reset()
