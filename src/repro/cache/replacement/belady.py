"""Belady's OPT (MIN) replacement — an oracle used for analysis only.

Belady's algorithm evicts the line whose next use is farthest in the future.
It is not implementable in hardware but gives an upper bound on achievable hit
rate; the repository uses it for the ablation study recorded in
``EXPERIMENTS.md`` (the paper cites it as the target Hawkeye/Mockingjay/SHiP
try to mimic).

The policy must be primed with the future reference stream before simulation:
:meth:`OptimalPolicy.prime` takes the sequence of line addresses that will be
presented to the cache, in order.  During simulation the policy tracks its
position in that stream and answers "when is this line used next?" queries
from per-line occurrence lists.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Iterable, Optional, Sequence

from repro.cache.replacement.base import ReplacementPolicy
from repro.common.addressing import line_address
from repro.common.request import MemoryRequest

#: Sentinel distance for lines never referenced again.
NEVER = float("inf")


class OptimalPolicy(ReplacementPolicy):
    """Belady's MIN replacement using a pre-recorded future trace."""

    name = "opt"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._occurrences: dict[int, list[int]] = defaultdict(list)
        self._position = 0
        self._resident: list[list[Optional[int]]] = [
            [None] * num_ways for _ in range(num_sets)
        ]

    # ------------------------------------------------------------------ setup
    def prime(self, line_addresses: Iterable[int]) -> None:
        """Record the future reference stream (line-aligned addresses)."""
        self._occurrences = defaultdict(list)
        for position, address in enumerate(line_addresses):
            self._occurrences[line_address(address)].append(position)
        self._position = 0

    def advance(self) -> None:
        """Advance the oracle's notion of "now" by one reference."""
        self._position += 1

    def _next_use(self, address: Optional[int]) -> float:
        if address is None:
            return NEVER
        positions: Sequence[int] = self._occurrences.get(line_address(address), ())
        index = bisect.bisect_left(positions, self._position)
        if index >= len(positions):
            return NEVER
        return positions[index]

    # ------------------------------------------------------------------ hooks
    def on_hit(self, set_index: int, way: int, request: MemoryRequest) -> None:
        self._resident[set_index][way] = line_address(request.address)

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        self._resident[set_index][way] = line_address(request.address)

    def victim(self, set_index: int) -> int:
        """Evict the line re-used farthest in the future (request-free: the
        oracle consults only its pre-recorded stream position)."""
        self._check_set(set_index)
        resident = self._resident[set_index]
        return max(range(self.num_ways), key=lambda way: self._next_use(resident[way]))

    def on_evict(
        self, set_index: int, way: int, request: Optional[MemoryRequest] = None
    ) -> None:
        self._resident[set_index][way] = None

    def reset(self) -> None:
        self._position = 0
        for resident in self._resident:
            for way in range(self.num_ways):
                resident[way] = None
