"""SHiP: Signature-based Hit Predictor [Wu et al., MICRO 2011].

SHiP augments RRIP with a table of saturating counters (the SHCT) indexed by a
signature of the line.  Lines whose signature has historically not been re-hit
are inserted at *Distant* re-reference so they do not pollute the cache.

The paper's evaluation (Section 4.3) implements a 64 kB SHiP predictor at the
L2 and applies it only to **instruction** cache blocks, using PC-based
signatures (identical to address signatures for instruction fetches).  This
implementation follows that configuration: data lines obey plain SRRIP.

Per-line state (the ``outcome`` bit and stored signature) is kept in arrays
owned by the policy, mirroring the extra per-line storage the hardware
proposal requires — that storage is what Table 4 charges SHiP for.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.replacement.rrip import RRIPBase
from repro.common.request import MemoryRequest


class SHiPPolicy(RRIPBase):
    """Signature-based Hit Predictor layered on SRRIP."""

    name = "ship"

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        rrpv_bits: int = 2,
        shct_entries: int = 16384,
        shct_bits: int = 2,
        instruction_only: bool = True,
    ) -> None:
        super().__init__(num_sets, num_ways, rrpv_bits)
        if shct_entries <= 0:
            raise ValueError("shct_entries must be positive")
        self.shct_entries = shct_entries
        self.shct_bits = shct_bits
        self.shct_max = (1 << shct_bits) - 1
        self.instruction_only = instruction_only
        #: Signature History Counter Table, initialised weakly re-referenced.
        self.shct = [self.shct_max // 2 + 1] * shct_entries
        # Per-line metadata (signature + outcome), -1 signature means untracked.
        self._signature = [[-1] * num_ways for _ in range(num_sets)]
        self._outcome = [[False] * num_ways for _ in range(num_sets)]

    # ------------------------------------------------------------- signatures
    def make_signature(self, request: MemoryRequest) -> int:
        """Hash the PC (instruction address) into an SHCT index."""
        source = request.pc if request.pc else request.address
        # Fold the line address into the table index; simple xor-fold hash.
        line = source >> 6
        return (line ^ (line >> 7) ^ (line >> 15)) % self.shct_entries

    def _tracks(self, request: MemoryRequest) -> bool:
        return request.is_instruction or not self.instruction_only

    # ------------------------------------------------------------------ hooks
    def on_hit(self, set_index: int, way: int, request: MemoryRequest) -> None:
        signature = self._signature[set_index][way]
        if signature >= 0 and not self._outcome[set_index][way]:
            self._outcome[set_index][way] = True
            self.shct[signature] = min(self.shct[signature] + 1, self.shct_max)
        super().on_hit(set_index, way, request)

    def insertion_rrpv(self, set_index: int, request: MemoryRequest) -> int:
        if self._tracks(request):
            signature = self.make_signature(request)
            if self.shct[signature] == 0:
                # Predicted dead-on-arrival: insert at distant re-reference.
                return self.rrpv_distant
        return self.rrpv_intermediate

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        if self._tracks(request):
            self._signature[set_index][way] = self.make_signature(request)
        else:
            self._signature[set_index][way] = -1
        self._outcome[set_index][way] = False
        super().on_insert(set_index, way, request)

    def on_evict(
        self, set_index: int, way: int, request: Optional[MemoryRequest] = None
    ) -> None:
        signature = self._signature[set_index][way]
        if signature >= 0 and not self._outcome[set_index][way]:
            # Line left the cache without ever being re-referenced.
            self.shct[signature] = max(self.shct[signature] - 1, 0)
        self._signature[set_index][way] = -1
        self._outcome[set_index][way] = False
        super().on_evict(set_index, way, request)

    def reset(self) -> None:
        super().reset()
        self.shct = [self.shct_max // 2 + 1] * self.shct_entries
        for signatures, outcomes in zip(self._signature, self._outcome):
            for way in range(self.num_ways):
                signatures[way] = -1
                outcomes[way] = False
