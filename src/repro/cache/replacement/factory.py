"""Factory that builds replacement policies from names or specs.

The canonical catalog — names, aliases, descriptions and typed parameters —
lives in :mod:`repro.cache.replacement.spec` (:data:`POLICY_REGISTRY`).
This module keeps the historical entry points on top of it:
:func:`create_policy` accepts either a plain name (``"srrip"``), a
parameterised CLI token (``"ship:shct_bits=3"``) or a
:class:`~repro.cache.replacement.spec.PolicySpec`, and raises
:class:`~repro.common.errors.ConfigurationError` — naming the offending
token and the valid choices — for anything it does not recognise.
"""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.spec import PolicySpec, policy_names


def available_policies() -> tuple[str, ...]:
    """Canonical names accepted by :func:`create_policy`, sorted."""
    return tuple(sorted(policy_names()))


def create_policy(
    name: "str | PolicySpec", num_sets: int, num_ways: int, **kwargs
) -> ReplacementPolicy:
    """Instantiate a replacement policy by name, token or spec.

    ``kwargs`` are merged over the spec's own parameters and validated
    against the registry, so a typo in a parameter name fails loudly here
    instead of surfacing as a ``TypeError`` from the builder.
    """
    return PolicySpec.of(name).build(num_sets, num_ways, **kwargs)
