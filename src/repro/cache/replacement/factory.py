"""Factory that builds replacement policies from configuration names.

The names accepted here are the ones used throughout the experiment harness
and in the paper's figures: ``lru``, ``srrip``, ``brrip``, ``drrip``, ``ship``,
``clip``, ``emissary``, ``trrip-1`` and ``trrip-2`` (plus ``fifo``, ``random``
and ``opt`` for baselines/ablations).
"""

from __future__ import annotations

from typing import Callable

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.basic import FIFOPolicy, LRUPolicy, RandomPolicy
from repro.cache.replacement.belady import OptimalPolicy
from repro.cache.replacement.clip import CLIPPolicy
from repro.cache.replacement.drrip import DRRIPPolicy
from repro.cache.replacement.emissary import EmissaryPolicy
from repro.cache.replacement.rrip import BRRIPPolicy, SRRIPPolicy
from repro.cache.replacement.ship import SHiPPolicy
from repro.common.errors import ConfigurationError

#: Builders for policies that live in the cache substrate itself.
_BUILDERS: dict[str, Callable[..., ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
    "drrip": DRRIPPolicy,
    "ship": SHiPPolicy,
    "clip": CLIPPolicy,
    "emissary": EmissaryPolicy,
    "opt": OptimalPolicy,
}


def available_policies() -> tuple[str, ...]:
    """Names accepted by :func:`create_policy` (including TRRIP variants)."""
    return tuple(sorted(_BUILDERS)) + ("trrip-1", "trrip-2")


def create_policy(
    name: str, num_sets: int, num_ways: int, **kwargs
) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    TRRIP variants are imported lazily from :mod:`repro.core.trrip` (the
    paper's contribution lives in ``repro.core``, which depends on this
    package).
    """
    key = name.lower()
    if key in ("trrip", "trrip-1", "trrip1"):
        from repro.core.trrip import TRRIPPolicy

        return TRRIPPolicy(num_sets, num_ways, variant=1, **kwargs)
    if key in ("trrip-2", "trrip2"):
        from repro.core.trrip import TRRIPPolicy

        return TRRIPPolicy(num_sets, num_ways, variant=2, **kwargs)
    builder = _BUILDERS.get(key)
    if builder is None:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; known policies: "
            f"{', '.join(available_policies())}"
        )
    return builder(num_sets, num_ways, **kwargs)
