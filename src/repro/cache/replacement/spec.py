"""Structured replacement-policy specifications and the policy registry.

Historically every layer of the harness addressed replacement policies by
ad-hoc strings (``"trrip-1"``, ``"ship"``) that were only interpreted deep
inside the cache factory — after workload preparation had already been paid
for, and with no way to pass parameters short of threading ``**kwargs``
through every call site.  This module replaces those strings with a small,
self-describing layer:

* :data:`POLICY_REGISTRY` — one :class:`PolicyInfo` per registered policy:
  canonical name, accepted aliases, a one-line description (surfaced by
  ``repro policies``) and the typed parameters its builder accepts.
* :class:`PolicySpec` — a frozen, hashable (name + typed params) value
  object.  It validates eagerly against the registry, raising
  :class:`~repro.common.errors.ConfigurationError` that names the offending
  token and the valid choices, parses the CLI syntax
  ``name:param=value,param=value`` (:meth:`PolicySpec.parse`), and renders a
  canonical string (:meth:`PolicySpec.canonical`) that is stable across
  processes — the result store keys cached runs by it.

Plain policy names remain accepted everywhere (``PolicySpec.of("srrip")``),
so existing call sites and cached store entries keep working unchanged: a
parameterless spec's canonical form is exactly the bare policy name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.basic import FIFOPolicy, LRUPolicy, RandomPolicy
from repro.cache.replacement.belady import OptimalPolicy
from repro.cache.replacement.clip import CLIPPolicy
from repro.cache.replacement.drrip import DRRIPPolicy
from repro.cache.replacement.emissary import EmissaryPolicy
from repro.cache.replacement.partition import PartitionPolicy
from repro.cache.replacement.rrip import BRRIPPolicy, SRRIPPolicy
from repro.cache.replacement.ship import SHiPPolicy
from repro.common.errors import ConfigurationError
from repro.common.params import TypedParam, parse_spec_token, render_param_value

#: One typed parameter a policy builder accepts.  The shared
#: :class:`~repro.common.params.TypedParam` machinery (also used by workload
#: families) defaults its ``kind`` to "policy", so the construction and
#: error-message behaviour are unchanged.
PolicyParam = TypedParam


@dataclass(frozen=True)
class PolicyInfo:
    """Registry entry for one replacement policy."""

    name: str
    description: str
    builder: Callable[..., ReplacementPolicy]
    params: tuple[PolicyParam, ...] = ()
    aliases: tuple[str, ...] = ()

    def param(self, name: str) -> PolicyParam:
        for param in self.params:
            if param.name == name:
                return param
        valid = ", ".join(p.name for p in self.params) or "(none)"
        raise ConfigurationError(
            f"policy {self.name!r} has no parameter {name!r}; "
            f"valid parameters: {valid}"
        )

    def build(self, num_sets: int, num_ways: int, **kwargs) -> ReplacementPolicy:
        return self.builder(num_sets, num_ways, **kwargs)


def _trrip_builder(variant: int) -> Callable[..., ReplacementPolicy]:
    """TRRIP lives in :mod:`repro.core` (which depends on this package), so
    its builders import lazily to keep the layering acyclic."""

    def build(num_sets: int, num_ways: int, **kwargs) -> ReplacementPolicy:
        from repro.core.trrip import TRRIPPolicy

        return TRRIPPolicy(num_sets, num_ways, variant=variant, **kwargs)

    return build


_RRPV_BITS = PolicyParam("rrpv_bits", int, 2, "RRPV counter width in bits")
_LEADER_SETS = PolicyParam(
    "leader_sets", int, 32, "leader sets per constituency for set dueling"
)
_PSEL_BITS = PolicyParam("psel_bits", int, 10, "policy-selector counter width")
_BIMODAL = PolicyParam(
    "bimodal_interval", int, 32, "1/N of insertions placed at intermediate"
)

#: Every registered replacement policy, in catalog order (baselines, the
#: RRIP family, the paper's competitors, TRRIP, then oracles).
POLICY_REGISTRY: dict[str, PolicyInfo] = {
    info.name: info
    for info in (
        PolicyInfo(
            "lru",
            "least-recently-used baseline",
            LRUPolicy,
        ),
        PolicyInfo(
            "fifo",
            "first-in-first-out baseline",
            FIFOPolicy,
        ),
        PolicyInfo(
            "random",
            "uniform random victim selection (deterministic seed)",
            RandomPolicy,
            params=(PolicyParam("seed", int, 0, "RNG seed"),),
        ),
        PolicyInfo(
            "srrip",
            "static RRIP, the paper's baseline (hit-priority variant)",
            SRRIPPolicy,
            params=(_RRPV_BITS,),
        ),
        PolicyInfo(
            "brrip",
            "bimodal RRIP: thrash-resistant distant insertion",
            BRRIPPolicy,
            params=(_RRPV_BITS, _BIMODAL),
        ),
        PolicyInfo(
            "drrip",
            "dynamic RRIP: set dueling between SRRIP and BRRIP",
            DRRIPPolicy,
            params=(_RRPV_BITS, _LEADER_SETS, _PSEL_BITS, _BIMODAL),
        ),
        PolicyInfo(
            "ship",
            "signature-based hit prediction over SRRIP",
            SHiPPolicy,
            params=(
                _RRPV_BITS,
                PolicyParam("shct_entries", int, 16384, "SHCT table entries"),
                PolicyParam("shct_bits", int, 2, "SHCT counter width"),
                PolicyParam(
                    "instruction_only", bool, True, "train only on ifetches"
                ),
            ),
        ),
        PolicyInfo(
            "clip",
            "code-line instruction prioritisation via set dueling",
            CLIPPolicy,
            params=(_RRPV_BITS, _LEADER_SETS, _PSEL_BITS),
        ),
        PolicyInfo(
            "emissary",
            "priority-way partitioning for costly instruction lines",
            EmissaryPolicy,
            params=(
                PolicyParam("priority_ways", int, 4, "ways reserved for priority"),
                PolicyParam(
                    "priority_probability",
                    float,
                    1.0 / 16.0,
                    "probability a starved fill is prioritised",
                ),
                PolicyParam(
                    "rotate_on_saturation",
                    bool,
                    False,
                    "rotate priority ways when saturated",
                ),
                PolicyParam("seed", int, 0, "RNG seed"),
            ),
        ),
        PolicyInfo(
            "partition",
            "static per-core way partitioning (QoS) over a base policy",
            PartitionPolicy,
            params=(
                PolicyParam(
                    "ways",
                    str,
                    "",
                    "'+'-separated per-core way counts, e.g. 4+4 "
                    "(empty = even two-way split)",
                ),
                PolicyParam(
                    "base",
                    str,
                    "lru",
                    "bare policy name each partition runs internally",
                ),
            ),
        ),
        PolicyInfo(
            "trrip-1",
            "temperature RRIP, variant 1: hot lines pinned at immediate",
            _trrip_builder(1),
            params=(_RRPV_BITS,),
            aliases=("trrip", "trrip1"),
        ),
        PolicyInfo(
            "trrip-2",
            "temperature RRIP, variant 2: warm insertion + conservative hits",
            _trrip_builder(2),
            params=(_RRPV_BITS,),
            aliases=("trrip2",),
        ),
        PolicyInfo(
            "opt",
            "Belady's MIN oracle (must be primed with the future trace)",
            OptimalPolicy,
        ),
    )
}

#: alias -> canonical name, for lookups.
_ALIASES: dict[str, str] = {
    alias: info.name for info in POLICY_REGISTRY.values() for alias in info.aliases
}


def policy_names() -> tuple[str, ...]:
    """Canonical registered names, in catalog order."""
    return tuple(POLICY_REGISTRY)


def get_policy_info(name: str) -> PolicyInfo:
    """Resolve a (possibly aliased) policy name to its registry entry."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    info = POLICY_REGISTRY.get(key)
    if info is None:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; known policies: "
            f"{', '.join(sorted(POLICY_REGISTRY))}"
        )
    return info


@dataclass(frozen=True)
class PolicySpec:
    """A replacement policy plus its (typed, validated) parameters.

    ``params`` is stored as a name-sorted tuple of ``(name, value)`` pairs so
    specs are hashable, order-insensitive and canonicalise deterministically
    for content hashing.  Instances are validated on construction: unknown
    names and unknown/badly-typed parameters raise
    :class:`~repro.common.errors.ConfigurationError` immediately, not deep
    inside the cache factory after workload preparation.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        info = get_policy_info(self.name)
        coerced = tuple(
            sorted(
                (info.param(key).name, info.param(key).coerce(value, info.name))
                for key, value in dict(self.params).items()
            )
        )
        object.__setattr__(self, "name", info.name)
        object.__setattr__(self, "params", coerced)

    # --------------------------------------------------------- constructions
    @classmethod
    def of(
        cls, value: "PolicySpec | str", **overrides: Any
    ) -> "PolicySpec":
        """Coerce a policy name / CLI token / spec into a :class:`PolicySpec`."""
        if isinstance(value, PolicySpec):
            if overrides:
                merged = dict(value.params)
                merged.update(overrides)
                return cls(value.name, tuple(merged.items()))
            return value
        if isinstance(value, str):
            spec = cls.parse(value)
            if overrides:
                return cls.of(spec, **overrides)
            return spec
        raise ConfigurationError(
            f"cannot interpret {value!r} as a replacement policy"
        )

    @classmethod
    def parse(cls, text: str) -> "PolicySpec":
        """Parse the CLI syntax ``name`` or ``name:param=value,param=value``."""
        name, params = parse_spec_token(text, kind="policy")
        return cls(name, tuple(params.items()))

    # -------------------------------------------------------------- accessors
    @property
    def info(self) -> PolicyInfo:
        return get_policy_info(self.name)

    @property
    def kwargs(self) -> dict[str, Any]:
        """Builder keyword arguments (non-default parameters only)."""
        return dict(self.params)

    def canonical(self) -> str:
        """Stable text form: ``name`` or ``name:a=1,b=2`` (params sorted).

        Parameterless specs render as the bare policy name, so canonical
        strings — and therefore result-store keys and report labels — are
        byte-identical to the legacy string-based addressing.
        """
        if not self.params:
            return self.name
        rendered = ",".join(
            f"{key}={self._render(value)}" for key, value in self.params
        )
        return f"{self.name}:{rendered}"

    #: Canonical value rendering, shared with the workload-family specs so
    #: both registries' canonical strings (and store keys) stay consistent.
    _render = staticmethod(render_param_value)

    def __str__(self) -> str:
        return self.canonical()

    # ------------------------------------------------------------------ build
    def build(self, num_sets: int, num_ways: int, **extra: Any) -> ReplacementPolicy:
        """Instantiate the policy for a cache geometry."""
        kwargs = self.kwargs
        for key, value in extra.items():
            kwargs[self.info.param(key).name] = self.info.param(key).coerce(
                value, self.name
            )
        return self.info.build(num_sets, num_ways, **kwargs)


def describe_policies() -> list[tuple[PolicyInfo, Optional[str]]]:
    """(info, rendered-parameter summary) rows for ``repro policies``."""
    rows: list[tuple[PolicyInfo, Optional[str]]] = []
    for info in POLICY_REGISTRY.values():
        if info.params:
            summary = ", ".join(
                f"{p.name}:{p.type.__name__}={PolicySpec._render(p.default)}"
                for p in info.params
            )
        else:
            summary = None
        rows.append((info, summary))
    return rows
