"""CLIP: Code Line Preservation [Jaleel et al., HPCA 2015].

CLIP is an RRIP-based policy that gives preferential treatment to instruction
cache lines in a unified cache for frontend-bound applications:

* all instruction lines are inserted at *Immediate* re-reference;
* a set-dueling choice decides whether data lines keep normal RRIP hit
  promotion (variant A) or are prevented from being promoted all the way to
  *Immediate* on a hit (variant B), which protects code lines further.

CLIP needs no software support — it blindly treats every instruction line the
same, which is exactly the behaviour the paper contrasts TRRIP against
(Section 4.7: CLIP is equivalent to TRRIP with ``percentile_hot`` = 100%).
"""

from __future__ import annotations

from repro.cache.replacement.dueling import SetDuelingController
from repro.cache.replacement.rrip import RRIPBase
from repro.common.request import MemoryRequest


class CLIPPolicy(RRIPBase):
    """Code Line Preservation replacement."""

    name = "clip"

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        rrpv_bits: int = 2,
        leader_sets: int = 32,
        psel_bits: int = 10,
    ) -> None:
        super().__init__(num_sets, num_ways, rrpv_bits)
        self.dueling = SetDuelingController(
            num_sets, leader_sets_per_policy=leader_sets, psel_bits=psel_bits
        )

    def insertion_rrpv(self, set_index: int, request: MemoryRequest) -> int:
        if request.is_instruction:
            return self.rrpv_immediate
        return self.rrpv_intermediate

    def on_hit(self, set_index: int, way: int, request: MemoryRequest) -> None:
        if request.is_instruction:
            self.set_rrpv(set_index, way, self.rrpv_immediate)
            return
        if self.dueling.use_policy_a(set_index):
            # Variant A: default RRIP promotion for data lines.
            self.set_rrpv(set_index, way, self.rrpv_immediate)
        else:
            # Variant B: data lines step towards Near (never past it, and a
            # line already at Immediate is left alone), preserving code lines.
            current = self.rrpv(set_index, way)
            self.set_rrpv(set_index, way, min(current, max(current - 1, self.rrpv_near)))

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        if not request.is_prefetch:
            self.dueling.record_miss(set_index)
        super().on_insert(set_index, way, request)

    def reset(self) -> None:
        super().reset()
        self.dueling.reset()
