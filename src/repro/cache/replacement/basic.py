"""Baseline replacement policies: LRU, FIFO and Random.

LRU is the baseline the paper's Table 1 uses for the L1 caches and the SLC,
and one of the evaluated L2 mechanisms in Figure 6 / Table 3.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cache.replacement.base import ReplacementPolicy
from repro.common.request import MemoryRequest


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement.

    Recency is tracked with a monotonically increasing per-policy counter; the
    victim is the valid way with the smallest stamp.  New lines are inserted
    as most-recently-used.

    LRU is fully request-free: its whole interface is the array-state protocol
    (``touch``/``victim``), which the cache calls directly on the hot path.
    """

    name = "lru"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        #: The monotonic clock lives in a one-element list so the cache can
        #: advance it inline through :meth:`hit_update_spec`.
        self._clock_cell = [0]
        self._stamps = [[0] * num_ways for _ in range(num_sets)]

    @property
    def _clock(self) -> int:
        """Object view of the clock cell (used by cold paths and subclasses)."""
        return self._clock_cell[0]

    @_clock.setter
    def _clock(self, value: int) -> None:
        self._clock_cell[0] = value

    # The touch hook runs on every single cache access in the simulation hot
    # loop; list indexing raises IndexError for out-of-range ways on its own,
    # so the explicit range checks are left to the cold entry points.
    def touch(self, set_index: int, way: int) -> None:
        cell = self._clock_cell
        clock = cell[0] + 1
        cell[0] = clock
        self._stamps[set_index][way] = clock

    # Backwards-compatible private alias (the seed baseline subclasses it).
    _touch = touch

    def hit_update_spec(self):
        return ("clock", self._stamps, self._clock_cell)

    def replace_spec(self):
        return ("lru", self._stamps, self._clock_cell)

    def evict_update_spec(self):
        if type(self).on_evict is not LRUPolicy.on_evict:
            return None
        return ("const", self._stamps, 0)

    def victim(self, set_index: int) -> int:
        # min()/index() run at C speed over the per-set stamp array, which is
        # measurably faster than a Python loop for the 8/16-way paper caches.
        stamps = self._stamps[set_index]
        return stamps.index(min(stamps))

    def replace(self, set_index: int) -> int:
        """Fused victim + evict + insert: evict the LRU way and stamp it MRU.

        Exactly ``victim`` (pick min stamp) followed by ``on_evict`` (zero the
        stamp — dead, the insert overwrites it) and the insert ``touch``.
        """
        stamps = self._stamps[set_index]
        way = stamps.index(min(stamps))
        cell = self._clock_cell
        clock = cell[0] + 1
        cell[0] = clock
        stamps[way] = clock
        return way

    def on_evict(
        self, set_index: int, way: int, request: Optional[MemoryRequest] = None
    ) -> None:
        self._stamps[set_index][way] = 0

    def reset(self) -> None:
        self._clock = 0
        for stamps in self._stamps:
            for way in range(self.num_ways):
                stamps[way] = 0


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out replacement (insertion order, hits do not refresh)."""

    name = "fifo"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        #: Monotonic insertion clock in a one-element cell so the fused
        #: replacement can run declaratively (see :meth:`replace_spec`).
        self._clock_cell = [0]
        self._stamps = [[0] * num_ways for _ in range(num_sets)]

    @property
    def _clock(self) -> int:
        """Object view of the clock cell (kept for subclasses and tests)."""
        return self._clock_cell[0]

    @_clock.setter
    def _clock(self, value: int) -> None:
        self._clock_cell[0] = value

    # touch stays the base no-op: FIFO hits do not refresh recency.
    def hit_update_spec(self):
        return ("noop",)

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        # Request-indifferent: the stamp is a pure function of policy state.
        # The vector kernel relies on that (it passes request=None).
        cell = self._clock_cell
        clock = cell[0] + 1
        cell[0] = clock
        self._stamps[set_index][way] = clock

    def victim(self, set_index: int) -> int:
        self._check_set(set_index)
        stamps = self._stamps[set_index]
        return stamps.index(min(stamps))

    def replace(self, set_index: int) -> int:
        """Fused victim + evict + insert: evict oldest, stamp insertion order."""
        self._check_set(set_index)
        stamps = self._stamps[set_index]
        way = stamps.index(min(stamps))
        cell = self._clock_cell
        clock = cell[0] + 1
        cell[0] = clock
        stamps[way] = clock
        return way

    def replace_spec(self):
        # FIFO's fused replacement is the same min-stamp-evict + clock-restamp
        # step as LRU's (hits never touch the stamps, which is the only
        # difference between the policies and lives in hit_update_spec).
        return ("lru", self._stamps, self._clock_cell)

    def reset(self) -> None:
        self._clock_cell[0] = 0
        for stamps in self._stamps:
            for way in range(self.num_ways):
                stamps[way] = 0


class RandomPolicy(ReplacementPolicy):
    """Random replacement with a deterministic seed (useful as a floor)."""

    name = "random"

    def __init__(self, num_sets: int, num_ways: int, seed: int = 0) -> None:
        super().__init__(num_sets, num_ways)
        self._seed = seed
        self._rng = random.Random(seed)

    def touch(self, set_index: int, way: int) -> None:
        self._check_set(set_index)
        self._check_way(way)

    def victim(self, set_index: int) -> int:
        self._check_set(set_index)
        return self._rng.randrange(self.num_ways)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
