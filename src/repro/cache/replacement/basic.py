"""Baseline replacement policies: LRU, FIFO and Random.

LRU is the baseline the paper's Table 1 uses for the L1 caches and the SLC,
and one of the evaluated L2 mechanisms in Figure 6 / Table 3.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cache.replacement.base import ReplacementPolicy
from repro.common.request import MemoryRequest


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement.

    Recency is tracked with a monotonically increasing per-policy counter; the
    victim is the valid way with the smallest stamp.  New lines are inserted
    as most-recently-used.
    """

    name = "lru"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._clock = 0
        self._stamps = [[0] * num_ways for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    # The hit/insert hooks run on every single cache access in the simulation
    # hot loop; list indexing raises IndexError for out-of-range ways on its
    # own, so the explicit range checks are left to the cold entry points.
    def on_hit(self, set_index: int, way: int, request: MemoryRequest) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def select_victim(self, set_index: int, request: MemoryRequest) -> int:
        stamps = self._stamps[set_index]
        victim = 0
        best = stamps[0]
        for way in range(1, self.num_ways):
            stamp = stamps[way]
            if stamp < best:
                best = stamp
                victim = way
        return victim

    def on_evict(
        self, set_index: int, way: int, request: Optional[MemoryRequest] = None
    ) -> None:
        self._stamps[set_index][way] = 0

    def reset(self) -> None:
        self._clock = 0
        for stamps in self._stamps:
            for way in range(self.num_ways):
                stamps[way] = 0


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out replacement (insertion order, hits do not refresh)."""

    name = "fifo"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._clock = 0
        self._stamps = [[0] * num_ways for _ in range(num_sets)]

    def on_hit(self, set_index: int, way: int, request: MemoryRequest) -> None:
        pass

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def select_victim(self, set_index: int, request: MemoryRequest) -> int:
        self._check_set(set_index)
        stamps = self._stamps[set_index]
        return min(range(self.num_ways), key=lambda way: stamps[way])

    def reset(self) -> None:
        self._clock = 0
        for stamps in self._stamps:
            for way in range(self.num_ways):
                stamps[way] = 0


class RandomPolicy(ReplacementPolicy):
    """Random replacement with a deterministic seed (useful as a floor)."""

    name = "random"

    def __init__(self, num_sets: int, num_ways: int, seed: int = 0) -> None:
        super().__init__(num_sets, num_ways)
        self._seed = seed
        self._rng = random.Random(seed)

    def on_hit(self, set_index: int, way: int, request: MemoryRequest) -> None:
        self._check_set(set_index)
        self._check_way(way)

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        self._check_set(set_index)
        self._check_way(way)

    def select_victim(self, set_index: int, request: MemoryRequest) -> int:
        self._check_set(set_index)
        return self._rng.randrange(self.num_ways)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
