"""Re-Reference Interval Prediction policies (SRRIP and BRRIP).

RRIP [Jaleel et al., ISCA 2010] encodes a re-reference prediction per line in
an ``M``-bit RRPV (Re-Reference Prediction Value).  With the paper's 2-bit
RRPVs the predictions are:

====================  =====
prediction            RRPV
====================  =====
Immediate re-ref.       0
Near re-ref.            1
Intermediate re-ref.    2
Distant re-ref.         3
====================  =====

* **SRRIP** (Static RRIP) inserts new lines at *Intermediate* and promotes a
  line to *Immediate* on a hit (hit-priority variant).
* **BRRIP** (Bimodal RRIP) inserts at *Distant* most of the time and only
  occasionally (1/32 by default) at *Intermediate*, which resists thrashing.
* Victim selection searches for a line at *Distant*; if none exists, every
  RRPV in the set is incremented and the search repeats (aging).

These classes are the foundation for DRRIP, SHiP, CLIP and TRRIP.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.replacement.base import ReplacementPolicy
from repro.common.request import MemoryRequest


class RRIPBase(ReplacementPolicy):
    """Shared RRPV storage and victim-selection (aging) machinery."""

    name = "rrip-base"

    def __init__(self, num_sets: int, num_ways: int, rrpv_bits: int = 2) -> None:
        super().__init__(num_sets, num_ways)
        if rrpv_bits < 1:
            raise ValueError(f"rrpv_bits must be >= 1, got {rrpv_bits}")
        self.rrpv_bits = rrpv_bits
        self.rrpv_max = (1 << rrpv_bits) - 1
        #: "Immediate re-reference" prediction.
        self.rrpv_immediate = 0
        #: "Near re-reference" prediction.
        self.rrpv_near = min(1, self.rrpv_max)
        #: "Intermediate (long) re-reference" prediction, SRRIP insertion point.
        self.rrpv_intermediate = self.rrpv_max - 1
        #: "Distant re-reference" prediction, eviction candidates.
        self.rrpv_distant = self.rrpv_max
        self._rrpv = [[self.rrpv_max] * num_ways for _ in range(num_sets)]

    # ------------------------------------------------------------------ state
    def rrpv(self, set_index: int, way: int) -> int:
        """Current RRPV of a way (exposed for tests and analysis)."""
        self._check_set(set_index)
        self._check_way(way)
        return self._rrpv[set_index][way]

    def set_rrpv(self, set_index: int, way: int, value: int) -> None:
        self._check_set(set_index)
        self._check_way(way)
        if not 0 <= value <= self.rrpv_max:
            raise ValueError(f"RRPV {value} out of range [0, {self.rrpv_max}]")
        self._rrpv[set_index][way] = value

    def reset(self) -> None:
        for rrpvs in self._rrpv:
            for way in range(self.num_ways):
                rrpvs[way] = self.rrpv_max

    # ------------------------------------------------------------------ hooks
    # The hooks write the RRPV arrays directly: they run on every access of
    # the simulation hot loop with indices the cache validated already, and
    # ``insertion_rrpv`` implementations return in-range predictions by
    # construction.  ``set_rrpv`` (with its range validation) remains the
    # entry point for tests and analysis code.
    def touch(self, set_index: int, way: int) -> None:
        """Default RRIP hit promotion: predict immediate re-reference."""
        self._rrpv[set_index][way] = self.rrpv_immediate

    def hit_update_spec(self):
        return ("const", self._rrpv, self.rrpv_immediate)

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        """Default (SRRIP-style) insertion at intermediate re-reference."""
        self._rrpv[set_index][way] = self.insertion_rrpv(set_index, request)

    def insertion_rrpv(self, set_index: int, request: MemoryRequest) -> int:
        """RRPV assigned to a newly inserted line (overridden by subclasses)."""
        return self.rrpv_intermediate

    def victim(self, set_index: int) -> int:
        """RRIP eviction: age the set until some way reaches *Distant*.

        Equivalent to the textbook scan-and-increment loop, but the aging is
        collapsed into one arithmetic step: no RRPV can exceed
        ``rrpv_distant`` (``set_rrpv`` enforces the range and the insertion
        hooks produce in-range predictions), so ``rrpv_distant - max(rrpvs)``
        rounds of +1 aging move the current maximum exactly to *Distant*
        without saturating any other way.  The victim is then the first way
        at *Distant*, found at C speed with ``list.index``.
        """
        rrpvs = self._rrpv[set_index]
        distant = self.rrpv_distant
        oldest = max(rrpvs)
        if oldest < distant:
            delta = distant - oldest
            for way in range(self.num_ways):
                rrpvs[way] += delta
        return rrpvs.index(distant)

    def on_evict(
        self, set_index: int, way: int, request: Optional[MemoryRequest] = None
    ) -> None:
        self._rrpv[set_index][way] = self.rrpv_max

    def evict_update_spec(self):
        if type(self).on_evict is not RRIPBase.on_evict:
            return None
        return ("const", self._rrpv, self.rrpv_max)


class SRRIPPolicy(RRIPBase):
    """Static RRIP: scan-resistant insertion at intermediate re-reference."""

    name = "srrip"

    def replace(self, set_index: int) -> int:
        """Fused victim + evict + insert for static RRIP.

        Exactly ``victim`` (age to *Distant*, pick first), ``on_evict`` (write
        *Distant* — dead, the way already holds it) and ``on_insert`` at the
        static intermediate prediction.  Only exact for SRRIP itself: the
        dynamic-insertion policies subclass :class:`RRIPBase` directly and
        never see this method, and a hypothetical subclass of SRRIP that
        overrode ``insertion_rrpv`` (or any other summarised hook) is
        rejected by the cache's structural guard
        (:func:`~repro.cache.replacement.base.inherited_feature_is_exact`),
        falling back to the plain hook sequence.
        """
        rrpvs = self._rrpv[set_index]
        distant = self.rrpv_distant
        oldest = max(rrpvs)
        if oldest < distant:
            delta = distant - oldest
            for way in range(self.num_ways):
                rrpvs[way] += delta
        way = rrpvs.index(distant)
        rrpvs[way] = self.rrpv_intermediate
        return way

    def replace_spec(self):
        return ("rrip", self._rrpv, self.rrpv_distant, self.rrpv_intermediate)


class BRRIPPolicy(RRIPBase):
    """Bimodal RRIP: thrash-resistant insertion mostly at distant re-reference.

    A small fraction of insertions (``1 / bimodal_interval``) are placed at
    intermediate re-reference so that a working set can eventually be
    retained.  The counter-based duty cycle makes behaviour deterministic.
    """

    name = "brrip"

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        rrpv_bits: int = 2,
        bimodal_interval: int = 32,
    ) -> None:
        super().__init__(num_sets, num_ways, rrpv_bits)
        if bimodal_interval < 1:
            raise ValueError(
                f"bimodal_interval must be >= 1, got {bimodal_interval}"
            )
        self.bimodal_interval = bimodal_interval
        self._insert_counter = 0

    def insertion_rrpv(self, set_index: int, request: MemoryRequest) -> int:
        self._insert_counter += 1
        if self._insert_counter % self.bimodal_interval == 0:
            return self.rrpv_intermediate
        return self.rrpv_distant

    def reset(self) -> None:
        super().reset()
        self._insert_counter = 0
