"""Static way-partitioning for shared caches (QoS partitions).

``partition`` is a *composition* policy: the ways of every set are carved
into contiguous per-core segments (``ways="4+4"`` gives core 0 ways 0-3 and
core 1 ways 4-7) and each segment runs its own instance of a base policy
(``base="lru"``, ``"srrip"``, ...).  Victim selection is confined to the
requesting core's segment — the QoS property: one core's thrashing cannot
evict another core's lines once the cache is warm.  Lookups are unrestricted
(partitioning constrains *allocation*, not residency checks), and cold-start
fills may transiently land in any invalid way because the cache always
prefers invalid ways over victimisation; the partition bound is exact in the
steady state every measured window runs in.

The policy consumes ``request.core`` and therefore overrides the
request-aware hooks; the cache detects that structurally and routes every
hit/insert/victim through them (no declarative fast paths), which is
automatically correct — just slower, as any request-aware policy is.
Requests from cores beyond the configured segment count wrap around
(``core % segments``), so a 2-segment partition also serves 4-core runs.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.replacement.base import ReplacementPolicy
from repro.common.errors import ConfigurationError
from repro.common.request import MemoryRequest


def parse_partition_ways(text: str, num_ways: int) -> tuple[int, ...]:
    """Parse a ``"4+4"``-style segment description against a geometry.

    An empty string means an even two-way split.  Segment counts must be
    positive and sum to exactly ``num_ways`` (a partial partition would
    leave dead ways no policy ever victimises).
    """
    if not text:
        if num_ways < 2:
            raise ConfigurationError(
                "partition needs at least 2 ways to split; "
                f"cache has {num_ways}"
            )
        half = num_ways // 2
        return (half, num_ways - half)
    try:
        counts = tuple(int(part) for part in text.split("+"))
    except ValueError:
        raise ConfigurationError(
            f"partition ways {text!r} must be '+'-separated integers, "
            "e.g. ways=4+4"
        ) from None
    if not counts or any(count <= 0 for count in counts):
        raise ConfigurationError(
            f"partition ways {text!r} must all be positive"
        )
    if sum(counts) != num_ways:
        raise ConfigurationError(
            f"partition ways {text!r} sum to {sum(counts)}, but the cache "
            f"has {num_ways} ways; segments must cover the cache exactly"
        )
    return counts


class PartitionPolicy(ReplacementPolicy):
    """Static per-core way partitioning over a base replacement policy."""

    name = "partition"

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        ways: str = "",
        base: str = "lru",
    ) -> None:
        super().__init__(num_sets, num_ways)
        # Late import: the registry module imports this one.
        from repro.cache.replacement.spec import PolicySpec

        base_name = base.strip().lower()
        if base_name == self.name:
            raise ConfigurationError("partition cannot nest inside itself")
        self._ways_text = ways
        self._base_name = base_name
        self._segment_ways = parse_partition_ways(ways, num_ways)
        self._offsets: list[int] = []
        offset = 0
        for count in self._segment_ways:
            self._offsets.append(offset)
            offset += count
        #: Sub-policy per segment, each sized to its own way count.  The
        #: base token is validated through the registry (unknown names raise
        #: ConfigurationError naming the token).
        base_spec = PolicySpec.of(base_name)
        self._subs = [
            base_spec.build(num_sets, count) for count in self._segment_ways
        ]
        #: way -> owning segment index, precomputed for the hooks.
        self._segment_of_way = [
            segment
            for segment, count in enumerate(self._segment_ways)
            for _ in range(count)
        ]
        self._segments = len(self._segment_ways)

    # ------------------------------------------------------ request-aware hooks
    def on_hit(self, set_index: int, way: int, request: MemoryRequest) -> None:
        segment = self._segment_of_way[way]
        self._subs[segment].on_hit(
            set_index, way - self._offsets[segment], request
        )

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        segment = self._segment_of_way[way]
        self._subs[segment].on_insert(
            set_index, way - self._offsets[segment], request
        )

    def select_victim(self, set_index: int, request: MemoryRequest) -> int:
        segment = getattr(request, "core", 0) % self._segments
        local = self._subs[segment].select_victim(set_index, request)
        return self._offsets[segment] + local

    def on_evict(
        self, set_index: int, way: int, request: Optional[MemoryRequest] = None
    ) -> None:
        segment = self._segment_of_way[way]
        self._subs[segment].on_evict(
            set_index, way - self._offsets[segment], request
        )

    def reset(self) -> None:
        for sub in self._subs:
            sub.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        layout = "+".join(str(count) for count in self._segment_ways)
        return (
            f"PartitionPolicy(sets={self.num_sets}, ways={layout}, "
            f"base={self._base_name})"
        )
