"""Replacement policy interface.

Every evaluated mechanism (LRU, SRRIP, BRRIP, DRRIP, SHiP, CLIP, Emissary and
the paper's TRRIP variants) implements :class:`ReplacementPolicy`.  The cache
model calls the hooks in a fixed order:

* ``on_hit``      — a lookup found the line in ``way``;
* ``select_victim`` — the set is full and a way must be chosen for eviction;
* ``on_evict``    — the chosen victim (or an invalidated line) leaves the set;
* ``on_insert``   — the new line has been placed into ``way``.

Policies never see cache tags directly; any per-line metadata they need (RRPV
values, LRU stamps, SHiP signatures, Emissary priority bits) is kept in arrays
owned by the policy itself, exactly mirroring the storage the hardware
proposals add next to the tag array.

Array-state protocol
--------------------

Most policies never read the request: their whole state machine is "promote
this (set, way)" and "pick a way from this set's metadata array".  That narrow
protocol is expressed by two request-free methods over the per-set integer
arrays:

* ``touch(set_index, way)``  — recency/promotion update;
* ``victim(set_index)``      — choose the way to evict.

The request-aware hooks default to delegating to them, so a request-free
policy implements only ``touch``/``victim`` and the cache can (and does) call
those directly, skipping the unused request argument on the hot path.  The
cache detects request-free policies structurally: a policy whose class leaves
``on_hit`` (respectively ``select_victim``) at the base-class default is
promising that the request cannot influence the outcome.  Policies that *do*
consume request metadata (TRRIP's temperature, SHiP's signature, Emissary's
starvation hint, DRRIP's demand/prefetch split) override the request-aware
hook and are called through it, exactly as before.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.common.request import MemoryRequest


class ReplacementPolicy(abc.ABC):
    """Abstract base class for set-associative replacement policies."""

    #: Short identifier used by the policy factory and experiment tables.
    name: str = "base"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError(
                f"num_sets and num_ways must be positive, got {num_sets}x{num_ways}"
            )
        self.num_sets = num_sets
        self.num_ways = num_ways

    # ------------------------------------------- array-state protocol (narrow)
    def touch(self, set_index: int, way: int) -> None:
        """Request-free recency/promotion update for ``(set_index, way)``.

        The default is a no-op (stateless policies); policies with recency
        state override this with a plain array write.
        """

    def victim(self, set_index: int) -> int:
        """Pick the way to evict from a full set using policy state only."""
        raise NotImplementedError(
            f"{type(self).__name__} implements neither victim() nor "
            "select_victim()"
        )

    #: Optional fused request-free replacement hook.  A policy may set this
    #: to a ``replace(set_index) -> way`` method whose effect is *exactly*
    #: ``way = victim(set); on_evict(set, way); on_insert(set, way)`` for any
    #: request — one call instead of three on the eviction-fill hot path.
    #: Defining it is a promise of that equivalence: a subclass that changes
    #: any of the three underlying hooks must override ``replace`` too (or
    #: reset it to ``None`` to fall back to the three-call sequence).
    replace = None

    def hit_update_spec(self):
        """Declarative form of :meth:`touch`, or ``None``.

        A policy whose hit update is a single write into its per-set state
        arrays can return the write as *data* so the cache performs it inline
        — zero Python calls on the hit hot path:

        * ``("const", rows, value)`` — ``rows[set_index][way] = value``
          (RRIP-style promotion to a fixed prediction);
        * ``("clock", rows, cell)``  — ``cell[0] += 1; rows[set_index][way] =
          cell[0]`` (LRU-style recency stamping; ``cell`` is a one-element
          list holding the policy's monotonic clock);
        * ``("noop",)``              — hits do not change policy state (FIFO);
        * ``None``                   — no declarative form; the cache calls
          :meth:`touch` / :meth:`on_hit`.

        The spec must describe *exactly* what ``touch`` does; the cache only
        consults it for policies whose ``on_hit`` is the request-free default.
        The returned arrays must stay identity-stable across :meth:`reset`
        (reset in place).
        """
        return None

    def replace_spec(self):
        """Declarative form of :meth:`replace`, or ``None``.

        Like :meth:`hit_update_spec` but for the fused eviction+insertion:

        * ``("lru", rows, cell)`` — evict the way with the minimum stamp and
          restamp it from the monotonic clock in ``cell`` (LRU and FIFO);
        * ``("rrip", rows, distant, insertion)`` — age the set to *Distant*,
          evict the first way there, insert at the fixed ``insertion``
          prediction (static RRIP).

        The spec must describe *exactly* what :meth:`replace` does, under the
        same equivalence promise; a subclass that changes any underlying hook
        inherits ``replace = None`` or must override both.  The arrays must
        stay identity-stable across :meth:`reset`.
        """
        return None

    def evict_update_spec(self):
        """Declarative form of :meth:`on_evict`, or ``None``.

        ``("const", rows, value)`` means an eviction (or invalidation) of
        ``(set, way)`` is exactly ``rows[set_index][way] = value``.
        Implementations must self-guard against subclasses that override
        ``on_evict`` (return ``None`` when ``type(self).on_evict`` is not the
        class's own) so inherited specs can never shadow a richer hook.
        """
        return None

    # ------------------------------------------------------ request-aware hooks
    def on_hit(self, set_index: int, way: int, request: MemoryRequest) -> None:
        """Update re-reference state after a hit on ``way``.

        Defaults to the request-free :meth:`touch`; a policy whose class keeps
        this default is treated as request-free by the cache hot path.
        """
        self.touch(set_index, way)

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        """Initialise re-reference state for a newly inserted line."""
        self.touch(set_index, way)

    def select_victim(self, set_index: int, request: MemoryRequest) -> int:
        """Pick the way to evict from a full set.

        Defaults to the request-free :meth:`victim`; a policy whose class
        keeps this default is treated as request-free by the cache hot path.
        """
        return self.victim(set_index)

    def on_evict(
        self, set_index: int, way: int, request: Optional[MemoryRequest] = None
    ) -> None:
        """Notify that the line in ``way`` left the set (eviction/invalidate)."""

    def reset(self) -> None:
        """Restore the policy to its power-on state."""

    # ------------------------------------------------------------------ misc
    def _check_set(self, set_index: int) -> None:
        if not 0 <= set_index < self.num_sets:
            raise IndexError(f"set index {set_index} out of range [0, {self.num_sets})")

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.num_ways:
            raise IndexError(f"way {way} out of range [0, {self.num_ways})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(sets={self.num_sets}, ways={self.num_ways})"


def is_request_free_hit(policy: ReplacementPolicy) -> bool:
    """Whether ``policy``'s hit update provably ignores the request."""
    return type(policy).on_hit is ReplacementPolicy.on_hit


def is_request_free_insert(policy: ReplacementPolicy) -> bool:
    """Whether ``policy``'s insert update provably ignores the request."""
    return type(policy).on_insert is ReplacementPolicy.on_insert


#: Hooks whose behaviour a fused/declarative feature summarises.  A feature
#: inherited from a base class is only trusted when the concrete policy
#: class leaves every one of these hooks exactly as the feature's defining
#: class saw them (see :func:`inherited_feature_is_exact`).
_FUSED_FEATURE_HOOKS = {
    "replace": (
        "victim",
        "select_victim",
        "touch",
        "on_insert",
        "on_evict",
        "insertion_rrpv",
    ),
    "replace_spec": (
        "victim",
        "select_victim",
        "touch",
        "on_insert",
        "on_evict",
        "insertion_rrpv",
        "replace",
    ),
    "hit_update_spec": ("touch", "on_hit"),
    "evict_update_spec": ("on_evict",),
}


def inherited_feature_is_exact(policy: ReplacementPolicy, feature: str) -> bool:
    """Whether a fused/declarative ``feature`` still matches the policy.

    ``replace``/``replace_spec``/``hit_update_spec``/``evict_update_spec``
    promise to be exactly equivalent to a specific combination of the plain
    hooks.  That promise is made by the *class that defines the feature*; a
    subclass that overrides any of the summarised hooks (say an MRU variant
    overriding ``select_victim``) inherits the feature attribute but not its
    equivalence.  The cache therefore only trusts a feature when every hook
    it summarises resolves to the same function on the concrete policy class
    as on the feature's defining class — any override disables the shortcut
    and the cache falls back to calling the plain hooks.
    """
    policy_type = type(policy)
    owner = next(
        (
            klass
            for klass in policy_type.__mro__
            if feature in klass.__dict__
        ),
        None,
    )
    if owner is None or klass_feature_is_none(owner, feature):
        return False
    return all(
        getattr(policy_type, hook, None) is getattr(owner, hook, None)
        for hook in _FUSED_FEATURE_HOOKS[feature]
    )


def klass_feature_is_none(owner: type, feature: str) -> bool:
    """Whether the defining class explicitly disabled the feature."""
    return owner.__dict__[feature] is None


def is_request_free_victim(policy: ReplacementPolicy) -> bool:
    """Whether ``policy``'s victim selection provably ignores the request."""
    return type(policy).select_victim is ReplacementPolicy.select_victim


def is_request_free_evict(policy: ReplacementPolicy) -> bool:
    """Whether ``policy``'s eviction update provably ignores the request.

    True when ``on_evict`` is the base-class no-op.  Policies with a
    declarative ``evict_update_spec`` are also request-free on evictions,
    but the cache handles that separately (the spec bypasses the hook);
    this helper answers for the *hook call* itself, which is what the
    vector kernel's batchability gate needs.
    """
    return type(policy).on_evict is ReplacementPolicy.on_evict
