"""Replacement policy interface.

Every evaluated mechanism (LRU, SRRIP, BRRIP, DRRIP, SHiP, CLIP, Emissary and
the paper's TRRIP variants) implements :class:`ReplacementPolicy`.  The cache
model calls the hooks in a fixed order:

* ``on_hit``      — a lookup found the line in ``way``;
* ``select_victim`` — the set is full and a way must be chosen for eviction;
* ``on_evict``    — the chosen victim (or an invalidated line) leaves the set;
* ``on_insert``   — the new line has been placed into ``way``.

Policies never see cache tags directly; any per-line metadata they need (RRPV
values, LRU stamps, SHiP signatures, Emissary priority bits) is kept in arrays
owned by the policy itself, exactly mirroring the storage the hardware
proposals add next to the tag array.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.common.request import MemoryRequest


class ReplacementPolicy(abc.ABC):
    """Abstract base class for set-associative replacement policies."""

    #: Short identifier used by the policy factory and experiment tables.
    name: str = "base"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError(
                f"num_sets and num_ways must be positive, got {num_sets}x{num_ways}"
            )
        self.num_sets = num_sets
        self.num_ways = num_ways

    # ------------------------------------------------------------------ hooks
    @abc.abstractmethod
    def on_hit(self, set_index: int, way: int, request: MemoryRequest) -> None:
        """Update re-reference state after a hit on ``way``."""

    @abc.abstractmethod
    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        """Initialise re-reference state for a newly inserted line."""

    @abc.abstractmethod
    def select_victim(self, set_index: int, request: MemoryRequest) -> int:
        """Pick the way to evict from a full set."""

    def on_evict(
        self, set_index: int, way: int, request: Optional[MemoryRequest] = None
    ) -> None:
        """Notify that the line in ``way`` left the set (eviction/invalidate)."""

    def reset(self) -> None:
        """Restore the policy to its power-on state."""

    # ------------------------------------------------------------------ misc
    def _check_set(self, set_index: int) -> None:
        if not 0 <= set_index < self.num_sets:
            raise IndexError(f"set index {set_index} out of range [0, {self.num_sets})")

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.num_ways:
            raise IndexError(f"way {way} out of range [0, {self.num_ways})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(sets={self.num_sets}, ways={self.num_ways})"
