"""Emissary: Enhanced Miss Awareness Replacement Policy [Nagendra et al., ISCA 2023].

Emissary observes that some instruction misses are costlier than others: the
ones that starve the decode stage.  Lines whose miss caused decode starvation
(and whose instructions eventually retire) are marked with a priority bit.
When such a line is refetched, it is preserved in the cache by way-locking on
top of LRU: up to ``priority_ways`` lines per set hold their priority status
and are only evicted when no unprioritised victim exists.

The starvation signal is produced by the CPU frontend model (it cannot be
derived inside the cache).  It arrives on the request as
:attr:`repro.common.request.MemoryRequest.starvation_hint`, mirroring the
per-line metadata bits the hardware proposal adds to the L1/L2 (which is what
Table 4 charges Emissary for).

The paper's configuration (Section 4.3): 4 priority ways per set in the 8-way
L2, built on LRU.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cache.replacement.base import ReplacementPolicy
from repro.common.request import MemoryRequest


class EmissaryPolicy(ReplacementPolicy):
    """Priority-way LRU driven by decode-starvation hints."""

    name = "emissary"

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        priority_ways: int = 4,
        priority_probability: float = 1.0 / 16.0,
        rotate_on_saturation: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__(num_sets, num_ways)
        if priority_ways < 0 or priority_ways > num_ways:
            raise ValueError(
                f"priority_ways must be in [0, {num_ways}], got {priority_ways}"
            )
        if not 0.0 <= priority_probability <= 1.0:
            raise ValueError("priority_probability must be in [0, 1]")
        self.priority_ways = priority_ways
        #: Emissary assigns priority with a low probability so that only lines
        #: which starve decode *repeatedly* accumulate protected status,
        #: rather than whatever starved first.
        self.priority_probability = priority_probability
        #: Optionally demote the stalest protected line when the protected
        #: ways are full (off by default, matching the original's behaviour of
        #: capping the protected population).
        self.rotate_on_saturation = rotate_on_saturation
        self._seed = seed
        self._rng = random.Random(seed)
        self._clock = 0
        self._stamps = [[0] * num_ways for _ in range(num_sets)]
        self._priority = [[False] * num_ways for _ in range(num_sets)]

    # ------------------------------------------------------------------ state
    def is_priority(self, set_index: int, way: int) -> bool:
        """Whether a way currently holds a starvation-priority line."""
        self._check_set(set_index)
        self._check_way(way)
        return self._priority[set_index][way]

    def touch(self, set_index: int, way: int) -> None:
        """LRU-style recency bump (array-state protocol)."""
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    # Backwards-compatible private alias.
    _touch = touch

    def _priority_count(self, set_index: int) -> int:
        return sum(1 for flag in self._priority[set_index] if flag)

    # ------------------------------------------------------------------ hooks
    def _grant_priority(self, set_index: int, request: MemoryRequest) -> bool:
        if not (request.is_instruction and request.starvation_hint):
            return False
        if self._rng.random() >= self.priority_probability:
            return False
        if self._priority_count(set_index) >= self.priority_ways:
            if not self.rotate_on_saturation:
                return False
            # Rotate: demote the stalest protected line so priority status
            # tracks current behaviour rather than whatever starved first.
            priority = self._priority[set_index]
            stamps = self._stamps[set_index]
            stalest = min(
                (way for way in range(self.num_ways) if priority[way]),
                key=lambda way: stamps[way],
            )
            priority[stalest] = False
        return True

    def on_hit(self, set_index: int, way: int, request: MemoryRequest) -> None:
        self._touch(set_index, way)
        if not self._priority[set_index][way] and self._grant_priority(
            set_index, request
        ):
            self._priority[set_index][way] = True

    def on_insert(self, set_index: int, way: int, request: MemoryRequest) -> None:
        self._touch(set_index, way)
        self._priority[set_index][way] = self._grant_priority(set_index, request)

    def victim(self, set_index: int) -> int:
        """Priority-way LRU selection (request-free: hints only matter on
        hit/insert, never during victim selection)."""
        self._check_set(set_index)
        stamps = self._stamps[set_index]
        priority = self._priority[set_index]
        unprotected = [way for way in range(self.num_ways) if not priority[way]]
        if unprotected:
            return min(unprotected, key=lambda way: stamps[way])
        # Every way is protected (can only happen when priority_ways == num_ways
        # or through saturation): fall back to plain LRU across the whole set.
        return stamps.index(min(stamps))

    def on_evict(
        self, set_index: int, way: int, request: Optional[MemoryRequest] = None
    ) -> None:
        self._priority[set_index][way] = False
        self._stamps[set_index][way] = 0

    def reset(self) -> None:
        self._clock = 0
        self._rng = random.Random(self._seed)
        for stamps, priority in zip(self._stamps, self._priority):
            for way in range(self.num_ways):
                stamps[way] = 0
                priority[way] = False
