"""Cache replacement policies evaluated by the paper (plus baselines)."""

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.basic import FIFOPolicy, LRUPolicy, RandomPolicy
from repro.cache.replacement.belady import OptimalPolicy
from repro.cache.replacement.clip import CLIPPolicy
from repro.cache.replacement.drrip import DRRIPPolicy
from repro.cache.replacement.dueling import (
    Constituency,
    SaturatingCounter,
    SetDuelingController,
)
from repro.cache.replacement.emissary import EmissaryPolicy
from repro.cache.replacement.factory import available_policies, create_policy
from repro.cache.replacement.rrip import BRRIPPolicy, RRIPBase, SRRIPPolicy
from repro.cache.replacement.ship import SHiPPolicy

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "RRIPBase",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "SHiPPolicy",
    "CLIPPolicy",
    "EmissaryPolicy",
    "OptimalPolicy",
    "SetDuelingController",
    "SaturatingCounter",
    "Constituency",
    "available_policies",
    "create_policy",
]
