"""Hardware prefetcher models.

Table 1 of the paper attaches stride-based prefetchers (including next-line)
to every cache.  The frontend additionally runs a pseudo-FDIP prefetcher
(modelled in :mod:`repro.cpu.frontend`); the classes here are the per-cache
engines the hierarchy invokes on demand accesses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.common.addressing import CACHE_LINE_SIZE, line_address
from repro.common.request import MemoryRequest


class Prefetcher(abc.ABC):
    """Interface of a per-cache prefetch engine."""

    name: str = "none"

    @abc.abstractmethod
    def observe(self, request: MemoryRequest, hit: bool) -> list[int]:
        """Observe a demand access and return line addresses to prefetch."""

    def reset(self) -> None:
        """Restore the prefetcher to its power-on state."""


class NullPrefetcher(Prefetcher):
    """Prefetcher that never issues anything."""

    name = "none"

    def observe(self, request: MemoryRequest, hit: bool) -> list[int]:
        return []


class NextLinePrefetcher(Prefetcher):
    """Sequential next-line prefetcher (degree configurable).

    Effective for instruction streams where fall-through execution dominates,
    which PGO's layout optimisations deliberately encourage.
    """

    name = "nextline"

    def __init__(self, degree: int = 1, line_size: int = CACHE_LINE_SIZE) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.line_size = line_size

    def observe(self, request: MemoryRequest, hit: bool) -> list[int]:
        base = line_address(request.address, self.line_size)
        return [base + i * self.line_size for i in range(1, self.degree + 1)]


@dataclass
class _StrideEntry:
    last_address: int = 0
    stride: int = 0
    confidence: int = 0


class StridePrefetcher(Prefetcher):
    """PC-indexed stride prefetcher with confidence counters.

    Each static instruction (PC) gets a table entry tracking the last address
    it touched and the last observed stride.  When the same stride repeats
    ``threshold`` times the prefetcher issues ``degree`` prefetches along it.
    """

    name = "stride"

    def __init__(
        self,
        table_entries: int = 256,
        degree: int = 2,
        threshold: int = 2,
        line_size: int = CACHE_LINE_SIZE,
    ) -> None:
        if table_entries < 1 or degree < 1 or threshold < 1:
            raise ValueError("table_entries, degree and threshold must be >= 1")
        self.table_entries = table_entries
        self.degree = degree
        self.threshold = threshold
        self.line_size = line_size
        self._table: dict[int, _StrideEntry] = {}

    def observe(self, request: MemoryRequest, hit: bool) -> list[int]:
        key = request.pc % self.table_entries if request.pc else (
            request.address // 4096
        ) % self.table_entries
        entry = self._table.get(key)
        if entry is None:
            if len(self._table) >= self.table_entries:
                # Capacity eviction: drop an arbitrary (oldest-inserted) entry.
                self._table.pop(next(iter(self._table)))
            self._table[key] = _StrideEntry(last_address=request.address)
            return []

        stride = request.address - entry.last_address
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, self.threshold + 2)
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            entry.stride = stride
        entry.last_address = request.address

        if entry.confidence < self.threshold or entry.stride == 0:
            return []
        base = request.address
        prefetches = []
        for i in range(1, self.degree + 1):
            target = base + i * entry.stride
            if target >= 0:
                prefetches.append(line_address(target, self.line_size))
        return prefetches

    def reset(self) -> None:
        self._table.clear()


def make_prefetcher(name: str, **kwargs) -> Prefetcher:
    """Factory for prefetchers by configuration name."""
    name = name.lower()
    if name in ("none", "null", ""):
        return NullPrefetcher()
    if name in ("nextline", "next-line"):
        return NextLinePrefetcher(**kwargs)
    if name == "stride":
        return StridePrefetcher(**kwargs)
    raise ValueError(f"unknown prefetcher {name!r}")
