"""Hardware prefetcher models.

Table 1 of the paper attaches stride-based prefetchers (including next-line)
to every cache.  The frontend additionally runs a pseudo-FDIP prefetcher
(modelled in :mod:`repro.cpu.frontend`); the classes here are the per-cache
engines the hierarchy invokes on demand accesses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.common.addressing import CACHE_LINE_SIZE, line_address
from repro.common.request import MemoryRequest


#: Shared empty result for observations that issue nothing — the common case,
#: returned once per demand access in the simulation hot loop.
_NO_PREFETCHES: tuple[int, ...] = ()


class Prefetcher(abc.ABC):
    """Interface of a per-cache prefetch engine."""

    name: str = "none"

    @abc.abstractmethod
    def observe(self, request: MemoryRequest, hit: bool) -> "Sequence[int]":
        """Observe a demand access and return line addresses to prefetch."""

    def reset(self) -> None:
        """Restore the prefetcher to its power-on state."""


class NullPrefetcher(Prefetcher):
    """Prefetcher that never issues anything."""

    name = "none"

    def observe(self, request: MemoryRequest, hit: bool) -> "Sequence[int]":
        return _NO_PREFETCHES


class NextLinePrefetcher(Prefetcher):
    """Sequential next-line prefetcher (degree configurable).

    Effective for instruction streams where fall-through execution dominates,
    which PGO's layout optimisations deliberately encourage.
    """

    name = "nextline"

    def __init__(self, degree: int = 1, line_size: int = CACHE_LINE_SIZE) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.line_size = line_size

    def observe(self, request: MemoryRequest, hit: bool) -> list[int]:
        base = line_address(request.address, self.line_size)
        return [base + i * self.line_size for i in range(1, self.degree + 1)]


@dataclass(slots=True)
class _StrideEntry:
    """Object form of a stride-table entry (used by the seed baseline; the
    production table stores ``[last_address, stride, confidence]`` lists,
    which the hot observe path reads and writes by index at C speed)."""

    last_address: int = 0
    stride: int = 0
    confidence: int = 0


class StridePrefetcher(Prefetcher):
    """PC-indexed stride prefetcher with confidence counters.

    Each static instruction (PC) gets a table entry tracking the last address
    it touched and the last observed stride.  When the same stride repeats
    ``threshold`` times the prefetcher issues ``degree`` prefetches along it.
    """

    name = "stride"

    def __init__(
        self,
        table_entries: int = 256,
        degree: int = 2,
        threshold: int = 2,
        line_size: int = CACHE_LINE_SIZE,
    ) -> None:
        if table_entries < 1 or degree < 1 or threshold < 1:
            raise ValueError("table_entries, degree and threshold must be >= 1")
        self.table_entries = table_entries
        self.degree = degree
        self.threshold = threshold
        self.line_size = line_size
        #: ``key -> [last_address, stride, confidence]``.
        self._table: dict[int, list[int]] = {}
        # The production observe runs as a closure over the (stable) table
        # and parameters — it is called twice per demand access in the replay
        # hot loop.  Subclasses that override observe (the seed baseline)
        # keep their method: an instance attribute would shadow it, so the
        # closure is only bound when the class-level observe is the base one.
        self._observe_impl = self._make_observe()
        if type(self).observe is StridePrefetcher.observe:
            self.observe = self._observe_impl

    def _make_observe(self):
        table = self._table
        entries = self.table_entries
        threshold = self.threshold
        confidence_cap = threshold + 2
        degree_range = range(1, self.degree + 1)
        line_size = self.line_size

        def observe(request: MemoryRequest, hit: bool) -> "Sequence[int]":
            address = request.address
            pc = request.pc
            key = pc % entries if pc else (address // 4096) % entries
            entry = table.get(key)
            if entry is None:
                if len(table) >= entries:
                    # Capacity eviction: drop the oldest-inserted entry.
                    table.pop(next(iter(table)))
                table[key] = [address, 0, 0]
                return _NO_PREFETCHES

            stride = address - entry[0]
            if stride != 0 and stride == entry[1]:
                confidence = entry[2] + 1
                if confidence > confidence_cap:
                    confidence = confidence_cap
                entry[2] = confidence
            else:
                confidence = entry[2] - 1
                if confidence < 0:
                    confidence = 0
                entry[2] = confidence
                entry[1] = stride
            entry[0] = address

            if confidence < threshold or stride == 0:
                return _NO_PREFETCHES
            prefetches = []
            for i in degree_range:
                target = address + i * stride
                if target >= 0:
                    prefetches.append(target - target % line_size)
            return prefetches

        return observe

    def observe(self, request: MemoryRequest, hit: bool) -> "Sequence[int]":
        """Method form of the observe closure (overridden by subclasses;
        production instances shadow this with the pre-built closure)."""
        return self._observe_impl(request, hit)

    def reset(self) -> None:
        self._table.clear()


def make_prefetcher(name: str, **kwargs) -> Prefetcher:
    """Factory for prefetchers by configuration name."""
    name = name.lower()
    if name in ("none", "null", ""):
        return NullPrefetcher()
    if name in ("nextline", "next-line"):
        return NextLinePrefetcher(**kwargs)
    if name == "stride":
        return StridePrefetcher(**kwargs)
    raise ValueError(f"unknown prefetcher {name!r}")
