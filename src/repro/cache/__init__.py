"""Cache hierarchy substrate: caches, prefetchers and replacement policies."""

from repro.cache.block import CacheBlock
from repro.cache.cache import SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy, CacheLevelConfig, HierarchyConfig
from repro.cache.prefetch import (
    NextLinePrefetcher,
    NullPrefetcher,
    Prefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from repro.cache.stats import CacheStats, HierarchyStats

__all__ = [
    "CacheBlock",
    "SetAssociativeCache",
    "CacheHierarchy",
    "CacheLevelConfig",
    "HierarchyConfig",
    "CacheStats",
    "HierarchyStats",
    "Prefetcher",
    "NullPrefetcher",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "make_prefetcher",
]
