"""Per-cache and per-hierarchy statistics.

The quantities here are exactly the ones the paper's evaluation reports:
demand misses split into instruction and data streams (for the L2 MPKI of
Table 3), plus hit/eviction counts used by tests and the analysis modules.

``CacheStats`` stores only the primitive counters the cache increments on its
hot path (one increment per access) — instruction/data hits and misses, and
prefetch hits and misses.  Every aggregate (demand accesses, demand hits,
stream totals) is derived on read; that keeps
:meth:`repro.cache.cache.SetAssociativeCache.access` down to a single counter
update per lookup, which is measurable when every simulated instruction
performs several cache lookups.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class CacheStats:
    """Counters maintained by a single cache level."""

    inst_hits: int = 0
    inst_misses: int = 0
    data_hits: int = 0
    data_misses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    fills: int = 0
    prefetch_fills: int = 0
    evictions: int = 0
    invalidations: int = 0
    writebacks: int = 0

    # -------------------------------------------------------------- aggregates
    @property
    def demand_hits(self) -> int:
        """Demand (non-prefetch) hits across both streams."""
        return self.inst_hits + self.data_hits

    @property
    def demand_misses(self) -> int:
        """Demand (non-prefetch) misses across both streams."""
        return self.inst_misses + self.data_misses

    @property
    def demand_accesses(self) -> int:
        """Demand (non-prefetch) lookups across both streams."""
        return self.inst_hits + self.data_hits + self.inst_misses + self.data_misses

    @property
    def inst_accesses(self) -> int:
        """Instruction-stream demand lookups."""
        return self.inst_hits + self.inst_misses

    @property
    def data_accesses(self) -> int:
        """Data-stream demand lookups."""
        return self.data_hits + self.data_misses

    @property
    def prefetch_accesses(self) -> int:
        """Prefetch lookups."""
        return self.prefetch_hits + self.prefetch_misses

    # -------------------------------------------------------------------- rates
    @property
    def hit_rate(self) -> float:
        """Demand hit rate (0.0 when the cache was never accessed)."""
        accesses = self.demand_accesses
        if accesses == 0:
            return 0.0
        return self.demand_hits / accesses

    @property
    def miss_rate(self) -> float:
        """Demand miss rate (0.0 when the cache was never accessed)."""
        accesses = self.demand_accesses
        if accesses == 0:
            return 0.0
        return self.demand_misses / accesses

    def mpki(self, instructions: int) -> float:
        """Demand misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.demand_misses / instructions

    def inst_mpki(self, instructions: int) -> float:
        """Instruction-stream demand misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.inst_misses / instructions

    def data_mpki(self, instructions: int) -> float:
        """Data-stream demand misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.data_misses / instructions

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


@dataclass(slots=True)
class HierarchyStats:
    """Counters aggregated across the cache hierarchy."""

    instruction_fetches: int = 0
    data_accesses: int = 0
    l1i_misses: int = 0
    l1d_misses: int = 0
    l2_inst_misses: int = 0
    l2_data_misses: int = 0
    slc_misses: int = 0
    dram_accesses: int = 0
    prefetches_issued: int = 0
    total_latency: int = 0

    def l2_inst_mpki(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.l2_inst_misses / instructions

    def l2_data_mpki(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.l2_data_misses / instructions

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)
