"""Per-cache and per-hierarchy statistics.

The quantities here are exactly the ones the paper's evaluation reports:
demand misses split into instruction and data streams (for the L2 MPKI of
Table 3), plus hit/eviction counts used by tests and the analysis modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters maintained by a single cache level."""

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    inst_accesses: int = 0
    inst_hits: int = 0
    inst_misses: int = 0
    data_accesses: int = 0
    data_hits: int = 0
    data_misses: int = 0
    prefetch_accesses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    fills: int = 0
    prefetch_fills: int = 0
    evictions: int = 0
    invalidations: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Demand hit rate (0.0 when the cache was never accessed)."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_hits / self.demand_accesses

    @property
    def miss_rate(self) -> float:
        """Demand miss rate (0.0 when the cache was never accessed)."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    def mpki(self, instructions: int) -> float:
        """Demand misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.demand_misses / instructions

    def inst_mpki(self, instructions: int) -> float:
        """Instruction-stream demand misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.inst_misses / instructions

    def data_mpki(self, instructions: int) -> float:
        """Data-stream demand misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.data_misses / instructions

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


@dataclass
class HierarchyStats:
    """Counters aggregated across the cache hierarchy."""

    instruction_fetches: int = 0
    data_accesses: int = 0
    l1i_misses: int = 0
    l1d_misses: int = 0
    l2_inst_misses: int = 0
    l2_data_misses: int = 0
    slc_misses: int = 0
    dram_accesses: int = 0
    prefetches_issued: int = 0
    total_latency: int = 0

    def l2_inst_mpki(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.l2_inst_misses / instructions

    def l2_data_mpki(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.l2_data_misses / instructions

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)
