"""The PGO compiler driver.

Implements the code-generation flow of Figure 4:

1. compile the program without a profile (``ELF1``),
2. run it on a training input to collect an instrumentation profile,
3. re-compile with the profile (``ELF2``): classify block temperature
   (Eq. 1 & 2), order and place code into temperature-separated sections, and
   record the section temperatures in the program headers for the loader.

Step 2 (running the program) belongs to the workload generator; this module
exposes the two compilations and a small :class:`CompiledBinary` wrapper the
OS loader and trace generator consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.temperature import Temperature
from repro.compiler.classify import (
    ClassifierConfig,
    TemperatureClassifier,
    TemperatureMap,
)
from repro.compiler.elf import ELFImage
from repro.compiler.ir import BlockId, Program
from repro.compiler.layout import CodeLayoutEngine, LayoutConfig
from repro.compiler.profile import InstrumentationProfile


@dataclass
class CompiledBinary:
    """A compiled program: the ELF image plus compile-time metadata."""

    program: Program
    image: ELFImage
    pgo_applied: bool
    temperature_map: Optional[TemperatureMap] = None
    profile: Optional[InstrumentationProfile] = None

    def block_address(self, block_id: BlockId) -> int:
        return self.image.block_address(block_id)

    def block_temperature(self, block_id: BlockId) -> Temperature:
        if self.temperature_map is None:
            return Temperature.NONE
        return self.temperature_map.temperature(block_id)

    @property
    def hot_section_ranges(self) -> list[tuple[int, int]]:
        """(start, end) virtual ranges of hot code (used by Figure 7)."""
        return [
            (section.vaddr, section.end)
            for section in self.image.sections
            if section.temperature is Temperature.HOT and section.size_bytes > 0
        ]


class PGOCompiler:
    """Synthetic PGO-enabled compiler (LLVM instrumentation-PGO stand-in)."""

    def __init__(
        self,
        classifier_config: ClassifierConfig | None = None,
        layout_config: LayoutConfig | None = None,
    ) -> None:
        self.classifier = TemperatureClassifier(classifier_config)
        self.layout = CodeLayoutEngine(layout_config)

    def compile(
        self,
        program: Program,
        profile: InstrumentationProfile | None = None,
    ) -> CompiledBinary:
        """Compile ``program``; with a profile the PGO pipeline is applied."""
        if profile is None:
            image = self.layout.layout_plain(program)
            return CompiledBinary(program=program, image=image, pgo_applied=False)

        temperature_map = self.classifier.classify(program, profile)
        image = self.layout.layout_by_temperature(program, temperature_map, profile)
        return CompiledBinary(
            program=program,
            image=image,
            pgo_applied=True,
            temperature_map=temperature_map,
            profile=profile,
        )

    def compile_without_pgo(self, program: Program) -> CompiledBinary:
        """ELF1 of Figure 4: no profile, single ``.text`` section."""
        return self.compile(program, profile=None)

    def compile_with_pgo(
        self, program: Program, profile: InstrumentationProfile
    ) -> CompiledBinary:
        """ELF2 of Figure 4: profile-guided, temperature-separated layout."""
        return self.compile(program, profile)
