"""Instrumentation PGO profiles.

Instrumentation PGO (the paper uses LLVM IR instrumentation, Section 3.2)
counts how many times each basic block executes under a *training* input.
The profile is fed back into the compiler, which classifies temperature and
re-optimises the layout.  Shared libraries accumulate profiles across every
application that exercises them, which :meth:`InstrumentationProfile.merge`
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.compiler.ir import BlockId, Program
from repro.common.errors import CompilationError


@dataclass
class InstrumentationProfile:
    """Execution counts per basic block for one program."""

    program_name: str
    counts: dict[BlockId, int] = field(default_factory=dict)

    def record(self, block_id: BlockId, count: int = 1) -> None:
        """Add ``count`` executions of ``block_id`` to the profile."""
        if count < 0:
            raise CompilationError("profile counts must be non-negative")
        self.counts[block_id] = self.counts.get(block_id, 0) + count

    def count(self, block_id: BlockId) -> int:
        return self.counts.get(block_id, 0)

    @property
    def total_count(self) -> int:
        return sum(self.counts.values())

    def covered_blocks(self) -> set[BlockId]:
        """Blocks with a non-zero execution count."""
        return {block_id for block_id, count in self.counts.items() if count > 0}

    def merge(self, other: "InstrumentationProfile") -> "InstrumentationProfile":
        """Accumulate another profile (shared-library multi-app profiling)."""
        merged = InstrumentationProfile(self.program_name, dict(self.counts))
        for block_id, count in other.counts.items():
            merged.counts[block_id] = merged.counts.get(block_id, 0) + count
        return merged

    def validate_against(self, program: Program) -> None:
        """Check that every counted block exists in ``program``."""
        known = {block.block_id for block in program.all_blocks()}
        unknown = set(self.counts) - known
        if unknown:
            sample = ", ".join(str(block_id) for block_id in list(unknown)[:3])
            raise CompilationError(
                f"profile for {self.program_name!r} references unknown blocks: {sample}"
            )

    @classmethod
    def from_counts(
        cls, program_name: str, counts: Mapping[BlockId, int]
    ) -> "InstrumentationProfile":
        return cls(program_name, dict(counts))

    @classmethod
    def from_execution(
        cls, program_name: str, executed_blocks: Iterable[BlockId]
    ) -> "InstrumentationProfile":
        """Build a profile by replaying a sequence of executed block ids."""
        profile = cls(program_name)
        for block_id in executed_blocks:
            profile.record(block_id)
        return profile
