"""Synthetic ELF images.

Only the pieces of ELF that TRRIP touches are modelled (Figure 5 of the
paper): code sections (``.text`` or ``.text.hot`` / ``.text.warm`` /
``.text.cold``), and program headers that carry the per-section temperature
attribute the loader propagates into PTE bits.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.common.errors import CompilationError
from repro.common.temperature import Temperature
from repro.compiler.ir import BlockId


@dataclass(frozen=True)
class ELFSection:
    """One code section of the synthetic ELF."""

    name: str
    vaddr: int
    size_bytes: int
    temperature: Temperature = Temperature.NONE

    def __post_init__(self) -> None:
        if self.vaddr < 0 or self.size_bytes < 0:
            raise CompilationError(
                f"section {self.name!r} has invalid address/size"
            )

    @property
    def end(self) -> int:
        """One past the last byte of the section."""
        return self.vaddr + self.size_bytes

    def contains(self, vaddr: int) -> bool:
        return self.vaddr <= vaddr < self.end


@dataclass(frozen=True)
class ProgramHeader:
    """Runtime mapping information the loader consumes (PT_LOAD-like)."""

    vaddr: int
    memsz: int
    executable: bool = True
    writable: bool = False
    temperature: Temperature = Temperature.NONE


@dataclass
class ELFImage:
    """A loaded-view of a compiled program."""

    name: str
    sections: list[ELFSection] = field(default_factory=list)
    program_headers: list[ProgramHeader] = field(default_factory=list)
    block_addresses: dict[BlockId, int] = field(default_factory=dict)
    #: Base virtual address of external code (PLT stubs, other libraries)
    #: executed by the program but not compiled — and therefore not tagged.
    external_base: int = 0
    external_size: int = 0

    def __post_init__(self) -> None:
        self._sorted_sections = sorted(self.sections, key=lambda s: s.vaddr)
        self._section_starts = [s.vaddr for s in self._sorted_sections]

    # ----------------------------------------------------------------- sizes
    @property
    def text_size(self) -> int:
        """Total bytes across all code sections."""
        return sum(section.size_bytes for section in self.sections)

    @property
    def binary_size(self) -> int:
        """Approximate on-disk binary size (code + a metadata overhead)."""
        # Headers, symbol/relocation tables, rodata… modelled as a fixed
        # fraction of code plus a floor; only used for Table 5's size column.
        return int(self.text_size * 1.35) + 4096

    def section(self, name: str) -> ELFSection:
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError(f"no section named {name!r} in {self.name!r}")

    def section_bytes_by_temperature(self) -> dict[Temperature, int]:
        """Code bytes per temperature (Figure 8a's text-section split)."""
        totals: dict[Temperature, int] = {
            Temperature.HOT: 0,
            Temperature.WARM: 0,
            Temperature.COLD: 0,
            Temperature.NONE: 0,
        }
        for section in self.sections:
            totals[section.temperature] += section.size_bytes
        return totals

    # -------------------------------------------------------------- queries
    def section_of_address(self, vaddr: int) -> ELFSection | None:
        """The section containing ``vaddr``, or ``None``."""
        index = bisect.bisect_right(self._section_starts, vaddr) - 1
        if index < 0:
            return None
        section = self._sorted_sections[index]
        return section if section.contains(vaddr) else None

    def temperature_of_address(self, vaddr: int) -> Temperature:
        """Compiler's view of the temperature of a code address."""
        section = self.section_of_address(vaddr)
        if section is None:
            return Temperature.NONE
        return section.temperature

    def is_external(self, vaddr: int) -> bool:
        """Whether ``vaddr`` belongs to the external (non-compiled) region."""
        return (
            self.external_size > 0
            and self.external_base <= vaddr < self.external_base + self.external_size
        )

    def block_address(self, block_id: BlockId) -> int:
        try:
            return self.block_addresses[block_id]
        except KeyError as exc:
            raise KeyError(
                f"block {block_id} was not laid out in image {self.name!r}"
            ) from exc

    def address_range(self) -> tuple[int, int]:
        """(lowest, highest) code virtual address across all sections."""
        if not self.sections:
            raise CompilationError(f"image {self.name!r} has no sections")
        return (
            min(section.vaddr for section in self.sections),
            max(section.end for section in self.sections),
        )
