"""Synthetic compiler IR: programs, functions and basic blocks.

The paper's software side works at basic-block granularity: instrumentation
PGO counts BB executions, the temperature classifier (Section 4.7) thresholds
those counters, and the code-layout pass places blocks into
``.text.hot`` / ``.text.warm`` / ``.text.cold`` sections.  The IR here captures
just enough structure for that flow: blocks have a byte size and a stable id;
functions group blocks; programs group functions and optionally reference
"external" code (shared libraries / PLT stubs) that is outside the compiler's
reach — the limitation Figure 7 and Section 4.6 discuss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import CompilationError


@dataclass(frozen=True)
class BlockId:
    """Stable identifier of a basic block (function name + index)."""

    function: str
    index: int

    def __str__(self) -> str:
        return f"{self.function}#{self.index}"


@dataclass
class BasicBlock:
    """A straight-line code region with a byte size."""

    block_id: BlockId
    size_bytes: int
    #: Whether the block ends in a call into external (non-compiled) code.
    calls_external: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise CompilationError(
                f"basic block {self.block_id} must have positive size"
            )


@dataclass
class Function:
    """A function: an ordered list of basic blocks (program order)."""

    name: str
    blocks: list[BasicBlock] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(block.size_bytes for block in self.blocks)

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


@dataclass
class Program:
    """A compilable unit: application or shared-library proxy."""

    name: str
    functions: list[Function] = field(default_factory=list)
    #: Bytes of external code (PLT stubs, other shared libraries) that the
    #: program executes but this compiler does not see.  External code never
    #: receives a temperature and is laid out past the program image.
    external_code_bytes: int = 0

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for function in self.functions:
            if function.name in seen:
                raise CompilationError(
                    f"duplicate function name {function.name!r} in program {self.name!r}"
                )
            seen.add(function.name)

    @property
    def size_bytes(self) -> int:
        return sum(function.size_bytes for function in self.functions)

    @property
    def num_blocks(self) -> int:
        return sum(len(function) for function in self.functions)

    def all_blocks(self) -> Iterator[BasicBlock]:
        for function in self.functions:
            yield from function.blocks

    def function(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function named {name!r} in program {self.name!r}")

    def block(self, block_id: BlockId) -> BasicBlock:
        return self.function(block_id.function).block(block_id.index)


def make_function(name: str, block_sizes: list[int]) -> Function:
    """Convenience constructor: a function from a list of block byte sizes."""
    return Function(
        name=name,
        blocks=[
            BasicBlock(block_id=BlockId(name, index), size_bytes=size)
            for index, size in enumerate(block_sizes)
        ],
    )
