"""Temperature classification from PGO profiles (Section 4.7, Eq. 1 and 2).

The compiler sorts basic-block counters from highest to lowest, sums them
until the running sum would exceed ``C_threshold = C_total * percentile_hot``,
and takes the last counter *before* the threshold is exceeded as ``C_n``.
Every block whose counter is at least ``C_n`` is *hot*.  A symmetric
calculation with ``percentile_cold`` identifies *cold* blocks (blocks that
contribute only to the final ``1 - percentile_cold`` sliver of execution, plus
never-executed blocks); everything else is *warm*.

LLVM's default ``percentile_hot`` is 99% — the value the paper uses except in
the Figure 8 sensitivity sweep (10% … 100%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CompilationError
from repro.common.temperature import Temperature
from repro.compiler.ir import BlockId, Program
from repro.compiler.profile import InstrumentationProfile


@dataclass
class ClassifierConfig:
    """Thresholds controlling hot/warm/cold classification."""

    percentile_hot: float = 0.99
    percentile_cold: float = 0.9999

    def validate(self) -> None:
        if not 0.0 < self.percentile_hot <= 1.0:
            raise CompilationError(
                f"percentile_hot must be in (0, 1], got {self.percentile_hot}"
            )
        if not 0.0 < self.percentile_cold <= 1.0:
            raise CompilationError(
                f"percentile_cold must be in (0, 1], got {self.percentile_cold}"
            )
        if self.percentile_cold < self.percentile_hot:
            raise CompilationError(
                "percentile_cold must be >= percentile_hot "
                f"({self.percentile_cold} < {self.percentile_hot})"
            )


@dataclass
class TemperatureMap:
    """Classification result: a temperature per basic block."""

    temperatures: dict[BlockId, Temperature] = field(default_factory=dict)
    hot_count_threshold: int = 0
    cold_count_threshold: int = 0

    def temperature(self, block_id: BlockId) -> Temperature:
        return self.temperatures.get(block_id, Temperature.COLD)

    def blocks_with(self, temperature: Temperature) -> set[BlockId]:
        return {
            block_id
            for block_id, value in self.temperatures.items()
            if value is temperature
        }

    def section_bytes(self, program: Program) -> dict[Temperature, int]:
        """Total code bytes per temperature (drives Figure 8a and Table 5)."""
        totals = {
            Temperature.HOT: 0,
            Temperature.WARM: 0,
            Temperature.COLD: 0,
        }
        for block in program.all_blocks():
            totals[self.temperature(block.block_id)] += block.size_bytes
        return totals


def _threshold_counter(sorted_counts: list[int], percentile: float) -> int:
    """Eq. 1 & 2: the counter value C_n for a given percentile.

    Counters are summed highest-first until the running sum would exceed
    ``C_total * percentile``; the returned value is the last counter included.
    Blocks whose counter is >= the returned value are inside the percentile.
    """
    total = sum(sorted_counts)
    if total == 0:
        return 0
    threshold = total * percentile
    running = 0
    last_included = sorted_counts[0]
    for count in sorted_counts:
        if running >= threshold:
            break
        running += count
        last_included = count
    return last_included


class TemperatureClassifier:
    """Classify basic blocks into hot/warm/cold from a PGO profile."""

    def __init__(self, config: ClassifierConfig | None = None) -> None:
        self.config = config or ClassifierConfig()
        self.config.validate()

    def classify(
        self, program: Program, profile: InstrumentationProfile
    ) -> TemperatureMap:
        """Return the temperature of every block in ``program``."""
        profile.validate_against(program)
        counts = {
            block.block_id: profile.count(block.block_id)
            for block in program.all_blocks()
        }
        nonzero = sorted((c for c in counts.values() if c > 0), reverse=True)
        if not nonzero:
            # Nothing executed during training: everything is cold.
            return TemperatureMap(
                temperatures={block_id: Temperature.COLD for block_id in counts}
            )

        hot_threshold = _threshold_counter(nonzero, self.config.percentile_hot)
        cold_threshold = _threshold_counter(nonzero, self.config.percentile_cold)

        temperatures: dict[BlockId, Temperature] = {}
        for block_id, count in counts.items():
            if count <= 0:
                temperatures[block_id] = Temperature.COLD
            elif count >= hot_threshold:
                temperatures[block_id] = Temperature.HOT
            elif count < cold_threshold:
                temperatures[block_id] = Temperature.COLD
            else:
                temperatures[block_id] = Temperature.WARM
        return TemperatureMap(
            temperatures=temperatures,
            hot_count_threshold=hot_threshold,
            cold_count_threshold=cold_threshold,
        )
